//! Convoy discovery (Jeung et al., PVLDB 2008).
//!
//! A convoy is a set of at least `m` objects that stay *density-connected*
//! for at least `k` consecutive time snapshots. The implementation follows
//! the CMC (coherent moving cluster) scheme: DBSCAN per snapshot, then
//! intersection of candidate groups across consecutive snapshots.
//!
//! Convoys are one of the "co-movement patterns" families the paper contrasts
//! with its approach — effective, but governed by hard-to-tune parameters
//! (`m`, `k`, `eps` all interact), which is one of the motivations for
//! S2T/QuT-Clustering.

use crate::dbscan::{dbscan, DbscanLabel};
use hermes_trajectory::{Duration, ObjectId, TimeInterval, Timestamp, Trajectory};
use std::collections::BTreeSet;

/// Parameters of convoy discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvoyParams {
    /// DBSCAN radius at each snapshot.
    pub eps: f64,
    /// Minimum number of objects (`m`).
    pub min_objects: usize,
    /// Minimum number of consecutive snapshots (`k`).
    pub min_snapshots: usize,
    /// Snapshot sampling period.
    pub snapshot_period: Duration,
}

impl Default for ConvoyParams {
    fn default() -> Self {
        ConvoyParams {
            eps: 100.0,
            min_objects: 3,
            min_snapshots: 3,
            snapshot_period: Duration::from_mins(1),
        }
    }
}

/// A discovered convoy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Convoy {
    /// The objects travelling together.
    pub objects: BTreeSet<ObjectId>,
    /// First snapshot at which the group was together.
    pub start: Timestamp,
    /// Last snapshot at which the group was together.
    pub end: Timestamp,
}

impl Convoy {
    /// Lifespan of the convoy.
    pub fn lifespan(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.end)
    }

    /// Number of participating objects.
    pub fn size(&self) -> usize {
        self.objects.len()
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    objects: BTreeSet<ObjectId>,
    start: Timestamp,
    end: Timestamp,
    snapshots: usize,
}

/// Discovers convoys in a set of trajectories.
pub fn discover_convoys(trajectories: &[Trajectory], params: &ConvoyParams) -> Vec<Convoy> {
    if trajectories.is_empty() {
        return Vec::new();
    }
    let global_start = trajectories.iter().map(|t| t.start_time()).min().unwrap();
    let global_end = trajectories.iter().map(|t| t.end_time()).max().unwrap();

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut results: Vec<Convoy> = Vec::new();
    let mut t = global_start;
    while t <= global_end {
        // Objects alive at this snapshot and their positions.
        let mut alive: Vec<(ObjectId, f64, f64)> = Vec::new();
        for traj in trajectories {
            if let Some(p) = traj.position_at(t) {
                alive.push((traj.object_id, p.x, p.y));
            }
        }
        // Snapshot clusters.
        let labels = dbscan(alive.len(), params.eps, params.min_objects, |i, j| {
            let (_, ax, ay) = alive[i];
            let (_, bx, by) = alive[j];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        });
        let mut snapshot_groups: Vec<BTreeSet<ObjectId>> = Vec::new();
        let num_clusters = labels
            .iter()
            .filter_map(DbscanLabel::cluster)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        for c in 0..num_clusters {
            let group: BTreeSet<ObjectId> = alive
                .iter()
                .zip(labels.iter())
                .filter(|(_, l)| l.cluster() == Some(c))
                .map(|((id, _, _), _)| *id)
                .collect();
            if group.len() >= params.min_objects {
                snapshot_groups.push(group);
            }
        }

        // Extend candidates with this snapshot's groups.
        let mut next: Vec<Candidate> = Vec::new();
        for group in &snapshot_groups {
            let mut extended_any = false;
            for cand in &candidates {
                let inter: BTreeSet<ObjectId> = cand.objects.intersection(group).copied().collect();
                if inter.len() >= params.min_objects {
                    extended_any = true;
                    let c = Candidate {
                        objects: inter,
                        start: cand.start,
                        end: t,
                        snapshots: cand.snapshots + 1,
                    };
                    if !next
                        .iter()
                        .any(|o: &Candidate| o.objects == c.objects && o.start == c.start)
                    {
                        next.push(c);
                    }
                }
            }
            // The group itself always starts a fresh candidate.
            let fresh = Candidate {
                objects: group.clone(),
                start: t,
                end: t,
                snapshots: 1,
            };
            if !extended_any
                || !next
                    .iter()
                    .any(|o| o.objects == fresh.objects && o.end == fresh.end)
            {
                next.push(fresh);
            }
        }

        // Candidates that could not be extended are flushed if long enough.
        for cand in &candidates {
            let continued = next
                .iter()
                .any(|o| o.start == cand.start && o.objects.is_subset(&cand.objects));
            if !continued && cand.snapshots >= params.min_snapshots {
                results.push(Convoy {
                    objects: cand.objects.clone(),
                    start: cand.start,
                    end: cand.end,
                });
            }
        }
        candidates = next;
        t += params.snapshot_period;
    }
    // Flush the survivors.
    for cand in candidates {
        if cand.snapshots >= params.min_snapshots {
            results.push(Convoy {
                objects: cand.objects,
                start: cand.start,
                end: cand.end,
            });
        }
    }

    // Keep only maximal convoys (drop any convoy whose object set and
    // lifespan are both contained in another's).
    let mut maximal: Vec<Convoy> = Vec::new();
    for c in results {
        if maximal.iter().any(|m| {
            m.objects.is_superset(&c.objects)
                && m.lifespan().contains_interval(&c.lifespan())
                && *m != c
        }) {
            continue;
        }
        maximal.retain(|m| {
            !(c.objects.is_superset(&m.objects) && c.lifespan().contains_interval(&m.lifespan()))
        });
        maximal.push(c);
    }
    maximal
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Point;

    fn line(id: u64, y: f64, t0: i64, n: usize) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..n)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn params() -> ConvoyParams {
        ConvoyParams {
            eps: 100.0,
            min_objects: 3,
            min_snapshots: 3,
            snapshot_period: Duration::from_mins(2),
        }
    }

    #[test]
    fn finds_a_persistent_convoy() {
        let trajs = vec![
            line(0, 0.0, 0, 20),
            line(1, 20.0, 0, 20),
            line(2, 40.0, 0, 20),
            line(3, 100_000.0, 0, 20), // far away
        ];
        let convoys = discover_convoys(&trajs, &params());
        assert!(!convoys.is_empty());
        let best = convoys.iter().max_by_key(|c| c.size()).unwrap();
        assert_eq!(best.size(), 3);
        assert!(
            best.objects.contains(&0) && best.objects.contains(&1) && best.objects.contains(&2)
        );
        assert!(best.lifespan().length() >= Duration::from_mins(4));
    }

    #[test]
    fn too_few_objects_is_no_convoy() {
        let trajs = vec![line(0, 0.0, 0, 20), line(1, 20.0, 0, 20)];
        assert!(discover_convoys(&trajs, &params()).is_empty());
    }

    #[test]
    fn brief_encounters_are_filtered_by_k() {
        // Two groups crossing: they are only close for one snapshot.
        let a: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 200.0, 0.0, Timestamp(i as i64 * 60_000)))
            .collect();
        let b: Vec<Point> = (0..20)
            .map(|i| {
                Point::new(
                    i as f64 * 200.0,
                    4_000.0 - i as f64 * 400.0,
                    Timestamp(i as i64 * 60_000),
                )
            })
            .collect();
        let c: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 200.0, 20.0, Timestamp(i as i64 * 60_000)))
            .collect();
        let d: Vec<Point> = (0..20)
            .map(|i| {
                Point::new(
                    i as f64 * 200.0,
                    4_020.0 - i as f64 * 400.0,
                    Timestamp(i as i64 * 60_000),
                )
            })
            .collect();
        let trajs = vec![
            Trajectory::new(0, 0, a).unwrap(),
            Trajectory::new(1, 1, b).unwrap(),
            Trajectory::new(2, 2, c).unwrap(),
            Trajectory::new(3, 3, d).unwrap(),
        ];
        let p = ConvoyParams {
            min_objects: 4,
            min_snapshots: 5,
            ..params()
        };
        assert!(discover_convoys(&trajs, &p).is_empty());
    }

    #[test]
    fn temporally_disjoint_groups_form_separate_convoys() {
        let mut trajs = Vec::new();
        for k in 0..3 {
            trajs.push(line(k, k as f64 * 20.0, 0, 15));
        }
        for k in 3..6 {
            trajs.push(line(k, k as f64 * 20.0, 6 * 3_600_000, 15));
        }
        let convoys = discover_convoys(&trajs, &params());
        assert!(convoys.len() >= 2);
        let morning = convoys.iter().find(|c| c.objects.contains(&0)).unwrap();
        let evening = convoys.iter().find(|c| c.objects.contains(&3)).unwrap();
        assert!(!morning.lifespan().intersects(&evening.lifespan()));
    }

    #[test]
    fn empty_input() {
        assert!(discover_convoys(&[], &params()).is_empty());
    }
}
