//! Generic DBSCAN over a caller-supplied distance function.

/// Cluster assignment produced by [`dbscan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Item belongs to the cluster with this id.
    Cluster(usize),
    /// Item is density-noise.
    Noise,
}

impl DbscanLabel {
    /// The cluster id, if any.
    pub fn cluster(&self) -> Option<usize> {
        match self {
            DbscanLabel::Cluster(c) => Some(*c),
            DbscanLabel::Noise => None,
        }
    }
}

/// Classic DBSCAN on `n` items with a pairwise distance closure.
///
/// `eps` is the neighbourhood radius, `min_pts` the core-point threshold
/// (neighbourhood size *including* the point itself). Runs in O(n²) distance
/// evaluations, which is what the original TRACLUS and convoy papers use.
pub fn dbscan(
    n: usize,
    eps: f64,
    min_pts: usize,
    dist: impl Fn(usize, usize) -> f64,
) -> Vec<DbscanLabel> {
    let mut labels = vec![None::<DbscanLabel>; n];
    let mut next_cluster = 0usize;

    let neighbours = |i: usize| -> Vec<usize> { (0..n).filter(|&j| dist(i, j) <= eps).collect() };

    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let nbrs = neighbours(i);
        if nbrs.len() < min_pts {
            labels[i] = Some(DbscanLabel::Noise);
            continue;
        }
        let cluster = next_cluster;
        next_cluster += 1;
        labels[i] = Some(DbscanLabel::Cluster(cluster));
        // Expand the cluster breadth-first.
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            match labels[j] {
                Some(DbscanLabel::Noise) => labels[j] = Some(DbscanLabel::Cluster(cluster)),
                None => {
                    labels[j] = Some(DbscanLabel::Cluster(cluster));
                    let j_nbrs = neighbours(j);
                    if j_nbrs.len() >= min_pts {
                        queue.extend(j_nbrs);
                    }
                }
                Some(DbscanLabel::Cluster(_)) => {}
            }
        }
    }

    labels
        .into_iter()
        .map(|l| l.unwrap_or(DbscanLabel::Noise))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euclid(points: &[(f64, f64)]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| {
            let (ax, ay) = points[i];
            let (bx, by) = points[j];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        }
    }

    #[test]
    fn separates_two_blobs_and_noise() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push((i as f64 * 0.1, 0.0));
        }
        for i in 0..10 {
            pts.push((100.0 + i as f64 * 0.1, 0.0));
        }
        pts.push((50.0, 50.0)); // isolated
        let labels = dbscan(pts.len(), 1.0, 3, euclid(&pts));
        let c0 = labels[0].cluster().unwrap();
        let c1 = labels[10].cluster().unwrap();
        assert_ne!(c0, c1);
        assert!(labels[..10].iter().all(|l| l.cluster() == Some(c0)));
        assert!(labels[10..20].iter().all(|l| l.cluster() == Some(c1)));
        assert_eq!(labels[20], DbscanLabel::Noise);
    }

    #[test]
    fn min_pts_controls_noise() {
        let pts = vec![(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)];
        let strict = dbscan(3, 0.6, 4, euclid(&pts));
        assert!(strict.iter().all(|l| *l == DbscanLabel::Noise));
        let loose = dbscan(3, 0.6, 2, euclid(&pts));
        assert!(loose.iter().all(|l| l.cluster().is_some()));
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A chain where the end point is density-reachable but not core.
        let pts = vec![(0.0, 0.0), (0.4, 0.0), (0.8, 0.0), (1.2, 0.0), (1.8, 0.0)];
        let labels = dbscan(5, 0.5, 3, euclid(&pts));
        assert!(labels[0].cluster().is_some());
        // The last point is 0.6 away from its nearest neighbour → noise.
        assert_eq!(labels[4], DbscanLabel::Noise);
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(0, 1.0, 2, |_, _| 0.0);
        assert!(labels.is_empty());
    }

    #[test]
    fn all_points_identical_form_one_cluster() {
        let pts = vec![(1.0, 1.0); 6];
        let labels = dbscan(6, 0.1, 3, euclid(&pts));
        let c = labels[0].cluster().unwrap();
        assert!(labels.iter().all(|l| l.cluster() == Some(c)));
    }
}
