//! # hermes-baselines
//!
//! The comparison methods used in the demo's scenario 1: "the user
//! experiences a progressive clustering scenario based on the S2T-Clustering
//! algorithm as well as related methods, such as T-OPTICS, TRACLUS and
//! Convoys".
//!
//! * [`mod@traclus`] — TRACLUS (Lee, Han & Whang, SIGMOD 2007): MDL-based
//!   trajectory partitioning followed by density-based clustering of the
//!   resulting line segments. Purely spatial — the method the paper positions
//!   S2T against ("focusing on the spatial and ignoring the temporal
//!   dimension").
//! * [`mod@toptics`] — T-OPTICS (Nanni & Pedreschi, JIIS 2006): OPTICS over whole
//!   trajectories with a time-synchronized distance.
//! * [`mod@convoys`] — Convoy discovery (Jeung et al., PVLDB 2008): per-snapshot
//!   DBSCAN groups intersected over at least `k` consecutive snapshots.
//! * [`mod@dbscan`] / [`mod@optics`] — the generic density-clustering machinery the
//!   three methods above share.
//!
//! **Layer:** comparison-only compute, beside `hermes-s2t`; used by the
//! E2 bench and nothing in the serving path (`docs/ARCHITECTURE.md` has
//! the layer map).

pub mod convoys;
pub mod dbscan;
pub mod optics;
pub mod toptics;
pub mod traclus;

pub use convoys::{discover_convoys, Convoy, ConvoyParams};
pub use dbscan::{dbscan, DbscanLabel};
pub use optics::{extract_clusters, optics_order, OpticsPoint};
pub use toptics::{t_optics, TOpticsParams};
pub use traclus::{traclus, TraclusParams, TraclusResult};
