//! Generic OPTICS ordering and cluster extraction.
//!
//! OPTICS (Ankerst et al.) produces a reachability ordering rather than a
//! flat clustering; T-OPTICS runs it over whole-trajectory distances. The
//! flat clusters used for comparison are extracted with a simple reachability
//! threshold, as in the original T-OPTICS experiments.

/// One item of the OPTICS output ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticsPoint {
    /// Index of the item in the input.
    pub index: usize,
    /// Reachability distance of the item (`f64::INFINITY` for the first item
    /// of each density-connected component).
    pub reachability: f64,
}

/// Computes the OPTICS ordering of `n` items under the given distance.
///
/// `eps` bounds the neighbourhood search and `min_pts` is the core-size
/// threshold (including the point itself).
pub fn optics_order(
    n: usize,
    eps: f64,
    min_pts: usize,
    dist: impl Fn(usize, usize) -> f64,
) -> Vec<OpticsPoint> {
    let mut processed = vec![false; n];
    let mut reachability = vec![f64::INFINITY; n];
    let mut order: Vec<OpticsPoint> = Vec::with_capacity(n);

    let neighbours = |i: usize| -> Vec<(usize, f64)> {
        (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, dist(i, j)))
            .filter(|&(_, d)| d <= eps)
            .collect()
    };
    let core_distance = |nbrs: &[(usize, f64)]| -> Option<f64> {
        if nbrs.len() + 1 < min_pts {
            return None;
        }
        let mut ds: Vec<f64> = nbrs.iter().map(|&(_, d)| d).collect();
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(ds[min_pts - 2]) // min_pts includes the point itself
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        processed[start] = true;
        order.push(OpticsPoint {
            index: start,
            reachability: f64::INFINITY,
        });
        let nbrs = neighbours(start);
        let Some(core_d) = core_distance(&nbrs) else {
            continue;
        };
        // Seed list ordered by reachability.
        let mut seeds: Vec<usize> = Vec::new();
        let update = |seeds: &mut Vec<usize>,
                      reachability: &mut Vec<f64>,
                      center_core: f64,
                      nbrs: &[(usize, f64)],
                      processed: &[bool]| {
            for &(j, d) in nbrs {
                if processed[j] {
                    continue;
                }
                let new_reach = center_core.max(d);
                if new_reach < reachability[j] {
                    reachability[j] = new_reach;
                    if !seeds.contains(&j) {
                        seeds.push(j);
                    }
                }
            }
        };
        update(&mut seeds, &mut reachability, core_d, &nbrs, &processed);

        while !seeds.is_empty() {
            // Pop the seed with the smallest reachability.
            let (pos, &next) = seeds
                .iter()
                .enumerate()
                .min_by(|a, b| reachability[*a.1].partial_cmp(&reachability[*b.1]).unwrap())
                .unwrap();
            seeds.swap_remove(pos);
            if processed[next] {
                continue;
            }
            processed[next] = true;
            order.push(OpticsPoint {
                index: next,
                reachability: reachability[next],
            });
            let nbrs = neighbours(next);
            if let Some(core_d) = core_distance(&nbrs) {
                update(&mut seeds, &mut reachability, core_d, &nbrs, &processed);
            }
        }
    }
    order
}

/// Extracts flat clusters from an OPTICS ordering: a new cluster starts
/// whenever the reachability exceeds `threshold`; items whose reachability
/// exceeds the threshold and that do not start a dense region are noise.
/// Returns `(cluster assignment per input index, number of clusters)` where
/// `None` means noise.
pub fn extract_clusters(order: &[OpticsPoint], threshold: f64) -> (Vec<Option<usize>>, usize) {
    let n = order.len();
    let mut assignment = vec![None; n];
    let mut current: Option<usize> = None;
    let mut next_cluster = 0usize;

    for (pos, p) in order.iter().enumerate() {
        if p.reachability > threshold {
            // This item is not density-reachable from the previous one. It
            // starts a new cluster only if the *next* item reaches back to it.
            let starts_cluster = order
                .get(pos + 1)
                .map(|q| q.reachability <= threshold)
                .unwrap_or(false);
            if starts_cluster {
                current = Some(next_cluster);
                next_cluster += 1;
                assignment[p.index] = current;
            } else {
                current = None;
                assignment[p.index] = None;
            }
        } else {
            assignment[p.index] = current;
        }
    }
    (assignment, next_cluster)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euclid(points: &[(f64, f64)]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |i, j| {
            let (ax, ay) = points[i];
            let (bx, by) = points[j];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        }
    }

    #[test]
    fn ordering_visits_every_item_once() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 0.0)).collect();
        let order = optics_order(pts.len(), 3.0, 3, euclid(&pts));
        assert_eq!(order.len(), 20);
        let mut seen: Vec<usize> = order.iter().map(|p| p.index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn two_blobs_yield_two_clusters() {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push((i as f64 * 0.2, 0.0));
        }
        for i in 0..8 {
            pts.push((100.0 + i as f64 * 0.2, 0.0));
        }
        pts.push((50.0, 50.0)); // noise
        let order = optics_order(pts.len(), 2.0, 3, euclid(&pts));
        let (assignment, num) = extract_clusters(&order, 2.0);
        assert_eq!(num, 2);
        let a = assignment[0].unwrap();
        let b = assignment[8].unwrap();
        assert_ne!(a, b);
        assert!(assignment[..8].iter().all(|x| *x == Some(a)));
        assert!(assignment[8..16].iter().all(|x| *x == Some(b)));
        assert_eq!(assignment[16], None);
    }

    #[test]
    fn dense_items_have_finite_reachability() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 0.1, 0.0)).collect();
        let order = optics_order(pts.len(), 1.0, 3, euclid(&pts));
        let finite = order.iter().filter(|p| p.reachability.is_finite()).count();
        assert_eq!(finite, 9, "all but the starting item are reachable");
    }

    #[test]
    fn empty_input() {
        let order = optics_order(0, 1.0, 2, |_, _| 0.0);
        assert!(order.is_empty());
        let (assignment, n) = extract_clusters(&order, 1.0);
        assert!(assignment.is_empty());
        assert_eq!(n, 0);
    }
}
