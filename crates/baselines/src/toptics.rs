//! T-OPTICS: time-focused clustering of whole trajectories (Nanni &
//! Pedreschi, JIIS 2006).
//!
//! OPTICS is run over the *time-synchronized* Euclidean distance between
//! whole trajectories; flat clusters are extracted with a reachability
//! threshold. Unlike S2T-Clustering, the unit of grouping is the entire
//! trajectory — the method cannot report that only a *portion* of two
//! trajectories co-moves, which is exactly the gap sub-trajectory clustering
//! fills.

use crate::optics::{extract_clusters, optics_order, OpticsPoint};
use hermes_trajectory::{synchronized_euclidean, Trajectory};

/// Parameters of a T-OPTICS run.
#[derive(Debug, Clone, PartialEq)]
pub struct TOpticsParams {
    /// Neighbourhood radius of the OPTICS pass.
    pub eps: f64,
    /// Core threshold (minimum neighbourhood size including the item).
    pub min_pts: usize,
    /// Reachability threshold used to extract flat clusters.
    pub reachability_threshold: f64,
}

impl Default for TOpticsParams {
    fn default() -> Self {
        TOpticsParams {
            eps: 200.0,
            min_pts: 3,
            reachability_threshold: 150.0,
        }
    }
}

/// Output of [`t_optics`].
#[derive(Debug, Clone)]
pub struct TOpticsResult {
    /// The OPTICS ordering (index → input trajectory position).
    pub order: Vec<OpticsPoint>,
    /// Flat cluster per input trajectory (`None` = noise).
    pub assignment: Vec<Option<usize>>,
    /// Number of flat clusters.
    pub num_clusters: usize,
}

impl TOpticsResult {
    /// Number of trajectories labelled as noise.
    pub fn num_noise(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_none()).count()
    }

    /// Input positions of the members of cluster `c`.
    pub fn cluster_members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(c))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs T-OPTICS over whole trajectories.
pub fn t_optics(trajectories: &[Trajectory], params: &TOpticsParams) -> TOpticsResult {
    let dist = |i: usize, j: usize| -> f64 {
        if i == j {
            return 0.0;
        }
        synchronized_euclidean(&trajectories[i], &trajectories[j]).unwrap_or(f64::INFINITY)
    };
    let order = optics_order(trajectories.len(), params.eps, params.min_pts, dist);
    let (assignment, num_clusters) = extract_clusters(&order, params.reachability_threshold);
    TOpticsResult {
        order,
        assignment,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Timestamp};

    fn line(id: u64, y: f64, t0: i64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..20)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn groups_co_moving_trajectories() {
        let mut trajs = Vec::new();
        for k in 0..5 {
            trajs.push(line(k, k as f64 * 20.0, 0));
        }
        for k in 5..9 {
            trajs.push(line(k, 50_000.0 + (k - 5) as f64 * 20.0, 0));
        }
        trajs.push(line(9, 200_000.0, 0)); // noise
        let result = t_optics(&trajs, &TOpticsParams::default());
        assert_eq!(result.num_clusters, 2);
        assert_eq!(result.num_noise(), 1);
        assert_eq!(
            result.cluster_members(0).len() + result.cluster_members(1).len(),
            9
        );
    }

    #[test]
    fn time_shifted_trajectories_are_not_grouped() {
        // Same geometry, disjoint lifespans: a time-aware method must not
        // cluster them (their synchronized distance is infinite).
        let trajs = vec![
            line(0, 0.0, 0),
            line(1, 10.0, 0),
            line(2, 20.0, 0),
            line(3, 0.0, 86_400_000),
            line(4, 10.0, 86_400_000),
        ];
        let result = t_optics(
            &trajs,
            &TOpticsParams {
                min_pts: 3,
                ..TOpticsParams::default()
            },
        );
        // The three morning trajectories cluster; the two evening ones are
        // too few for min_pts=3.
        assert_eq!(result.num_clusters, 1);
        let members = result.cluster_members(0);
        assert_eq!(members, vec![0, 1, 2]);
        assert_eq!(result.num_noise(), 2);
    }

    #[test]
    fn whole_trajectory_granularity_misses_partial_co_movement() {
        // Two objects co-move for the first half only; the second half
        // diverges far apart. Whole-trajectory T-OPTICS averages the two
        // halves and refuses to cluster them with a tight threshold, whereas
        // a sub-trajectory method would report the shared half.
        let a: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 100.0, 0.0, Timestamp(i as i64 * 60_000)))
            .collect();
        let b: Vec<Point> = (0..20)
            .map(|i| {
                let y = if i < 10 {
                    10.0
                } else {
                    10.0 + (i - 9) as f64 * 2_000.0
                };
                Point::new(i as f64 * 100.0, y, Timestamp(i as i64 * 60_000))
            })
            .collect();
        let trajs = vec![
            Trajectory::new(0, 0, a).unwrap(),
            Trajectory::new(1, 1, b).unwrap(),
        ];
        let result = t_optics(
            &trajs,
            &TOpticsParams {
                eps: 100.0,
                min_pts: 2,
                reachability_threshold: 100.0,
            },
        );
        assert_eq!(
            result.num_clusters, 0,
            "whole-trajectory distance hides the shared half"
        );
    }

    #[test]
    fn empty_input() {
        let result = t_optics(&[], &TOpticsParams::default());
        assert_eq!(result.num_clusters, 0);
        assert!(result.assignment.is_empty());
    }
}
