//! TRACLUS: the partition-and-group framework of Lee, Han & Whang (SIGMOD
//! 2007).
//!
//! 1. **Partition** each trajectory at characteristic points chosen by an
//!    approximate MDL criterion (keep a point when describing the movement
//!    through it is cheaper than skipping it).
//! 2. **Group** the resulting line segments with DBSCAN under the weighted
//!    segment distance (perpendicular + parallel + angular components).
//!
//! TRACLUS is purely spatial: timestamps never enter the distance, which is
//! exactly the limitation the Hermes paper highlights. The E2 benchmark uses
//! this implementation to show where the time-aware methods differ.

use crate::dbscan::{dbscan, DbscanLabel};
use hermes_trajectory::{Point, Trajectory, TrajectoryId};

/// Parameters of the TRACLUS pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraclusParams {
    /// DBSCAN neighbourhood radius over the segment distance.
    pub eps: f64,
    /// DBSCAN core threshold (minimum number of line segments, `MinLns`).
    pub min_lns: usize,
    /// Minimum length of a partitioned segment; shorter ones are merged.
    pub min_segment_length: f64,
}

impl Default for TraclusParams {
    fn default() -> Self {
        TraclusParams {
            eps: 80.0,
            min_lns: 3,
            min_segment_length: 10.0,
        }
    }
}

/// A directed line segment extracted by the partitioning phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSegment {
    /// Trajectory the segment came from.
    pub trajectory_id: TrajectoryId,
    /// Start point (time is carried along but ignored by the distances).
    pub start: Point,
    /// End point.
    pub end: Point,
}

impl LineSegment {
    fn length(&self) -> f64 {
        self.start.spatial_distance(&self.end)
    }
}

/// Output of [`traclus`].
#[derive(Debug, Clone)]
pub struct TraclusResult {
    /// The partitioned segments, in input order.
    pub segments: Vec<LineSegment>,
    /// DBSCAN label per segment.
    pub labels: Vec<DbscanLabel>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl TraclusResult {
    /// Number of segments labelled as noise.
    pub fn num_noise_segments(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| **l == DbscanLabel::Noise)
            .count()
    }

    /// Segments belonging to cluster `c`.
    pub fn cluster_segments(&self, c: usize) -> Vec<&LineSegment> {
        self.segments
            .iter()
            .zip(self.labels.iter())
            .filter(|(_, l)| l.cluster() == Some(c))
            .map(|(s, _)| s)
            .collect()
    }

    /// Distinct trajectories participating in cluster `c`.
    pub fn cluster_trajectories(&self, c: usize) -> Vec<TrajectoryId> {
        let mut ids: Vec<TrajectoryId> = self
            .cluster_segments(c)
            .iter()
            .map(|s| s.trajectory_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

// --- MDL partitioning ------------------------------------------------------

fn log2(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

fn perpendicular_and_angle(a: &Point, b: &Point, p: &Point, q: &Point) -> (f64, f64) {
    // Distances of the shorter segment (p,q) from the longer (a,b), following
    // the TRACLUS definitions.
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len_sq = dx * dx + dy * dy;
    let project = |r: &Point| -> (f64, f64) {
        if len_sq == 0.0 {
            return (a.x, a.y);
        }
        let t = ((r.x - a.x) * dx + (r.y - a.y) * dy) / len_sq;
        (a.x + t * dx, a.y + t * dy)
    };
    let (px, py) = project(p);
    let (qx, qy) = project(q);
    let l1 = ((p.x - px).powi(2) + (p.y - py).powi(2)).sqrt();
    let l2 = ((q.x - qx).powi(2) + (q.y - qy).powi(2)).sqrt();
    let perpendicular = if l1 + l2 == 0.0 {
        0.0
    } else {
        (l1 * l1 + l2 * l2) / (l1 + l2)
    };

    let (ex, ey) = (q.x - p.x, q.y - p.y);
    let e_len = (ex * ex + ey * ey).sqrt();
    let ab_len = len_sq.sqrt();
    let angle = if e_len == 0.0 || ab_len == 0.0 {
        0.0
    } else {
        let cos = ((dx * ex + dy * ey) / (ab_len * e_len)).clamp(-1.0, 1.0);
        let sin = (1.0 - cos * cos).sqrt();
        e_len * sin
    };
    (perpendicular, angle)
}

/// MDL cost of describing `points[lo..=hi]` by the single segment (lo, hi):
/// `L(H) + L(D|H)` where `L(D|H)` sums, per original segment, the code length
/// of its perpendicular and angular deviation from the shortcut.
fn mdl_par(points: &[Point], lo: usize, hi: usize) -> f64 {
    let l_h = log2(points[lo].spatial_distance(&points[hi]));
    let mut l_dh = 0.0;
    for k in lo..hi {
        let (p, a) = perpendicular_and_angle(&points[lo], &points[hi], &points[k], &points[k + 1]);
        l_dh += log2(p) + log2(a);
    }
    l_h + l_dh
}

/// MDL cost of keeping every original segment between `lo` and `hi`.
fn mdl_nopar(points: &[Point], lo: usize, hi: usize) -> f64 {
    (lo..hi)
        .map(|k| log2(points[k].spatial_distance(&points[k + 1])))
        .sum()
}

/// Approximate MDL partitioning: returns the indices of the characteristic
/// points (always including the first and last point).
pub fn partition_trajectory(points: &[Point]) -> Vec<usize> {
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut cp = vec![0usize];
    let mut start = 0usize;
    let mut length = 1usize;
    while start + length < n {
        let curr = start + length;
        let cost_par = mdl_par(points, start, curr);
        let cost_nopar = mdl_nopar(points, start, curr);
        if cost_par > cost_nopar {
            cp.push(curr - 1);
            start = curr - 1;
            length = 1;
        } else {
            length += 1;
        }
    }
    if *cp.last().unwrap() != n - 1 {
        cp.push(n - 1);
    }
    cp.dedup();
    cp
}

// --- Segment distance ------------------------------------------------------

/// The TRACLUS segment distance: sum of perpendicular, parallel and angular
/// components (all weights 1, as in the reference implementation).
pub fn segment_distance(a: &LineSegment, b: &LineSegment) -> f64 {
    // Use the longer segment as the base.
    let (longer, shorter) = if a.length() >= b.length() {
        (a, b)
    } else {
        (b, a)
    };
    let (perp, angle) =
        perpendicular_and_angle(&longer.start, &longer.end, &shorter.start, &shorter.end);

    // Parallel distance: how far the shorter segment's projections stick out
    // beyond the longer segment's extent.
    let (dx, dy) = (longer.end.x - longer.start.x, longer.end.y - longer.start.y);
    let len = (dx * dx + dy * dy).sqrt();
    let parallel = if len == 0.0 {
        0.0
    } else {
        let proj = |r: &Point| ((r.x - longer.start.x) * dx + (r.y - longer.start.y) * dy) / len;
        let t1 = proj(&shorter.start);
        let t2 = proj(&shorter.end);
        let before = (-t1.min(t2)).max(0.0);
        let after = (t1.max(t2) - len).max(0.0);
        before.min(after).max(0.0).max(before.min(after))
    };

    perp + parallel + angle
}

// --- The full pipeline -----------------------------------------------------

/// Runs TRACLUS over a set of trajectories.
pub fn traclus(trajectories: &[Trajectory], params: &TraclusParams) -> TraclusResult {
    // Phase 1: partition.
    let mut segments: Vec<LineSegment> = Vec::new();
    for traj in trajectories {
        let cps = partition_trajectory(traj.points());
        for w in cps.windows(2) {
            let seg = LineSegment {
                trajectory_id: traj.id,
                start: traj.points()[w[0]],
                end: traj.points()[w[1]],
            };
            if seg.length() >= params.min_segment_length {
                segments.push(seg);
            }
        }
    }

    // Phase 2: group.
    let labels = dbscan(segments.len(), params.eps, params.min_lns, |i, j| {
        segment_distance(&segments[i], &segments[j])
    });
    let num_clusters = labels
        .iter()
        .filter_map(|l| l.cluster())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);

    TraclusResult {
        segments,
        labels,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Timestamp;

    fn traj(id: u64, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            id,
            id,
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, Timestamp(i as i64 * 10_000)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn partitioning_keeps_endpoints_and_detects_turns() {
        // An L-shaped path: the corner must be a characteristic point.
        let pts: Vec<Point> = (0..=10)
            .map(|i| Point::new(i as f64 * 100.0, 0.0, Timestamp(i * 10_000)))
            .chain(
                (1..=10)
                    .map(|i| Point::new(1_000.0, i as f64 * 100.0, Timestamp((10 + i) * 10_000))),
            )
            .collect();
        let cps = partition_trajectory(&pts);
        assert_eq!(*cps.first().unwrap(), 0);
        assert_eq!(*cps.last().unwrap(), pts.len() - 1);
        assert!(
            cps.iter().any(|&i| (8..=12).contains(&i)),
            "the corner must be characteristic: {cps:?}"
        );
        // A straight line needs no interior characteristic points.
        let line: Vec<Point> = (0..=10)
            .map(|i| Point::new(i as f64 * 100.0, 0.0, Timestamp(i * 10_000)))
            .collect();
        assert_eq!(partition_trajectory(&line), vec![0, 10]);
    }

    #[test]
    fn segment_distance_is_zero_for_identical_and_grows_with_offset() {
        let s = |y: f64| LineSegment {
            trajectory_id: 0,
            start: Point::new(0.0, y, Timestamp(0)),
            end: Point::new(100.0, y, Timestamp(10_000)),
        };
        assert!(segment_distance(&s(0.0), &s(0.0)) < 1e-9);
        let d5 = segment_distance(&s(0.0), &s(5.0));
        let d50 = segment_distance(&s(0.0), &s(50.0));
        assert!(d5 > 0.0 && d50 > d5);
    }

    #[test]
    fn groups_parallel_segments_and_isolates_the_rest() {
        let mut trajs = Vec::new();
        for k in 0..5 {
            trajs.push(traj(
                k,
                &(0..=10)
                    .map(|i| (i as f64 * 100.0, k as f64 * 10.0))
                    .collect::<Vec<_>>(),
            ));
        }
        // One far-away trajectory heading elsewhere.
        trajs.push(traj(
            9,
            &(0..=10)
                .map(|i| (i as f64 * 100.0, 50_000.0))
                .collect::<Vec<_>>(),
        ));
        let result = traclus(&trajs, &TraclusParams::default());
        assert!(result.num_clusters >= 1);
        let members = result.cluster_trajectories(0);
        assert!(
            members.len() >= 4,
            "the bundle must cluster together: {members:?}"
        );
        assert!(!members.contains(&9));
        assert!(result.num_noise_segments() >= 1);
    }

    #[test]
    fn traclus_ignores_time_shifted_movement() {
        // Two identical paths a day apart: TRACLUS clusters them anyway —
        // the behaviour the time-aware methods are designed to avoid.
        let a: Vec<Point> = (0..=10)
            .map(|i| Point::new(i as f64 * 100.0, 0.0, Timestamp(i * 10_000)))
            .collect();
        let b: Vec<Point> = (0..=10)
            .map(|i| Point::new(i as f64 * 100.0, 5.0, Timestamp(86_400_000 + i * 10_000)))
            .collect();
        let c: Vec<Point> = (0..=10)
            .map(|i| {
                Point::new(
                    i as f64 * 100.0,
                    10.0,
                    Timestamp(2 * 86_400_000 + i * 10_000),
                )
            })
            .collect();
        let trajs = vec![
            Trajectory::new(1, 1, a).unwrap(),
            Trajectory::new(2, 2, b).unwrap(),
            Trajectory::new(3, 3, c).unwrap(),
        ];
        let result = traclus(
            &trajs,
            &TraclusParams {
                min_lns: 2,
                ..TraclusParams::default()
            },
        );
        assert!(result.num_clusters >= 1);
        let members = result.cluster_trajectories(0);
        assert!(
            members.len() >= 2,
            "purely spatial clustering merges time-shifted movers"
        );
    }

    #[test]
    fn empty_input() {
        let result = traclus(&[], &TraclusParams::default());
        assert_eq!(result.num_clusters, 0);
        assert!(result.segments.is_empty());
    }
}
