//! E10 — intra-query parallel scaling: one S2T / QuT query fanned out over
//! the `hermes-exec` thread pool at 1/2/4/8 threads, reported as speedup
//! over the serial executor.
//!
//! The S2T workload is the E2-sized aircraft scenario (same generator, same
//! seed); QuT runs the standard maritime tree with a misaligned window so
//! both level-3 reuse and border re-clustering are on the clock. Before any
//! timing, every parallel configuration's answer is asserted equal to the
//! serial answer — the scheduler is only allowed to change *when* work runs,
//! never *what* comes out.

use hermes_bench::harness::{bench, report, Sample};
use hermes_bench::{
    aircraft_s2t_params, aircraft_with, maritime_s2t_params, maritime_standard, qut_params,
    tree_params,
};
use hermes_exec::{ExecPolicy, Executor};
use hermes_retratree::{qut_clustering_with, ReTraTree};
use hermes_s2t::run_s2t_with;
use hermes_trajectory::{TimeInterval, Timestamp};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn speedup_table(title: &str, samples: &[Sample]) {
    eprintln!("\n# E10 summary: {title}");
    eprintln!("{:>8} {:>12} {:>9}", "threads", "median_ms", "speedup");
    let serial_ms = samples[0].median_ms;
    for (t, s) in THREADS.iter().zip(samples.iter()) {
        eprintln!(
            "{:>8} {:>12.1} {:>8.2}x",
            t,
            s.median_ms,
            serial_ms / s.median_ms.max(1e-9)
        );
    }
}

fn main() {
    // --- S2T scaling on the E2-sized aircraft workload ------------------
    let scenario = aircraft_with(36, 0xE2);
    let params = aircraft_s2t_params();
    let executors: Vec<(usize, Executor)> = THREADS
        .iter()
        .map(|&threads| (threads, Executor::new(ExecPolicy { threads })))
        .collect();

    // Correctness gate: every thread count produces the serial answer.
    let reference = run_s2t_with(&scenario.trajectories, &params, &executors[0].1);
    for (threads, exec) in &executors[1..] {
        let outcome = run_s2t_with(&scenario.trajectories, &params, exec);
        assert_eq!(
            outcome.profiles, reference.profiles,
            "threads={threads}: votes diverged from serial"
        );
        assert_eq!(
            outcome.result.num_clusters(),
            reference.result.num_clusters(),
            "threads={threads}: clusters diverged from serial"
        );
    }

    // Where the serial time goes (every phase except the index build fans
    // out, so this is the parallelizable fraction Amdahl's law works on).
    let t = reference.timings;
    eprintln!(
        "serial S2T phases: index_build {:.1} ms | voting {:.1} ms | segmentation {:.1} ms | \
         sampling {:.1} ms | clustering {:.1} ms",
        t.index_build_ms, t.voting_ms, t.segmentation_ms, t.sampling_ms, t.clustering_ms
    );

    let s2t_samples: Vec<Sample> = executors
        .iter()
        .map(|(threads, exec)| {
            bench(format!("s2t/threads={threads}"), 10, || {
                run_s2t_with(&scenario.trajectories, &params, exec)
            })
        })
        .collect();
    report("e10_parallel_scaling (S2T)", &s2t_samples);

    // --- QuT scaling on the standard maritime tree ----------------------
    let maritime = maritime_standard(0xE10);
    let tree = ReTraTree::build_from(tree_params(maritime_s2t_params()), &maritime.trajectories);
    let qp = qut_params(maritime_s2t_params());
    let span = tree.lifespan().expect("populated tree");
    // Misaligned window: reuse in the middle, re-clustering at the borders.
    let w = TimeInterval::new(
        Timestamp(span.start.millis() + 20 * 60_000),
        Timestamp(span.end.millis() - 20 * 60_000),
    );

    let (qut_reference, _) = qut_clustering_with(&tree, &w, &qp, &executors[0].1);
    for (threads, exec) in &executors[1..] {
        let (result, _) = qut_clustering_with(&tree, &w, &qp, exec);
        assert_eq!(
            result.num_clusters(),
            qut_reference.num_clusters(),
            "threads={threads}: QuT clusters diverged from serial"
        );
        assert_eq!(
            result.num_outliers(),
            qut_reference.num_outliers(),
            "threads={threads}: QuT outliers diverged from serial"
        );
    }

    let qut_samples: Vec<Sample> = executors
        .iter()
        .map(|(threads, exec)| {
            bench(format!("qut/threads={threads}"), 10, || {
                qut_clustering_with(&tree, &w, &qp, exec)
            })
        })
        .collect();
    report("e10_parallel_scaling (QuT)", &qut_samples);

    speedup_table("S2T throughput vs serial", &s2t_samples);
    speedup_table("QuT throughput vs serial", &qut_samples);
}
