//! E11 — durability: checkpoint and recovery wall-time vs dataset size on
//! the seeded urban workload.
//!
//! Three costs are charted per dataset size:
//!
//! * `checkpoint` — serialize the whole engine (catalog, trajectories, the
//!   built ReTraTree with its partition pages and leaf-index entry lists)
//!   into the checksummed snapshot container and truncate the WAL,
//! * `recover_snapshot` — reopen the data directory from that snapshot
//!   (decode + rebuild leaf indexes, no re-clustering),
//! * `recover_wal_replay` — reopen a directory that never checkpointed, so
//!   `CREATE` + ingest + `BUILD INDEX` all replay from the log (the build
//!   re-runs its deterministic clustering — the cost a checkpoint avoids).
//!
//! The correctness gate asserts the recovered engine answers a QUT window
//! with a frame identical to the live engine's before any timing is
//! trusted; the bench aborts on a mismatch. Counters record snapshot and
//! WAL sizes so the JSON charts bytes alongside milliseconds.
//!
//! Env knobs: `HERMES_BENCH_QUICK=1` shrinks the sweep for CI smoke runs;
//! `HERMES_BENCH_DIR` redirects the JSON output (`BENCH_e11_persistence.json`).

use hermes_bench::harness::{bench, report, JsonReport};
use hermes_bench::{tree_params, urban_s2t_params, urban_with};
use hermes_core::HermesEngine;
use hermes_sql::execute;
use std::path::PathBuf;

/// The window query both sides of the correctness gate must answer
/// identically.
const GATE_QUERY: &str = "SELECT QUT(data, 0, 1800000, 0.35, 0.05, 120000, 500, 900000);";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hermes-bench-e11-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Opens a durable engine over `dir` and stages the workload into it.
fn populate(dir: &PathBuf, trajectories: &[hermes_trajectory::Trajectory]) -> HermesEngine {
    let mut engine = HermesEngine::open(dir).expect("open data directory");
    engine.create_dataset("data").expect("fresh directory");
    engine
        .load_trajectories("data", trajectories.to_vec())
        .expect("ingest");
    engine
        .build_index("data", tree_params(urban_s2t_params()))
        .expect("build index");
    engine
}

fn main() {
    let quick = std::env::var("HERMES_BENCH_QUICK").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if quick { &[24] } else { &[24, 48, 96, 192] };
    let iters: u32 = if quick { 3 } else { 7 };

    let mut samples = Vec::new();
    let mut json = JsonReport::new("e11_persistence");

    for &n in sizes {
        let scenario = urban_with(n, 0xE11);
        let trajs = &scenario.trajectories;
        let label = |kind: &str| format!("{kind}/{}", trajs.len());

        // --- Checkpoint cost (and the sizes it produces).
        let ckpt_dir = scratch_dir(&format!("ckpt-{n}"));
        let mut live = populate(&ckpt_dir, trajs);
        let wal_bytes_before = live.stats().wal_bytes;
        let ckpt = bench(label("checkpoint"), iters, || {
            live.checkpoint().expect("checkpoint").snapshot_bytes
        });
        let info = live.checkpoint().expect("checkpoint");

        // --- Correctness gate: the engine recovered from that snapshot
        // answers bit-identically to the live one.
        let live_frame = execute(&mut live, GATE_QUERY)
            .expect("gate query on the live engine")
            .expect_frame(GATE_QUERY)
            .clone();
        // The data-directory lock admits one engine at a time: release the
        // live engine before recovery opens the directory.
        drop(live);
        let mut recovered = HermesEngine::open(&ckpt_dir).expect("recover");
        let recovered_frame = execute(&mut recovered, GATE_QUERY)
            .expect("gate query on the recovered engine")
            .expect_frame(GATE_QUERY)
            .clone();
        assert_eq!(
            live_frame, recovered_frame,
            "recovered engine diverged from the live engine"
        );
        drop(recovered);
        eprintln!(
            "gate ok: {} trajectories, snapshot {} B, identical QUT frames",
            trajs.len(),
            info.snapshot_bytes
        );

        // --- Recovery from the snapshot (WAL is empty after checkpoint).
        let rec_snapshot = bench(label("recover_snapshot"), iters, || {
            HermesEngine::open(&ckpt_dir)
                .expect("recover")
                .stats()
                .stored_records
        });

        // --- Recovery from pure WAL replay (no checkpoint ever ran): the
        // BUILD INDEX re-runs, so this charts what checkpoints save.
        let wal_dir = scratch_dir(&format!("wal-{n}"));
        let wal_engine = populate(&wal_dir, trajs);
        let wal_bytes = wal_engine.stats().wal_bytes;
        drop(wal_engine);
        let rec_replay = bench(label("recover_wal_replay"), iters, || {
            HermesEngine::open(&wal_dir)
                .expect("replay")
                .stats()
                .stored_records
        });

        let counters = |extra: Vec<(String, f64)>| {
            let mut base = vec![
                ("trajectories".to_string(), trajs.len() as f64),
                ("snapshot_bytes".to_string(), info.snapshot_bytes as f64),
                ("wal_bytes_full".to_string(), wal_bytes as f64),
                (
                    "wal_bytes_at_checkpoint".to_string(),
                    wal_bytes_before as f64,
                ),
                ("gate_identical_frames".to_string(), 1.0),
            ];
            base.extend(extra);
            base
        };
        json.push_with(ckpt.clone(), counters(Vec::new()));
        json.push_with(
            rec_snapshot.clone(),
            counters(vec![(
                "speedup_vs_replay".to_string(),
                rec_replay.median_ms / rec_snapshot.median_ms.max(1e-9),
            )]),
        );
        json.push_with(rec_replay.clone(), counters(Vec::new()));
        samples.push(ckpt);
        samples.push(rec_snapshot);
        samples.push(rec_replay);

        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    report("e11_persistence", &samples);
    json.write().expect("write BENCH_e11_persistence.json");
}
