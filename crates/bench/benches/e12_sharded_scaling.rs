//! E12 — sharded query fan-out: queries/sec through a `hermes-coord`
//! coordinator over 1/2/4 loopback shards, with a bit-exactness gate.
//!
//! The workload is the e9 read mix (RANGE probes plus QUT window
//! clusterings) issued by concurrent clients, but upstream of a coordinator
//! that fans multi-shard windows out in parallel and re-merges the partials.
//! Before any timing, every topology's spanning QUT answer is byte-compared
//! against a single-node engine — the scaling numbers are only meaningful if
//! the distributed answer is *identical*, so a mismatch aborts the run and
//! the `gate_bit_identical` counter records the check in the JSON report.

use hermes_bench::harness::{bench, report, JsonReport, Sample};
use hermes_bench::urban_with;
use hermes_coord::{validate_shard_map, CoordServer, Coordinator, FailoverPolicy, ShardSpec};
use hermes_core::{HermesEngine, SharedEngine};
use hermes_exec::ExecPolicy;
use hermes_server::protocol::write_response;
use hermes_server::{ConnectOptions, HermesClient, Response, Server, ServerConfig, ServerHandle};
use hermes_sql::{self as sql, QueryOutcome};
use hermes_trajectory::Trajectory;
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

const VEHICLES: usize = 120;
const SEED: u64 = 0xE12;
const CHUNK_MS: i64 = 360_000; // CHUNK 0.1 HOURS
const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 16;
const BUILD: &str = "BUILD INDEX ON data WITH CHUNK 0.1 HOURS SIGMA 60 EPSILON 250;";

fn span(trajectories: &[Trajectory]) -> (i64, i64) {
    let lo = trajectories
        .iter()
        .map(|t| t.start_time().millis())
        .min()
        .expect("non-empty workload");
    let hi = trajectories
        .iter()
        .map(|t| t.lifespan().end.millis())
        .max()
        .expect("non-empty workload");
    (lo, hi)
}

/// Interior shard boundaries: near-equidistant cuts on the chunk grid,
/// strictly inside the data span (same scheme `tests/sharding.rs` gates on).
fn chunk_cuts((lo, hi): (i64, i64), n_shards: usize) -> Vec<i64> {
    let mut cuts: Vec<i64> = (1..n_shards as i64)
        .map(|i| {
            let raw = lo + (hi - lo) * i / n_shards as i64;
            (raw + CHUNK_MS / 2).div_euclid(CHUNK_MS) * CHUNK_MS
        })
        .collect();
    for i in 1..cuts.len() {
        if cuts[i] <= cuts[i - 1] {
            cuts[i] = cuts[i - 1] + CHUNK_MS;
        }
    }
    assert!(
        cuts.iter().all(|c| *c > lo && *c < hi),
        "cuts {cuts:?} outside the data span ({lo}, {hi})"
    );
    cuts
}

/// Spawns n shards plus a coordinator and loads the workload through the
/// wire; the returned handles keep the topology alive.
fn spawn_topology(
    n_shards: usize,
    trajectories: &[Trajectory],
    window: (i64, i64),
) -> (Vec<ServerHandle>, hermes_coord::CoordServerHandle) {
    let cuts = chunk_cuts(window, n_shards);
    let mut shards = Vec::with_capacity(n_shards);
    let mut specs = Vec::with_capacity(n_shards);
    for k in 0..n_shards {
        let handle = Server::bind(
            "127.0.0.1:0",
            SharedEngine::default(),
            ServerConfig::default(),
        )
        .expect("bind shard")
        .spawn()
        .expect("spawn shard");
        specs.push(ShardSpec {
            name: format!("s{k}"),
            addr: handle.addr().to_string(),
            replicas: Vec::new(),
            start_ms: if k == 0 { i64::MIN } else { cuts[k - 1] },
            end_ms: if k + 1 == n_shards { i64::MAX } else { cuts[k] },
        });
        shards.push(handle);
    }
    validate_shard_map(&mut specs).expect("valid shard map");
    let coordinator = Coordinator::new(specs, ConnectOptions::default(), ExecPolicy::from_env());
    let coord = CoordServer::bind("127.0.0.1:0", coordinator, ServerConfig::default())
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator");

    let mut client = HermesClient::connect(coord.addr()).expect("connect");
    client.query("CREATE DATASET data;").expect("create");
    client.ingest("data", trajectories).expect("ingest");
    client.query(BUILD).expect("build index");
    (shards, coord)
}

fn spawn_server() -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        SharedEngine::default(),
        ServerConfig::default(),
    )
    .expect("bind shard")
    .spawn()
    .expect("spawn shard")
}

/// The replicated topology: 2 shards × 2 replicas. Writes fan to all four
/// servers, so either endpoint of a shard answers reads byte-identically —
/// which is what makes the failover-latency measurement meaningful.
fn spawn_replicated(
    trajectories: &[Trajectory],
    window: (i64, i64),
) -> (Vec<Vec<ServerHandle>>, hermes_coord::CoordServerHandle) {
    let cut = chunk_cuts(window, 2)[0];
    let mut servers = Vec::new();
    let mut specs = Vec::new();
    for (k, (start_ms, end_ms)) in [(i64::MIN, cut), (cut, i64::MAX)].into_iter().enumerate() {
        let replicas: Vec<ServerHandle> = (0..2).map(|_| spawn_server()).collect();
        specs.push(ShardSpec {
            name: format!("s{k}"),
            addr: replicas[0].addr().to_string(),
            replicas: replicas[1..].iter().map(|h| h.addr().to_string()).collect(),
            start_ms,
            end_ms,
        });
        servers.push(replicas);
    }
    validate_shard_map(&mut specs).expect("valid shard map");
    let opts = ConnectOptions {
        retries: 0,
        ..ConnectOptions::default()
    };
    let failover = FailoverPolicy {
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..FailoverPolicy::default()
    };
    let coordinator = Coordinator::with_failover(specs, opts, ExecPolicy::from_env(), failover);
    let coord = CoordServer::bind("127.0.0.1:0", coordinator, ServerConfig::default())
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator");

    let mut client = HermesClient::connect(coord.addr()).expect("connect");
    client.query("CREATE DATASET data;").expect("create");
    client.ingest("data", trajectories).expect("ingest");
    client.query(BUILD).expect("build index");
    (servers, coord)
}

/// The result frame serialized as the wire writes it, stats stripped — the
/// same encoding `tests/sharding.rs` byte-compares.
fn row_bytes(outcome: QueryOutcome) -> Vec<u8> {
    let QueryOutcome::Rows { frame, .. } = outcome else {
        panic!("expected a rows response");
    };
    let mut buf = Vec::new();
    write_response(&mut buf, &Response::Rows { frame, stats: None }).expect("encode");
    buf
}

fn qut_sql((lo, hi): (i64, i64)) -> String {
    format!("SELECT QUT(data, {lo}, {hi}, 0.35, 0.05, 180000, 250, 600000);")
}

fn run_client(addr: SocketAddr, window: (i64, i64), queries: usize) {
    let (lo, hi) = window;
    let step = ((hi - lo) / queries.max(1) as i64).max(1);
    let mut client = HermesClient::connect(addr).expect("connect");
    for i in 0..queries {
        // A sliding probe window: most iterations span several shards.
        let wi = lo + step * (i as i64 % 4);
        client
            .query(&format!("SELECT RANGE(data, {wi}, {hi});"))
            .expect("range query");
        if i % 4 == 0 {
            client.query(&qut_sql((wi, hi))).expect("qut query");
        }
    }
}

fn main() {
    let trajectories = urban_with(VEHICLES, SEED).trajectories;
    let window = span(&trajectories);

    // Single-node reference answer for the gate.
    let mut reference = HermesEngine::new();
    reference.create_dataset("data").expect("create");
    reference
        .load_trajectories("data", trajectories.clone())
        .expect("load");
    sql::execute(&mut reference, BUILD).expect("build index");
    let want = row_bytes(sql::execute(&mut reference, &qut_sql(window)).expect("reference qut"));

    let mut samples: Vec<Sample> = Vec::new();
    let mut json = JsonReport::new("e12_sharded_scaling");
    let mut qps: Vec<(usize, f64)> = Vec::new();
    for n_shards in [1usize, 2, 4] {
        let (_shards, coord) = spawn_topology(n_shards, &trajectories, window);
        let addr = coord.addr();

        // The gate: the spanning QUT must be byte-identical to single-node
        // before this topology's throughput means anything.
        let mut client = HermesClient::connect(addr).expect("connect");
        let got = row_bytes(client.query(&qut_sql(window)).expect("gate qut"));
        assert!(
            got == want,
            "{n_shards}-shard QUT diverges from the single-node answer; \
             refusing to report throughput for a wrong topology"
        );

        let sample = bench(format!("shards/{n_shards}"), 5, || {
            let workers: Vec<_> = (0..CLIENTS)
                .map(|_| thread::spawn(move || run_client(addr, window, QUERIES_PER_CLIENT)))
                .collect();
            for w in workers {
                w.join().expect("client thread");
            }
        });
        let queries = CLIENTS * (QUERIES_PER_CLIENT + QUERIES_PER_CLIENT.div_ceil(4));
        let rate = queries as f64 / (sample.median_ms / 1_000.0);
        qps.push((n_shards, rate));
        json.push_with(
            sample.clone(),
            vec![
                ("queries_per_s".to_string(), rate),
                ("gate_bit_identical".to_string(), 1.0),
            ],
        );
        samples.push(sample);
    }
    // Replicated 2×2 topology: the same read mix with every slice served by
    // a two-endpoint replica set, then a hard primary kill to measure how
    // long the very next spanning QUT takes to fail over — detection plus
    // backoff plus the replica's answer, still behind the byte gate.
    let (mut replica_servers, coord) = spawn_replicated(&trajectories, window);
    let addr = coord.addr();
    let mut client = HermesClient::connect(addr).expect("connect");
    let got = row_bytes(client.query(&qut_sql(window)).expect("gate qut"));
    assert!(
        got == want,
        "replicated 2x2 QUT diverges from the single-node answer; \
         refusing to report throughput for a wrong topology"
    );
    let sample = bench("replicated/2x2".to_string(), 5, || {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| thread::spawn(move || run_client(addr, window, QUERIES_PER_CLIENT)))
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }
    });
    let queries = CLIENTS * (QUERIES_PER_CLIENT + QUERIES_PER_CLIENT.div_ceil(4));
    let replicated_rate = queries as f64 / (sample.median_ms / 1_000.0);

    // Hard-kill s0's primary (sockets severed, no protocol goodbye) and
    // time the next spanning QUT on an already-connected client.
    replica_servers[0].remove(0).kill();
    let started = Instant::now();
    let got = row_bytes(client.query(&qut_sql(window)).expect("post-kill qut"));
    let failover_ms = started.elapsed().as_secs_f64() * 1_000.0;
    assert!(
        got == want,
        "the failed-over QUT diverges from the single-node answer"
    );
    json.push_with(
        sample.clone(),
        vec![
            ("queries_per_s".to_string(), replicated_rate),
            ("gate_bit_identical".to_string(), 1.0),
            ("failover_latency_ms".to_string(), failover_ms),
        ],
    );
    samples.push(sample);

    report("e12_sharded_scaling", &samples);
    json.write().expect("write report");

    eprintln!("\n# E12 summary: coordinator throughput vs. shard count");
    eprintln!("{:>8} {:>12}", "shards", "queries/s");
    for (n, rate) in &qps {
        eprintln!("{n:>8} {rate:>12.1}");
    }
    eprintln!("replicated 2x2: {replicated_rate:.1} queries/s, primary-kill failover in {failover_ms:.1} ms");
    eprintln!("bit-exactness gate: all topologies matched the single-node QUT answer");
}
