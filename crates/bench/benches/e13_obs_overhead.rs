//! E13 — observability overhead: what does the hermes-obs layer cost per
//! statement?
//!
//! Every server request pays a fixed observability toll: registry counter
//! updates, one latency-histogram observation, and one span recorded into
//! the ring buffer (with the statement text and status attributes the
//! serving edge attaches). This bench runs the same read workload the
//! concurrency bench uses — cheap `RANGE` probes plus periodic `QUT`
//! clusterings, the worst case for *relative* overhead because the queries
//! themselves are fast — twice: bare statement execution, and statement
//! execution wrapped in exactly the per-request instrument updates
//! `hermes-serve` performs.
//!
//! The gate: the per-statement cost of the instrument updates, measured in
//! isolation (a tight loop over the same registry/histogram/span-store
//! operations), must stay under 5% of the bare per-statement cost —
//! observability is supposed to be free at query granularity. The isolated
//! ratio is what's gated because it is stable on shared CI machines; the
//! full A/B medians (whose difference is the same quantity buried in
//! scheduler noise many times its size) are reported as counters for the
//! JSON trajectory. A violation exits non-zero so CI (and perf PRs) catch a
//! regression in the hot-path cost of the obs primitives.
//!
//! Env knobs: `HERMES_BENCH_QUICK=1` shrinks the sweep for CI smoke runs;
//! `HERMES_BENCH_DIR` redirects the JSON output
//! (`BENCH_e13_obs_overhead.json`).

use hermes_bench::harness::{bench, report, JsonReport, Sample};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_core::HermesEngine;
use hermes_obs::{next_id, Registry, Span, SpanStore};
use hermes_retratree::ReTraTreeParams;
use hermes_server::ServerMetrics;
use hermes_sql::execute;
use hermes_trajectory::Duration as TrajDuration;
use std::process::ExitCode;
use std::time::Instant;

/// Maximum tolerated median slowdown of the instrumented run, in percent.
const GATE_OVERHEAD_PCT: f64 = 5.0;

fn statements(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let window_end = 1_800_000 + (i as i64 % 4) * 900_000;
            if i % 4 == 0 {
                format!("SELECT QUT(data, 0, {window_end}, 0.35, 0.05, 300000, 6000, 1800000);")
            } else {
                format!("SELECT RANGE(data, 0, {window_end});")
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let quick = std::env::var("HERMES_BENCH_QUICK").is_ok_and(|v| v == "1");
    let iters: u32 = if quick { 3 } else { 9 };
    let queries = statements(if quick { 40 } else { 160 });

    let scenario = aircraft_with(60, 0xE13);
    let mut engine = HermesEngine::new();
    engine.create_dataset("data").unwrap();
    engine
        .load_trajectories("data", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index(
            "data",
            ReTraTreeParams {
                chunk_duration: TrajDuration::from_hours(2),
                s2t: aircraft_s2t_params(),
                ..ReTraTreeParams::default()
            },
        )
        .unwrap();

    // The exact per-request observability state a server carries.
    let registry = Registry::new();
    let metrics = ServerMetrics::register(&registry);
    let spans = SpanStore::default();

    let bare = bench("bare", iters, || {
        for q in &queries {
            execute(&mut engine, q).expect("bare query");
        }
    });
    let instrumented = bench("instrumented", iters, || {
        for q in &queries {
            // Mirror the server's request loop: count the request bytes,
            // time the statement, record latency + outcome counters, and
            // record one root span with the statement/status attributes.
            metrics.bytes_in.add(q.len() as u64);
            let started = Instant::now();
            let outcome = execute(&mut engine, q).expect("instrumented query");
            let elapsed = started.elapsed();
            metrics.latency.record(elapsed);
            metrics.queries_served.inc();
            metrics.bytes_out.add(q.len() as u64);
            spans.record(Span {
                trace_id: next_id(),
                span_id: next_id(),
                parent_span_id: 0,
                name: "query".to_string(),
                start_us: 0,
                duration_us: elapsed.as_micros() as u64,
                attrs: vec![("statement", q.clone()), ("status", "ok".to_string())],
            });
            drop(outcome);
        }
    });
    // The gated quantity: the instrument updates alone, timed in isolation.
    // One "statement" of observability is the block added above — counter
    // adds, histogram observation, and a span with two attributes.
    let statement = &queries[0];
    let instruments = bench("instruments_only", iters, || {
        for _ in 0..queries.len() {
            metrics.bytes_in.add(statement.len() as u64);
            metrics.latency.record(std::time::Duration::from_micros(70));
            metrics.queries_served.inc();
            metrics.bytes_out.add(statement.len() as u64);
            spans.record(Span {
                trace_id: next_id(),
                span_id: next_id(),
                parent_span_id: 0,
                name: "query".to_string(),
                start_us: 0,
                duration_us: 70,
                attrs: vec![
                    ("statement", statement.clone()),
                    ("status", "ok".to_string()),
                ],
            });
        }
    });
    let samples: Vec<Sample> = vec![bare.clone(), instrumented.clone(), instruments.clone()];
    report("e13_obs_overhead", &samples);

    let qps = |s: &Sample| queries.len() as f64 / (s.median_ms / 1_000.0);
    let ab_overhead_pct = (instrumented.median_ms - bare.median_ms) / bare.median_ms * 100.0;
    let overhead_pct = instruments.median_ms / bare.median_ms * 100.0;
    let pass = overhead_pct <= GATE_OVERHEAD_PCT;
    eprintln!(
        "\n# E13 summary: bare {:.1} q/s, instrumented {:.1} q/s (A/B delta {ab_overhead_pct:+.2}%); \
         instrument cost {:.3} us/statement = {overhead_pct:.3}% of a bare statement \
         (gate {GATE_OVERHEAD_PCT}%) — one scrape renders {} samples",
        qps(&bare),
        qps(&instrumented),
        instruments.median_ms * 1_000.0 / queries.len() as f64,
        registry.samples().len(),
    );

    let mut json = JsonReport::new("e13_obs_overhead");
    json.push_with(
        bare.clone(),
        vec![("queries_per_s".to_string(), qps(&bare))],
    );
    json.push_with(
        instrumented.clone(),
        vec![
            ("queries_per_s".to_string(), qps(&instrumented)),
            ("ab_overhead_pct".to_string(), ab_overhead_pct),
        ],
    );
    json.push_with(
        instruments.clone(),
        vec![
            (
                "us_per_statement".to_string(),
                instruments.median_ms * 1_000.0 / queries.len() as f64,
            ),
            ("overhead_pct".to_string(), overhead_pct),
            ("gate_overhead_pct".to_string(), GATE_OVERHEAD_PCT),
            ("gate_pass".to_string(), if pass { 1.0 } else { 0.0 }),
        ],
    );
    json.write().expect("write BENCH_e13_obs_overhead.json");

    if !pass {
        eprintln!(
            "GATE FAILED: observability costs {overhead_pct:.3}% of a bare statement, \
             exceeding {GATE_OVERHEAD_PCT}%"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
