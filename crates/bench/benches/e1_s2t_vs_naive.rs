//! E1 — the "orders of magnitude speedup in comparison to corresponding
//! PostgreSQL functions" claim (§III, preparatory phase), extended with the
//! flat-hot-path comparison.
//!
//! Four voting implementations are measured on the seeded urban workload:
//!
//! * `arena`     — SoA `SegmentArena` + `PackedSegmentIndex` with the
//!   batched SIMD kernel and the lower-bound pruning ladder (the hot path),
//! * `arena-pr4` — the same arena layout before batching/pruning landed:
//!   box-gap filter only, scalar kernel per candidate (`arena_voting_unpruned`),
//! * `indexed`   — the object-graph `SegmentIndex`/`RTree3D` path (what the
//!   pipeline used before the arena landed),
//! * `naive`     — the quadratic enumeration (the paper's baseline).
//!
//! The correctness gate asserts all four produce **bit-identical votes**
//! and that the full pipelines agree on clusters and outliers; the bench
//! aborts on any mismatch. Timings (including the arena-vs-indexed voting
//! speedup and per-phase pipeline breakdowns) are informational and land in
//! `BENCH_e1_s2t_vs_naive.json`.
//!
//! Env knobs: `HERMES_BENCH_QUICK=1` shrinks the sweep for CI smoke runs;
//! `HERMES_BENCH_DIR` redirects the JSON output.

use hermes_bench::harness::{bench, bench_pair, report, JsonReport};
use hermes_bench::{urban_s2t_params, urban_with};
use hermes_exec::Executor;
use hermes_s2t::{
    arena_voting, arena_voting_counted_with, arena_voting_unpruned, indexed_voting, naive_voting,
    run_s2t, run_s2t_naive, PackedSegmentIndex, SegmentArena, SegmentIndex,
};
use hermes_trajectory::{mean_sync_distance_batch_at, simd_level, SimdLevel};

fn main() {
    let quick = std::env::var("HERMES_BENCH_QUICK").is_ok_and(|v| v == "1");
    let params = urban_s2t_params();
    // The first size is THE seeded urban dataset of the headline claim
    // (arena voting ≥ 2× the pre-arena indexed path at 1 thread); the larger
    // sizes chart how the advantage evolves as kernel work — identical in
    // both paths — grows toward dominance.
    let sizes: &[usize] = if quick { &[24] } else { &[24, 48, 96, 192] };
    let iters: u32 = if quick { 5 } else { 10 };

    let mut samples = Vec::new();
    let mut json = JsonReport::new("e1_s2t_vs_naive");

    for &n in sizes {
        let scenario = urban_with(n, 0xE1);
        let trajs = &scenario.trajectories;
        let label = |kind: &str| format!("{kind}/{}", trajs.len());

        // --- Correctness gate: the three voting paths must agree bit for
        // bit before any timing is trusted.
        let arena = SegmentArena::build(trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let legacy = SegmentIndex::build(trajs);
        let (via_arena, kernel) =
            arena_voting_counted_with(&arena, &packed, &params, &Executor::serial());
        let via_pr4 = arena_voting_unpruned(&arena, &packed, &params);
        let via_indexed = indexed_voting(trajs, &legacy, &params);
        let via_naive = naive_voting(trajs, &params);
        assert_eq!(
            via_arena, via_pr4,
            "pruned/batched voting diverged from the unpruned arena reference"
        );
        assert_eq!(
            via_arena, via_indexed,
            "arena voting diverged from the indexed reference"
        );
        assert_eq!(
            via_arena, via_naive,
            "arena voting diverged from the naive reference"
        );
        let fast = run_s2t(trajs, &params);
        let slow = run_s2t_naive(trajs, &params);
        assert_eq!(fast.profiles, slow.profiles, "pipeline votes diverged");
        assert_eq!(fast.result.num_clusters(), slow.result.num_clusters());
        assert_eq!(fast.result.num_outliers(), slow.result.num_outliers());
        eprintln!(
            "gate ok: {} trajectories, {} segments, bit-identical votes",
            trajs.len(),
            arena.num_segments()
        );

        // --- Voting phase only: the hot path against the pre-arena path
        // and against its own PR 4 (unpruned, scalar-kernel) incarnation.
        // The arena/PR 4 pair is the headline *ratio*, so it is measured in
        // alternating rounds — machine drift then biases neither side.
        let (s_arena_vote, s_pr4_vote) = bench_pair(
            label("vote-arena"),
            label("vote-arena-pr4"),
            5,
            (iters / 5).max(1),
            || arena_voting(&arena, &packed, &params),
            || arena_voting_unpruned(&arena, &packed, &params),
        );
        let s_indexed_vote = bench(label("vote-indexed"), iters, || {
            indexed_voting(trajs, &legacy, &params)
        });
        let s_naive_vote = bench(label("vote-naive"), iters.min(3), || {
            naive_voting(trajs, &params)
        });
        let voting_speedup = s_indexed_vote.median_ms / s_arena_vote.median_ms.max(1e-9);
        let pr4_speedup = s_pr4_vote.median_ms / s_arena_vote.median_ms.max(1e-9);

        // --- Kernel floor in isolation: the batched distance kernel against
        // one query segment, scalar lanes vs the dispatched SIMD width. Only
        // candidates whose lifespan overlaps the query's are gathered — the
        // population the voting ladder actually sends to the kernel. (On
        // disjoint pairs the scalar lane wins by an early return the
        // branchless vector lanes don't take, but the temporal partition
        // means voting never evaluates those.) This is the voting ratio with
        // probe and ladder costs stripped away — how close the hot
        // arithmetic sits to the hardware's div/sqrt throughput floor.
        let q = arena.lanes(0);
        let mut lanes = (
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        );
        for gs in 0..arena.num_segments() {
            let l = arena.lanes(gs);
            if l.t0 <= q.t1 && q.t0 <= l.t1 {
                lanes.0.push(l.x0);
                lanes.1.push(l.y0);
                lanes.2.push(l.x1);
                lanes.3.push(l.y1);
                lanes.4.push(l.t0);
                lanes.5.push(l.t1);
            }
        }
        // Tile the overlap set until a batch call is comfortably above the
        // clock quantum — repeating pairs changes nothing about the
        // arithmetic being timed, only the sample duration.
        let base = lanes.0.len();
        while lanes.0.len() < 4096 {
            for i in 0..base {
                lanes.0.push(lanes.0[i]);
                lanes.1.push(lanes.1[i]);
                lanes.2.push(lanes.2[i]);
                lanes.3.push(lanes.3[i]);
                lanes.4.push(lanes.4[i]);
                lanes.5.push(lanes.5[i]);
            }
        }
        let m = lanes.0.len();
        let mut out_simd = vec![0.0; m];
        let mut out_scalar = vec![0.0; m];
        let (s_kernel_simd, s_kernel_scalar) = bench_pair(
            label("kernel-simd"),
            label("kernel-scalar"),
            5,
            (iters / 5).max(1),
            || {
                mean_sync_distance_batch_at(
                    simd_level(),
                    &q,
                    &lanes.0,
                    &lanes.1,
                    &lanes.2,
                    &lanes.3,
                    &lanes.4,
                    &lanes.5,
                    &mut out_simd,
                );
            },
            || {
                mean_sync_distance_batch_at(
                    SimdLevel::Scalar,
                    &q,
                    &lanes.0,
                    &lanes.1,
                    &lanes.2,
                    &lanes.3,
                    &lanes.4,
                    &lanes.5,
                    &mut out_scalar,
                );
            },
        );
        assert!(
            out_simd
                .iter()
                .zip(&out_scalar)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "SIMD batch kernel diverged bitwise from the scalar lanes"
        );
        let kernel_speedup = s_kernel_scalar.median_ms / s_kernel_simd.median_ms.max(1e-9);

        // --- Index construction, both layouts.
        let s_arena_build = bench(label("build-arena"), iters, || {
            let a = SegmentArena::build(trajs);
            let p = PackedSegmentIndex::build(&a);
            (a.num_segments(), p.len())
        });
        let s_legacy_build = bench(label("build-indexed"), iters, || {
            SegmentIndex::build(trajs).len()
        });

        // --- Whole pipelines with phase breakdowns (the original E1 table).
        let s_pipeline = bench(label("s2t"), iters, || run_s2t(trajs, &params));
        let s_pipeline_naive = bench(label("s2t-naive"), iters.min(3), || {
            run_s2t_naive(trajs, &params)
        });
        let t = run_s2t(trajs, &params).timings;

        json.push_with(
            s_arena_vote.clone(),
            vec![
                ("segments".into(), arena.num_segments() as f64),
                ("threads".into(), 1.0),
                ("speedup_vs_indexed".into(), voting_speedup),
                ("speedup_vs_pr4".into(), pr4_speedup),
                ("kernel_evaluated".into(), kernel.evaluated as f64),
                ("kernel_pruned".into(), kernel.pruned as f64),
                ("kernel_simd_speedup".into(), kernel_speedup),
                ("simd_lanes".into(), simd_level().lanes() as f64),
                ("gate_bit_identical".into(), 1.0),
                ("headline".into(), if n == sizes[0] { 1.0 } else { 0.0 }),
            ],
        );
        json.push(s_pr4_vote.clone());
        json.push(s_kernel_simd.clone());
        json.push(s_kernel_scalar.clone());
        json.push(s_indexed_vote.clone());
        json.push(s_naive_vote.clone());
        json.push(s_arena_build.clone());
        json.push(s_legacy_build.clone());
        json.push_with(
            s_pipeline.clone(),
            vec![
                ("index_build_ms".into(), t.index_build_ms),
                ("voting_ms".into(), t.voting_ms),
                ("segmentation_ms".into(), t.segmentation_ms),
                ("sampling_ms".into(), t.sampling_ms),
                ("clustering_ms".into(), t.clustering_ms),
            ],
        );
        json.push(s_pipeline_naive.clone());

        eprintln!(
            "voting speedup (arena vs pre-PR indexed, 1 thread, {} trajs): {:.2}x",
            trajs.len(),
            voting_speedup
        );
        eprintln!(
            "voting speedup (SIMD+pruning vs PR 4 arena, {} lanes, {} trajs): {:.2}x \
             (evaluated {}, pruned {})",
            simd_level().lanes(),
            trajs.len(),
            pr4_speedup,
            kernel.evaluated,
            kernel.pruned
        );
        eprintln!(
            "kernel-only speedup (batched SIMD vs scalar lanes, {} segments): {:.2}x",
            m, kernel_speedup
        );

        samples.extend([
            s_arena_vote,
            s_pr4_vote,
            s_kernel_simd,
            s_kernel_scalar,
            s_indexed_vote,
            s_naive_vote,
            s_arena_build,
            s_legacy_build,
            s_pipeline,
            s_pipeline_naive,
        ]);
    }
    report("e1_s2t_vs_naive", &samples);
    json.write().expect("write BENCH_e1_s2t_vs_naive.json");

    // Summary series (the numbers recorded in EXPERIMENTS.md).
    eprintln!("\n# E1 summary: indexed (arena) vs naive S2T");
    eprintln!(
        "{:>8} {:>12} {:>12} {:>9}",
        "vehicles", "indexed_ms", "naive_ms", "speedup"
    );
    for &n in sizes {
        let scenario = urban_with(n, 0xE1);
        let fast = bench("indexed", 3, || run_s2t(&scenario.trajectories, &params));
        let slow = bench("naive", 3, || {
            run_s2t_naive(&scenario.trajectories, &params)
        });
        eprintln!(
            "{:>8} {:>12.1} {:>12.1} {:>8.1}x",
            scenario.trajectories.len(),
            fast.median_ms,
            slow.median_ms,
            slow.median_ms / fast.median_ms.max(1e-9)
        );
    }
}
