//! E1 — the "orders of magnitude speedup in comparison to corresponding
//! PostgreSQL functions" claim (§III, preparatory phase).
//!
//! Measures the full S2T-Clustering pipeline with index-accelerated voting
//! (the in-DBMS fast path) against the quadratic, index-free baseline, for a
//! sweep of dataset cardinalities. Criterion reports the per-variant times;
//! the summary table printed at the end gives the speedup series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_s2t::{run_s2t, run_s2t_naive};
use std::hint::black_box;
use std::time::Instant;

fn bench_e1(c: &mut Criterion) {
    let params = aircraft_s2t_params();
    let sizes = [12usize, 24, 48];

    let mut group = c.benchmark_group("e1_s2t_vs_naive");
    group.sample_size(10);
    for &n in &sizes {
        let scenario = aircraft_with(n, 0xE1);
        group.bench_with_input(BenchmarkId::new("indexed", scenario.len()), &scenario, |b, s| {
            b.iter(|| black_box(run_s2t(&s.trajectories, &params)))
        });
        group.bench_with_input(BenchmarkId::new("naive", scenario.len()), &scenario, |b, s| {
            b.iter(|| black_box(run_s2t_naive(&s.trajectories, &params)))
        });
    }
    group.finish();

    // Summary series (the numbers recorded in EXPERIMENTS.md).
    eprintln!("\n# E1 summary: indexed vs naive S2T (single run each)");
    eprintln!("{:>8} {:>12} {:>12} {:>9}", "flights", "indexed_ms", "naive_ms", "speedup");
    for &n in &sizes {
        let scenario = aircraft_with(n, 0xE1);
        let t0 = Instant::now();
        let fast = run_s2t(&scenario.trajectories, &params);
        let fast_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let t0 = Instant::now();
        let slow = run_s2t_naive(&scenario.trajectories, &params);
        let slow_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(fast.result.num_clusters(), slow.result.num_clusters());
        eprintln!(
            "{:>8} {:>12.1} {:>12.1} {:>8.1}x",
            scenario.len(),
            fast_ms,
            slow_ms,
            slow_ms / fast_ms.max(1e-9)
        );
    }
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
