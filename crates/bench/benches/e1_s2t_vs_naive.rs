//! E1 — the "orders of magnitude speedup in comparison to corresponding
//! PostgreSQL functions" claim (§III, preparatory phase).
//!
//! Measures the full S2T-Clustering pipeline with index-accelerated voting
//! (the in-DBMS fast path) against the quadratic, index-free baseline, for a
//! sweep of dataset cardinalities. The summary table printed at the end gives
//! the speedup series recorded in EXPERIMENTS.md.

use hermes_bench::harness::{bench, report};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_s2t::{run_s2t, run_s2t_naive};

fn main() {
    let params = aircraft_s2t_params();
    let sizes = [12usize, 24, 48];

    let mut samples = Vec::new();
    for &n in &sizes {
        let scenario = aircraft_with(n, 0xE1);
        samples.push(bench(format!("indexed/{}", scenario.len()), 10, || {
            run_s2t(&scenario.trajectories, &params)
        }));
        samples.push(bench(format!("naive/{}", scenario.len()), 10, || {
            run_s2t_naive(&scenario.trajectories, &params)
        }));
    }
    report("e1_s2t_vs_naive", &samples);

    // Summary series (the numbers recorded in EXPERIMENTS.md).
    eprintln!("\n# E1 summary: indexed vs naive S2T");
    eprintln!(
        "{:>8} {:>12} {:>12} {:>9}",
        "flights", "indexed_ms", "naive_ms", "speedup"
    );
    for &n in &sizes {
        let scenario = aircraft_with(n, 0xE1);
        let fast = bench("indexed", 3, || run_s2t(&scenario.trajectories, &params));
        let slow = bench("naive", 3, || {
            run_s2t_naive(&scenario.trajectories, &params)
        });
        let a = run_s2t(&scenario.trajectories, &params);
        let b = run_s2t_naive(&scenario.trajectories, &params);
        assert_eq!(a.result.num_clusters(), b.result.num_clusters());
        eprintln!(
            "{:>8} {:>12.1} {:>12.1} {:>8.1}x",
            scenario.len(),
            fast.median_ms,
            slow.median_ms,
            slow.median_ms / fast.median_ms.max(1e-9)
        );
    }
}
