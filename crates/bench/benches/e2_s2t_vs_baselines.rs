//! E2 — scenario 1 / Fig. 3: S2T-Clustering compared against the related
//! methods the demo lets the user play with (TRACLUS, T-OPTICS, Convoys),
//! plus the comparison of two S2T parameterisations.
//!
//! Each method is timed on the same aircraft workload; the printed table
//! reports the method-agnostic quality numbers recorded in EXPERIMENTS.md.

use hermes_baselines::{
    discover_convoys, t_optics, traclus, ConvoyParams, TOpticsParams, TraclusParams,
};
use hermes_bench::harness::{bench, report};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_s2t::{run_s2t, ClusteringQuality, S2TParams};
use hermes_trajectory::Duration;
use hermes_va::compare_runs;

fn traclus_params() -> TraclusParams {
    TraclusParams {
        eps: 3_000.0,
        min_lns: 4,
        ..TraclusParams::default()
    }
}

fn toptics_params() -> TOpticsParams {
    TOpticsParams {
        eps: 20_000.0,
        min_pts: 3,
        reachability_threshold: 9_000.0,
    }
}

fn convoy_params() -> ConvoyParams {
    ConvoyParams {
        eps: 4_000.0,
        min_objects: 3,
        min_snapshots: 3,
        snapshot_period: Duration::from_mins(2),
    }
}

fn main() {
    let scenario = aircraft_with(36, 0xE2);
    let s2t_params = aircraft_s2t_params();

    let samples = vec![
        bench("s2t", 10, || run_s2t(&scenario.trajectories, &s2t_params)),
        bench("traclus", 10, || {
            traclus(&scenario.trajectories, &traclus_params())
        }),
        bench("t_optics", 10, || {
            t_optics(&scenario.trajectories, &toptics_params())
        }),
        bench("convoys", 10, || {
            discover_convoys(&scenario.trajectories, &convoy_params())
        }),
    ];
    report("e2_methods", &samples);

    // Quality summary (the table of EXPERIMENTS.md).
    let s2t = run_s2t(&scenario.trajectories, &s2t_params);
    let q = ClusteringQuality::compute(&s2t.result);
    let tr = traclus(&scenario.trajectories, &traclus_params());
    let to = t_optics(&scenario.trajectories, &toptics_params());
    let cv = discover_convoys(&scenario.trajectories, &convoy_params());

    eprintln!(
        "\n# E2 summary: method comparison on {} flights",
        scenario.len()
    );
    eprintln!(
        "{:>10} {:>10} {:>10} {:>18}",
        "method", "clusters", "noise", "unit"
    );
    eprintln!(
        "{:>10} {:>10} {:>10} {:>18}",
        "S2T", q.num_clusters, q.num_outliers, "sub-trajectories"
    );
    eprintln!(
        "{:>10} {:>10} {:>10} {:>18}",
        "TRACLUS",
        tr.num_clusters,
        tr.num_noise_segments(),
        "line segments"
    );
    eprintln!(
        "{:>10} {:>10} {:>10} {:>18}",
        "T-OPTICS",
        to.num_clusters,
        to.num_noise(),
        "whole trajectories"
    );
    eprintln!(
        "{:>10} {:>10} {:>10} {:>18}",
        "Convoys",
        cv.len(),
        "-",
        "object groups"
    );

    // Fig. 3: two S2T runs under different parameters.
    let loose = run_s2t(
        &scenario.trajectories,
        &S2TParams {
            sigma: 4_000.0,
            epsilon: 12_000.0,
            ..s2t_params.clone()
        },
    );
    let cmp = compare_runs(&s2t.result, &loose.result, 6_000.0);
    eprintln!(
        "\n# E2 / Fig. 3: run comparison — matched {}, only-in-A {}, only-in-B {}, agreement {:.0}%",
        cmp.matched.len(),
        cmp.only_in_a.len(),
        cmp.only_in_b.len(),
        cmp.agreement() * 100.0
    );
}
