//! E2 — scenario 1 / Fig. 3: S2T-Clustering compared against the related
//! methods the demo lets the user play with (TRACLUS, T-OPTICS, Convoys),
//! plus the comparison of two S2T parameterisations.
//!
//! Criterion times each method on the same aircraft workload; the printed
//! table reports the method-agnostic quality numbers recorded in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_baselines::{discover_convoys, t_optics, traclus, ConvoyParams, TOpticsParams, TraclusParams};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_s2t::{run_s2t, ClusteringQuality, S2TParams};
use hermes_trajectory::Duration;
use hermes_va::compare_runs;
use std::hint::black_box;

fn traclus_params() -> TraclusParams {
    TraclusParams {
        eps: 3_000.0,
        min_lns: 4,
        ..TraclusParams::default()
    }
}

fn toptics_params() -> TOpticsParams {
    TOpticsParams {
        eps: 20_000.0,
        min_pts: 3,
        reachability_threshold: 9_000.0,
    }
}

fn convoy_params() -> ConvoyParams {
    ConvoyParams {
        eps: 4_000.0,
        min_objects: 3,
        min_snapshots: 3,
        snapshot_period: Duration::from_mins(2),
    }
}

fn bench_e2(c: &mut Criterion) {
    let scenario = aircraft_with(36, 0xE2);
    let s2t_params = aircraft_s2t_params();

    let mut group = c.benchmark_group("e2_methods");
    group.sample_size(10);
    group.bench_function("s2t", |b| {
        b.iter(|| black_box(run_s2t(&scenario.trajectories, &s2t_params)))
    });
    group.bench_function("traclus", |b| {
        b.iter(|| black_box(traclus(&scenario.trajectories, &traclus_params())))
    });
    group.bench_function("t_optics", |b| {
        b.iter(|| black_box(t_optics(&scenario.trajectories, &toptics_params())))
    });
    group.bench_function("convoys", |b| {
        b.iter(|| black_box(discover_convoys(&scenario.trajectories, &convoy_params())))
    });
    group.finish();

    // Quality summary (the table of EXPERIMENTS.md).
    let s2t = run_s2t(&scenario.trajectories, &s2t_params);
    let q = ClusteringQuality::compute(&s2t.result);
    let tr = traclus(&scenario.trajectories, &traclus_params());
    let to = t_optics(&scenario.trajectories, &toptics_params());
    let cv = discover_convoys(&scenario.trajectories, &convoy_params());

    eprintln!("\n# E2 summary: method comparison on {} flights", scenario.len());
    eprintln!("{:>10} {:>10} {:>10} {:>18}", "method", "clusters", "noise", "unit");
    eprintln!("{:>10} {:>10} {:>10} {:>18}", "S2T", q.num_clusters, q.num_outliers, "sub-trajectories");
    eprintln!("{:>10} {:>10} {:>10} {:>18}", "TRACLUS", tr.num_clusters, tr.num_noise_segments(), "line segments");
    eprintln!("{:>10} {:>10} {:>10} {:>18}", "T-OPTICS", to.num_clusters, to.num_noise(), "whole trajectories");
    eprintln!("{:>10} {:>10} {:>10} {:>18}", "Convoys", cv.len(), "-", "object groups");

    // Fig. 3: two S2T runs under different parameters.
    let loose = run_s2t(
        &scenario.trajectories,
        &S2TParams {
            sigma: 4_000.0,
            epsilon: 12_000.0,
            ..s2t_params.clone()
        },
    );
    let cmp = compare_runs(&s2t.result, &loose.result, 6_000.0);
    eprintln!(
        "\n# E2 / Fig. 3: run comparison — matched {}, only-in-A {}, only-in-B {}, agreement {:.0}%",
        cmp.matched.len(),
        cmp.only_in_a.len(),
        cmp.only_in_b.len(),
        cmp.agreement() * 100.0
    );
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
