//! E3 — scenario 2: the efficiency of QuT-Clustering for varying temporal
//! periods `W`, against the alternative strategy of "(i) extracting the
//! relevant records using a temporal range query, (ii) creating an R-tree
//! index on the result of the query, and (iii) applying clustering
//! (S2T-Clustering)".
//!
//! This is the paper's central quantitative comparison; the printed series is
//! recorded in EXPERIMENTS.md.

use hermes_bench::harness::{bench, report};
use hermes_bench::{maritime_s2t_params, maritime_standard, qut_params, tree_params};
use hermes_retratree::{qut_clustering, range_query_then_cluster, ReTraTree};
use hermes_trajectory::{Duration, TimeInterval};

fn main() {
    let scenario = maritime_standard(0xE3);
    let s2t = maritime_s2t_params();
    let tree = ReTraTree::build_from(tree_params(s2t.clone()), &scenario.trajectories);
    let qut = qut_params(s2t.clone());
    let span = tree.lifespan().expect("tree holds data");
    let fractions = [10i64, 25, 50, 75, 100];

    let mut samples = Vec::new();
    for &pct in &fractions {
        let w = TimeInterval::new(
            span.start,
            span.start + Duration::from_millis(span.length().millis() * pct / 100),
        );
        samples.push(bench(format!("qut/{pct}%"), 10, || {
            qut_clustering(&tree, &w, &qut)
        }));
        samples.push(bench(format!("rebuild/{pct}%"), 10, || {
            range_query_then_cluster(&tree, &w, &s2t)
        }));
    }
    report("e3_window_clustering", &samples);

    eprintln!("\n# E3 summary: QuT vs range-query-then-recluster (single run each)");
    eprintln!(
        "{:>6} {:>10} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "W(%)", "clusters", "qut_ms", "rebuild_ms", "speedup", "reused", "reclust"
    );
    for &pct in &fractions {
        let w = TimeInterval::new(
            span.start,
            span.start + Duration::from_millis(span.length().millis() * pct / 100),
        );
        let (qr, qs) = qut_clustering(&tree, &w, &qut);
        let (_, rs) = range_query_then_cluster(&tree, &w, &s2t);
        eprintln!(
            "{:>6} {:>10} {:>12.2} {:>12.2} {:>8.1}x {:>8} {:>8}",
            pct,
            qr.num_clusters(),
            qs.elapsed_ms,
            rs.elapsed_ms,
            rs.elapsed_ms / qs.elapsed_ms.max(1e-9),
            qs.reused_subchunks,
            qs.reclustered_subchunks
        );
    }
}
