//! E4 — Fig. 1 (middle): the time histogram of cluster cardinality over time
//! ("the existence times of the clusters and the changes of their cardinality
//! over time can be explored using a time histogram").
//!
//! Benches the histogram construction for several bucket widths and prints
//! the peak-traffic series recorded in EXPERIMENTS.md.

use hermes_bench::harness::{bench, report};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_s2t::run_s2t;
use hermes_trajectory::Duration;
use hermes_va::time_histogram;

fn main() {
    let scenario = aircraft_with(36, 0xE4);
    let outcome = run_s2t(&scenario.trajectories, &aircraft_s2t_params());
    let widths_min = [5i64, 15, 60];

    let samples: Vec<_> = widths_min
        .iter()
        .map(|&m| {
            bench(format!("bucket_min/{m}"), 10, || {
                time_histogram(&outcome.result, Duration::from_mins(m))
            })
        })
        .collect();
    report("e4_time_histogram", &samples);

    eprintln!("\n# E4 summary: cluster-cardinality histogram (Fig. 1 middle)");
    eprintln!(
        "{:>12} {:>10} {:>14} {:>12}",
        "bucket_min", "buckets", "peak_at_ms", "peak_count"
    );
    for &m in &widths_min {
        let h = time_histogram(&outcome.result, Duration::from_mins(m));
        let (peak_at, peak) = h.peak_bucket().expect("non-empty result");
        eprintln!(
            "{:>12} {:>10} {:>14} {:>12}",
            m,
            h.num_buckets(),
            peak_at.millis(),
            peak
        );
    }
    // The stacked series itself (first 12 buckets at 15-minute resolution),
    // i.e. the data behind the figure.
    let h = time_histogram(&outcome.result, Duration::from_mins(15));
    eprintln!("\nbucket_start_ms, total_active_sub_trajectories");
    for (start, total) in h.bucket_starts.iter().zip(h.totals()).take(12) {
        eprintln!("{}, {}", start.millis(), total);
    }
}
