//! E4 — Fig. 1 (middle): the time histogram of cluster cardinality over time
//! ("the existence times of the clusters and the changes of their cardinality
//! over time can be explored using a time histogram").
//!
//! Benches the histogram construction for several bucket widths and prints
//! the peak-traffic series recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_s2t::run_s2t;
use hermes_trajectory::Duration;
use hermes_va::time_histogram;
use std::hint::black_box;

fn bench_e4(c: &mut Criterion) {
    let scenario = aircraft_with(36, 0xE4);
    let outcome = run_s2t(&scenario.trajectories, &aircraft_s2t_params());
    let widths_min = [5i64, 15, 60];

    let mut group = c.benchmark_group("e4_time_histogram");
    group.sample_size(10);
    for &m in &widths_min {
        group.bench_with_input(BenchmarkId::new("bucket_min", m), &m, |b, &m| {
            b.iter(|| black_box(time_histogram(&outcome.result, Duration::from_mins(m))))
        });
    }
    group.finish();

    eprintln!("\n# E4 summary: cluster-cardinality histogram (Fig. 1 middle)");
    eprintln!("{:>12} {:>10} {:>14} {:>12}", "bucket_min", "buckets", "peak_at_ms", "peak_count");
    for &m in &widths_min {
        let h = time_histogram(&outcome.result, Duration::from_mins(m));
        let (peak_at, peak) = h.peak_bucket().expect("non-empty result");
        eprintln!("{:>12} {:>10} {:>14} {:>12}", m, h.num_buckets(), peak_at.millis(), peak);
    }
    // The stacked series itself (first 12 buckets at 15-minute resolution),
    // i.e. the data behind the figure.
    let h = time_histogram(&outcome.result, Duration::from_mins(15));
    eprintln!("\nbucket_start_ms, total_active_sub_trajectories");
    for (start, total) in h.bucket_starts.iter().zip(h.totals()).take(12) {
        eprintln!("{}, {}", start.millis(), total);
    }
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
