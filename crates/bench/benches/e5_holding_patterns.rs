//! E5 — Fig. 4: discovery of the holding patterns aircraft fly while waiting
//! to land ("the holding patterns typically performed by aircrafts as they
//! approach to their destination ... are discovered and visualized").
//!
//! The synthetic generator injects a known set of holding flights, so besides
//! timing the detector we can report recall/precision — the ground-truth-based
//! counterpart of the figure.

use hermes_bench::aircraft_s2t_params;
use hermes_bench::harness::{bench, report};
use hermes_datagen::AircraftScenarioBuilder;
use hermes_s2t::run_s2t;
use hermes_va::detect_holding_patterns;

fn main() {
    let scenario = AircraftScenarioBuilder {
        seed: 0xE5,
        num_streams: 4,
        waves_per_stream: 2,
        flights_per_wave: 5,
        num_stragglers: 4,
        holding_probability: 0.4,
        ..AircraftScenarioBuilder::default()
    }
    .build();
    let outcome = run_s2t(&scenario.trajectories, &aircraft_s2t_params());

    let samples = vec![bench("detect", 10, || {
        detect_holding_patterns(&outcome.result, 1.4, 1.0)
    })];
    report("e5_holding_patterns", &samples);

    let found = detect_holding_patterns(&outcome.result, 1.4, 1.0);
    let detected: Vec<u64> = found.iter().map(|h| h.trajectory_id).collect();
    let truth = &scenario.holding_flight_ids;
    let true_positives = truth.iter().filter(|id| detected.contains(id)).count();
    let recall = true_positives as f64 / truth.len().max(1) as f64;
    let precision = if detected.is_empty() {
        1.0
    } else {
        detected.iter().filter(|id| truth.contains(id)).count() as f64 / detected.len() as f64
    };
    eprintln!("\n# E5 summary: holding-pattern discovery (Fig. 4)");
    eprintln!(
        "flights {}  known_holdings {}  detected {}  recall {:.0}%  precision {:.0}%",
        scenario.len(),
        truth.len(),
        detected.len(),
        recall * 100.0,
        precision * 100.0
    );
    for h in found.iter().take(5) {
        eprintln!(
            "  flight {:>3}: sinuosity {:>5.2}, {:.1} full turns, cluster {:?}",
            h.trajectory_id, h.sinuosity, h.total_turns, h.cluster_id
        );
    }
}
