//! E6 — the incremental-maintenance architecture of Fig. 2: trajectories
//! stream into the ReTraTree, are assigned to existing representatives or
//! parked as outliers, and overgrown partitions trigger the S2T re-clustering
//! pass that back-propagates new representatives.
//!
//! Benches streaming-insertion throughput for a sweep of the re-clustering
//! page threshold and prints the maintenance counters.

use hermes_bench::harness::{bench, report};
use hermes_bench::{maritime_s2t_params, maritime_standard};
use hermes_retratree::{ReTraTree, ReTraTreeParams};
use hermes_trajectory::Duration;

fn params_with_threshold(pages: usize) -> ReTraTreeParams {
    ReTraTreeParams {
        chunk_duration: Duration::from_hours(2),
        subchunks_per_chunk: 4,
        reorg_page_threshold: pages,
        buffer_frames: 256,
        s2t: maritime_s2t_params(),
    }
}

fn main() {
    let scenario = maritime_standard(0xE6);
    let thresholds = [2usize, 4, 8];

    let samples: Vec<_> = thresholds
        .iter()
        .map(|&pages| {
            bench(format!("page_threshold/{pages}"), 10, || {
                let mut tree = ReTraTree::new(params_with_threshold(pages));
                for t in &scenario.trajectories {
                    tree.insert_trajectory(t);
                }
                tree.total_population()
            })
        })
        .collect();
    report("e6_streaming_insert", &samples);

    eprintln!(
        "\n# E6 summary: incremental maintenance (Fig. 2 loop), {} vessels",
        scenario.trajectories.len()
    );
    eprintln!(
        "{:>10} {:>8} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "threshold", "pieces", "assigned", "outliers", "reorgs", "promoted", "clusters"
    );
    for &pages in &thresholds {
        let mut tree = ReTraTree::new(params_with_threshold(pages));
        for t in &scenario.trajectories {
            tree.insert_trajectory(t);
        }
        let s = tree.stats();
        eprintln!(
            "{:>10} {:>8} {:>10} {:>10} {:>8} {:>10} {:>10}",
            pages,
            s.inserted_pieces,
            s.assigned_to_existing,
            s.parked_as_outliers,
            s.reorganizations,
            s.promoted_representatives,
            tree.total_clusters()
        );
    }
    // Buffer-pool behaviour of the storage layer during a follow-up scan.
    let tree = ReTraTree::build_from(params_with_threshold(4), &scenario.trajectories);
    tree.store().buffer().reset_stats();
    let span = tree.lifespan().unwrap();
    let _ = tree.window_sub_trajectories(&span);
    let b = tree.store().buffer().stats();
    eprintln!(
        "buffer pool during a full scan: {} hits, {} misses (hit ratio {:.0}%)",
        b.hits,
        b.misses,
        b.hit_ratio() * 100.0
    );
}
