//! E7 — Fig. 1 (top/bottom) and §II.C: the SQL interface and the VA exports.
//!
//! Benches the end-to-end latency of the `SELECT QUT(...)` / `SELECT S2T(...)`
//! statements through the SQL layer (parse → plan → execute), and the cost of
//! regenerating the map/space-time-cube exports behind the figures.

use criterion::{criterion_group, criterion_main, Criterion};
use hermes_bench::{aircraft_s2t_params, aircraft_with, tree_params};
use hermes_core::HermesEngine;
use hermes_s2t::run_s2t;
use hermes_sql::execute;
use hermes_va::{cluster_map_svg, space_time_cube_csv};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let scenario = aircraft_with(24, 0xE7);
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index("flights", tree_params(aircraft_s2t_params()))
        .unwrap();

    let s2t_stmt = "SELECT S2T(flights, 2000, 0.35, 0.05, 300000, 6000);";
    let qut_stmt = "SELECT QUT(flights, 0, 7200000, 0.35, 0.05, 300000, 6000, 1800000);";
    let range_stmt = "SELECT RANGE(flights, 0, 3600000);";

    let mut group = c.benchmark_group("e7_sql");
    group.sample_size(10);
    group.bench_function("parse_only", |b| {
        b.iter(|| black_box(hermes_sql::parse(qut_stmt).unwrap()))
    });
    group.bench_function("select_range", |b| {
        b.iter(|| black_box(execute(&mut engine, range_stmt).unwrap()))
    });
    group.bench_function("select_qut", |b| {
        b.iter(|| black_box(execute(&mut engine, qut_stmt).unwrap()))
    });
    group.bench_function("select_s2t", |b| {
        b.iter(|| black_box(execute(&mut engine, s2t_stmt).unwrap()))
    });
    group.finish();

    let outcome = run_s2t(&scenario.trajectories, &aircraft_s2t_params());
    let mut group = c.benchmark_group("e7_va_exports");
    group.sample_size(10);
    group.bench_function("map_svg", |b| {
        b.iter(|| black_box(cluster_map_svg(&outcome.result, 1200, 900)))
    });
    group.bench_function("space_time_cube_csv", |b| {
        b.iter(|| black_box(space_time_cube_csv("run", &outcome.result)))
    });
    group.finish();

    let qut_rows = execute(&mut engine, qut_stmt).unwrap();
    let svg = cluster_map_svg(&outcome.result, 1200, 900);
    let cube = space_time_cube_csv("run", &outcome.result);
    eprintln!("\n# E7 summary: SQL interface and VA exports");
    eprintln!("QUT statement returned {} rows", qut_rows.len());
    eprintln!("map SVG: {} bytes, {} polylines", svg.len(), svg.matches("<polyline").count());
    eprintln!("space-time cube CSV: {} rows", cube.lines().count() - 1);
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
