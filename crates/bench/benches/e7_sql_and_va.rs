//! E7 — Fig. 1 (top/bottom) and §II.C: the SQL interface and the VA exports.
//!
//! Benches the end-to-end latency of the `SELECT QUT(...)` / `SELECT S2T(...)`
//! statements through the SQL layer — once per-execution (parse → execute)
//! and once through a prepared statement that binds `$n` windows against the
//! cached plan — plus the cost of regenerating the map/space-time-cube
//! exports behind the figures.

use hermes_bench::harness::{bench, report};
use hermes_bench::{aircraft_s2t_params, aircraft_with, tree_params};
use hermes_core::HermesEngine;
use hermes_s2t::run_s2t;
use hermes_sql::{execute, Session, Value};
use hermes_va::{cluster_map_svg, space_time_cube_csv};

fn main() {
    let scenario = aircraft_with(24, 0xE7);
    let mut engine = HermesEngine::new();
    engine.create_dataset("flights").unwrap();
    engine
        .load_trajectories("flights", scenario.trajectories.clone())
        .unwrap();
    engine
        .build_index("flights", tree_params(aircraft_s2t_params()))
        .unwrap();

    let s2t_stmt = "SELECT S2T(flights, 2000, 0.35, 0.05, 300000, 6000);";
    let qut_stmt = "SELECT QUT(flights, 0, 7200000, 0.35, 0.05, 300000, 6000, 1800000);";
    let range_stmt = "SELECT RANGE(flights, 0, 3600000);";

    let mut samples = vec![
        bench("parse_only", 10, || hermes_sql::parse(qut_stmt).unwrap()),
        bench("select_range", 10, || {
            execute(&mut engine, range_stmt).unwrap()
        }),
        bench("select_qut", 10, || execute(&mut engine, qut_stmt).unwrap()),
        bench("select_s2t", 10, || execute(&mut engine, s2t_stmt).unwrap()),
    ];
    // The prepared path: bind two window parameters against the cached AST.
    let mut session = Session::new(&mut engine);
    let prepared = session
        .prepare("SELECT QUT(flights, $1, $2, 0.35, 0.05, 300000, 6000, 1800000);")
        .unwrap();
    samples.push(bench("prepared_qut_bind_execute", 10, || {
        session
            .execute_prepared(prepared, &[Value::Int(0), Value::Int(7_200_000)])
            .unwrap()
    }));
    report("e7_sql", &samples);
    eprintln!(
        "prepared path: {} parses for {} executions",
        session.stats().parses,
        session.stats().executions
    );

    let outcome = run_s2t(&scenario.trajectories, &aircraft_s2t_params());
    let va_samples = vec![
        bench("map_svg", 10, || {
            cluster_map_svg(&outcome.result, 1200, 900)
        }),
        bench("space_time_cube_csv", 10, || {
            space_time_cube_csv("run", &outcome.result)
        }),
    ];
    report("e7_va_exports", &va_samples);

    let qut_rows = execute(&mut engine, qut_stmt).unwrap();
    let svg = cluster_map_svg(&outcome.result, 1200, 900);
    let cube = space_time_cube_csv("run", &outcome.result);
    eprintln!("\n# E7 summary: SQL interface and VA exports");
    eprintln!("QUT statement returned {} rows", qut_rows.num_rows());
    eprintln!(
        "map SVG: {} bytes, {} polylines",
        svg.len(),
        svg.matches("<polyline").count()
    );
    eprintln!("space-time cube CSV: {} rows", cube.lines().count() - 1);
}
