//! E8 — ablation of the design choice called out in §II.C: the trajectory-
//! tailored 3D R-tree built on the GiST interface (`pg3D-Rtree`), versus not
//! having an index at all (linear scan). Also measures bulk loading versus
//! incremental insertion, and kNN scans.
//!
//! The paper claims GiST-based indexing is what makes in-DBMS sub-trajectory
//! clustering practical; this bench quantifies the index's contribution in
//! isolation from the clustering pipeline.

use hermes_bench::aircraft_with;
use hermes_bench::harness::{bench, report};
use hermes_gist::RTree3D;
use hermes_trajectory::{Mbb, Point, Timestamp};

fn segment_boxes(n_flights: usize) -> Vec<(Mbb, usize)> {
    let scenario = aircraft_with(n_flights, 0xE8);
    let mut items = Vec::new();
    let mut id = 0usize;
    for t in &scenario.trajectories {
        for s in t.segments() {
            items.push((s.mbb(), id));
            id += 1;
        }
    }
    items
}

fn query_windows(items: &[(Mbb, usize)]) -> Vec<Mbb> {
    // Deterministic sample of inflated segment boxes as query windows.
    items
        .iter()
        .step_by((items.len() / 16).max(1))
        .map(|(b, _)| b.inflate(5_000.0, 10 * 60_000))
        .collect()
}

fn main() {
    let sizes = [12usize, 48];

    let mut samples = Vec::new();
    for &n in &sizes {
        let items = segment_boxes(n);
        let tree = RTree3D::bulk_load(items.clone());
        let queries = query_windows(&items);
        let len = items.len();

        samples.push(bench(format!("rtree_range/{len}"), 10, || {
            queries
                .iter()
                .map(|q| tree.query_intersecting(q).len())
                .sum::<usize>()
        }));
        samples.push(bench(format!("linear_scan/{len}"), 10, || {
            queries
                .iter()
                .map(|q| items.iter().filter(|(b, _)| b.intersects(q)).count())
                .sum::<usize>()
        }));
        samples.push(bench(format!("bulk_load/{len}"), 10, || {
            RTree3D::bulk_load(items.clone()).len()
        }));
        samples.push(bench(format!("incremental_build/{len}"), 10, || {
            let mut t = RTree3D::new();
            for (m, v) in items.iter() {
                t.insert(*m, *v);
            }
            t.len()
        }));
        let p = Point::new(0.0, 0.0, Timestamp(30 * 60_000));
        samples.push(bench(format!("knn_10/{len}"), 10, || tree.nearest(&p, 10)));
    }
    report("e8_rtree_vs_scan", &samples);

    eprintln!("\n# E8 summary: pg3D-Rtree structure");
    for &n in &sizes {
        let items = segment_boxes(n);
        let tree = RTree3D::bulk_load(items.clone());
        let stats = tree.stats();
        // Correctness cross-check: the index and the scan agree.
        let queries = query_windows(&items);
        let tree_hits: usize = queries
            .iter()
            .map(|q| tree.query_intersecting(q).len())
            .sum();
        let scan_hits: usize = queries
            .iter()
            .map(|q| items.iter().filter(|(b, _)| b.intersects(q)).count())
            .sum();
        assert_eq!(tree_hits, scan_hits);
        eprintln!(
            "{} segments → height {}, {} leaves, {} internal nodes, {} hits over {} query windows",
            stats.len,
            stats.height,
            stats.leaf_nodes,
            stats.internal_nodes,
            tree_hits,
            queries.len()
        );
    }
}
