//! E9 — server throughput under concurrent clients: queries/sec through the
//! TCP loopback for 1/2/4/8 client threads, each with its own connection
//! (and therefore its own server-side session).
//!
//! The workload is the read path the shared-engine refactor parallelizes:
//! `RANGE` probes plus `QUT` window clusterings over a pre-built ReTraTree.
//! Scaling beyond one client demonstrates that readers really do proceed
//! concurrently under the engine's read lock; the wire protocol and
//! per-connection sessions are included in the measured path.

use hermes_bench::harness::{bench, report, Sample};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_core::SharedEngine;
use hermes_retratree::ReTraTreeParams;
use hermes_server::{HermesClient, Server, ServerConfig};
use hermes_trajectory::Duration;
use std::net::SocketAddr;
use std::thread;

const QUERIES_PER_CLIENT: usize = 20;

fn run_client(addr: SocketAddr, queries: usize) {
    let mut client = HermesClient::connect(addr).expect("connect");
    for i in 0..queries {
        let window_end = 1_800_000 + (i as i64 % 4) * 900_000;
        client
            .query(&format!("SELECT RANGE(data, 0, {window_end});"))
            .expect("range query");
        if i % 4 == 0 {
            client
                .query(&format!(
                    "SELECT QUT(data, 0, {window_end}, 0.35, 0.05, 300000, 6000, 1800000);"
                ))
                .expect("qut query");
        }
    }
}

fn main() {
    let scenario = aircraft_with(60, 0xE9);
    let engine = SharedEngine::default();
    engine.with_write(|e| {
        e.create_dataset("data").unwrap();
        e.load_trajectories("data", scenario.trajectories.clone())
            .unwrap();
        e.build_index(
            "data",
            ReTraTreeParams {
                chunk_duration: Duration::from_hours(2),
                s2t: aircraft_s2t_params(),
                ..ReTraTreeParams::default()
            },
        )
        .unwrap();
    });
    let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = server.addr();

    let mut samples: Vec<Sample> = Vec::new();
    let mut qps: Vec<(usize, f64)> = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let sample = bench(format!("clients/{clients}"), 5, || {
            let workers: Vec<_> = (0..clients)
                .map(|_| thread::spawn(move || run_client(addr, QUERIES_PER_CLIENT)))
                .collect();
            for w in workers {
                w.join().expect("client thread");
            }
        });
        // Each iteration issues RANGE every step and QUT every fourth step.
        let queries = clients * (QUERIES_PER_CLIENT + QUERIES_PER_CLIENT.div_ceil(4));
        qps.push((clients, queries as f64 / (sample.median_ms / 1_000.0)));
        samples.push(sample);
    }
    report("e9_concurrent_clients", &samples);

    eprintln!("\n# E9 summary: loopback throughput vs. client count");
    eprintln!("{:>8} {:>12}", "clients", "queries/s");
    for (clients, rate) in &qps {
        eprintln!("{clients:>8} {rate:>12.1}");
    }
    let metrics = server.metrics();
    eprintln!(
        "server totals: {} queries, {} bytes in, {} bytes out",
        metrics.queries_served.get(),
        metrics.bytes_in.get(),
        metrics.bytes_out.get(),
    );
    server.shutdown();
}
