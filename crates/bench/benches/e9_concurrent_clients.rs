//! E9 — server throughput at high connection counts: 256/1024/4096
//! simulated clients under a mixed read/ingest load, measured against both
//! concurrency cores (`ServerCore::Event` vs `ServerCore::Threaded`).
//!
//! Each simulated client is a real TCP connection with its own server-side
//! session. A small pool of driver threads multiplexes the connections:
//! every round it pipelines one request per connection (a `RANGE` read, or
//! an `Ingest` for every 32nd connection) and then drains the responses,
//! recording one send-to-answer latency per request. The report carries
//! p50/p95/p99 latency and queries/sec per (core, clients) case, plus the
//! server's epoch/backpressure/deadline counters.
//!
//! Correctness is gated, not assumed: every `RANGE` answer during the storm
//! must equal the serial reference answer captured before it (reads pin the
//! published engine epoch, and the ingest load targets a separate dataset),
//! and every connection must complete without a single protocol or
//! connection error. The acceptance bar for the event core is printed at
//! the end: at ≥1024 clients it must beat the threaded core's own peak
//! throughput.

use hermes_bench::harness::{report, JsonReport, Sample};
use hermes_bench::{aircraft_s2t_params, aircraft_with};
use hermes_core::SharedEngine;
use hermes_retratree::ReTraTreeParams;
use hermes_server::{
    HermesClient, Request, Response, Server, ServerConfig, ServerCore, ServerHandle,
};
use hermes_sql::Value;
use hermes_trajectory::{Duration, Point, Timestamp, Trajectory};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Instant;

/// Pipelined request rounds per connection.
const ROUNDS: usize = 4;
/// Driver threads multiplexing the connections.
const DRIVERS: usize = 16;
/// One connection in this many issues ingests instead of reads.
const INGEST_STRIDE: usize = 32;

/// Distinct read windows; connection `c`, round `r` probes window
/// `(c + r) % WINDOWS` so the reference table stays small while the storm
/// mixes windows across connections.
const WINDOWS: usize = 8;

static NEXT_TRAJ_ID: AtomicU64 = AtomicU64::new(1_000_000);

fn window_end(slot: usize) -> i64 {
    1_800_000 + slot as i64 * 450_000
}

fn range_sql(slot: usize) -> String {
    format!("SELECT RANGE(data, 0, {});", window_end(slot))
}

/// A tiny unique trajectory for the ingest share of the load. It lands in
/// its own `sink` dataset so the read answers stay a pure function of the
/// pre-built `data` epoch.
fn sink_trajectory() -> Trajectory {
    let id = NEXT_TRAJ_ID.fetch_add(1, Ordering::Relaxed);
    Trajectory::new(
        id,
        id,
        (0..4)
            .map(|i| Point::new(i as f64 * 50.0, id as f64 % 997.0, Timestamp(i * 60_000)))
            .collect(),
    )
    .expect("sink trajectory")
}

fn connect_with_retry(addr: SocketAddr) -> HermesClient {
    // Thousands of near-simultaneous connects can transiently overflow the
    // accept backlog (or catch the server mid-accept-burst); retry with
    // backoff instead of failing the run.
    let mut last = None;
    for attempt in 0..200 {
        match HermesClient::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                last = Some(e);
                thread::sleep(std::time::Duration::from_millis(5 + attempt / 4));
            }
        }
    }
    panic!("connect after retries: {:?}", last.unwrap());
}

/// Drives `conns` connections for `ROUNDS` pipelined rounds and returns the
/// per-request latencies (ms). `base` numbers the connections globally so
/// the window/ingest mix is stable across driver threads.
fn drive(addr: SocketAddr, base: usize, conns: usize, expected: &[Value]) -> Vec<f64> {
    let mut clients: Vec<HermesClient> = (0..conns).map(|_| connect_with_retry(addr)).collect();
    let mut latencies = Vec::with_capacity(conns * ROUNDS);
    let mut sent_at: Vec<Instant> = Vec::with_capacity(conns);
    for round in 0..ROUNDS {
        sent_at.clear();
        for (i, client) in clients.iter_mut().enumerate() {
            let global = base + i;
            let request = if global.is_multiple_of(INGEST_STRIDE) {
                Request::Ingest {
                    dataset: "sink".into(),
                    trajectories: vec![sink_trajectory()],
                }
            } else {
                Request::Query {
                    sql: range_sql((global + round) % WINDOWS),
                }
            };
            sent_at.push(Instant::now());
            client.send(&request).expect("send");
        }
        for (i, client) in clients.iter_mut().enumerate() {
            let global = base + i;
            let response = client.receive().expect("receive");
            latencies.push(sent_at[i].elapsed().as_secs_f64() * 1_000.0);
            if global.is_multiple_of(INGEST_STRIDE) {
                assert!(
                    matches!(response, Response::Command(_)),
                    "ingest answered {response:?}"
                );
            } else {
                let Response::Rows { frame, .. } = response else {
                    panic!("RANGE answered {response:?}");
                };
                let slot = (global + round) % WINDOWS;
                assert_eq!(
                    frame.get(0, "sub_trajectories_in_window"),
                    Some(&expected[slot]),
                    "storm read diverged from the serial reference (window {slot})"
                );
            }
        }
    }
    latencies
}

struct CaseResult {
    sample: Sample,
    qps: f64,
    p99_ms: f64,
    counters: Vec<(String, f64)>,
}

fn run_case(core: ServerCore, clients: usize, engine: &SharedEngine) -> CaseResult {
    let label = match core {
        ServerCore::Event => format!("event/{clients}"),
        ServerCore::Threaded => format!("threaded/{clients}"),
    };
    eprintln!("running {label} ...");
    let server: ServerHandle = Server::bind(
        "127.0.0.1:0",
        engine.clone(),
        ServerConfig {
            core,
            max_connections: clients + 8,
            // The storm legitimately has one request in flight per
            // connection; admission control must not trip on the bench.
            max_pending: clients * 2 + 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = server.addr();

    // Serial reference answers, captured before the storm.
    let mut reference = HermesClient::connect(addr).expect("reference connect");
    let expected: Vec<Value> = (0..WINDOWS)
        .map(|slot| {
            reference
                .query(&range_sql(slot))
                .expect("reference RANGE")
                .expect_frame("RANGE")
                .get(0, "sub_trajectories_in_window")
                .expect("count column")
                .clone()
        })
        .collect();

    let per_driver = clients.div_ceil(DRIVERS);
    let started = Instant::now();
    let mut latencies: Vec<f64> = thread::scope(|scope| {
        let expected = &expected;
        let handles: Vec<_> = (0..clients)
            .step_by(per_driver.max(1))
            .map(|base| {
                let conns = per_driver.min(clients - base);
                scope.spawn(move || drive(addr, base, conns, expected))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    latencies.sort_by(f64::total_cmp);
    let n = latencies.len();
    let rank = |p: usize| latencies[((n * p).div_ceil(100)).clamp(1, n) - 1];
    let qps = n as f64 / elapsed_s;
    let p99_ms = rank(99);
    let sample = Sample {
        label,
        iters: n as u32,
        median_ms: rank(50),
        p95_ms: rank(95),
        min_ms: latencies[0],
        max_ms: latencies[n - 1],
    };

    let metrics = server.metrics();
    let counters = vec![
        ("clients".into(), clients as f64),
        ("qps".into(), qps),
        ("p99_ms".into(), p99_ms),
        ("epoch".into(), metrics.epoch.get() as f64),
        (
            "backpressure_rejections".into(),
            metrics.backpressure_rejections.get() as f64,
        ),
        (
            "deadline_misses".into(),
            metrics.deadline_misses.get() as f64,
        ),
        (
            "connections_rejected".into(),
            metrics.connections_rejected.get() as f64,
        ),
        ("gate_reads_exact".into(), 1.0),
    ];
    server.shutdown();
    CaseResult {
        sample,
        qps,
        p99_ms,
        counters,
    }
}

fn main() {
    let quick = std::env::var("HERMES_BENCH_QUICK").is_ok();
    let ladder: &[usize] = if quick {
        &[64, 128]
    } else {
        &[256, 1024, 4096]
    };

    let scenario = aircraft_with(60, 0xE9);
    let engine = SharedEngine::default();
    engine.with_write(|e| {
        e.create_dataset("data").unwrap();
        e.create_dataset("sink").unwrap();
        e.load_trajectories("data", scenario.trajectories.clone())
            .unwrap();
        e.build_index(
            "data",
            ReTraTreeParams {
                chunk_duration: Duration::from_hours(2),
                s2t: aircraft_s2t_params(),
                ..ReTraTreeParams::default()
            },
        )
        .unwrap();
    });

    let mut samples: Vec<Sample> = Vec::new();
    let mut json = JsonReport::new("e9_concurrent_clients");
    let mut event_qps: Vec<(usize, f64)> = Vec::new();
    let mut threaded_qps: Vec<(usize, f64)> = Vec::new();
    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();

    for &clients in ladder {
        for core in [ServerCore::Threaded, ServerCore::Event] {
            let result = run_case(core, clients, &engine);
            match core {
                ServerCore::Event => event_qps.push((clients, result.qps)),
                ServerCore::Threaded => threaded_qps.push((clients, result.qps)),
            }
            rows.push((
                result.sample.label.clone(),
                result.qps,
                result.sample.median_ms,
                result.sample.p95_ms,
                result.p99_ms,
            ));
            json.push_with(result.sample.clone(), result.counters);
            samples.push(result.sample);
        }
    }

    report("e9_concurrent_clients (per-request latency)", &samples);
    eprintln!("\n# E9 summary: mixed read/ingest load, {ROUNDS} pipelined rounds");
    eprintln!(
        "{:>16} {:>12} {:>10} {:>10} {:>10}",
        "case", "queries/s", "p50_ms", "p95_ms", "p99_ms"
    );
    for (label, qps, p50, p95, p99) in &rows {
        eprintln!("{label:>16} {qps:>12.1} {p50:>10.3} {p95:>10.3} {p99:>10.3}");
    }

    // Acceptance: the event core at >= 1024 clients must clear the threaded
    // core's best throughput at *any* client count.
    let threaded_peak = threaded_qps.iter().map(|&(_, q)| q).fold(0.0, f64::max);
    let mut beats = 1.0;
    for &(clients, qps) in &event_qps {
        if clients >= 1024 {
            let verdict = if qps > threaded_peak {
                "beats"
            } else {
                "MISSES"
            };
            eprintln!(
                "event/{clients}: {qps:.1} q/s {verdict} threaded peak {threaded_peak:.1} q/s"
            );
            if qps <= threaded_peak {
                beats = 0.0;
            }
        }
    }
    json.push_with(
        Sample {
            label: "acceptance".into(),
            iters: 0,
            median_ms: 0.0,
            p95_ms: 0.0,
            min_ms: 0.0,
            max_ms: 0.0,
        },
        vec![
            ("threaded_peak_qps".into(), threaded_peak),
            ("event_beats_threaded_peak".into(), beats),
        ],
    );
    json.write().expect("write BENCH json");
}
