//! A dependency-free micro-benchmark harness.
//!
//! The experiment targets in `benches/` are plain `harness = false`
//! executables: each calls [`bench()`] per measured variant and [`report`] to
//! print an aligned summary, keeping the whole workspace buildable offline.
//! Timings are wall-clock medians over a fixed iteration count with one
//! warm-up run — adequate for the order-of-magnitude comparisons the paper's
//! experiments make (indexed vs naive, QuT vs rebuild).

use std::hint::black_box;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Case label, e.g. `qut/25%`.
    pub label: String,
    /// Iterations measured (after one warm-up).
    pub iters: u32,
    /// Median per-iteration time in milliseconds.
    pub median_ms: f64,
    /// 95th-percentile per-iteration time in milliseconds (nearest-rank).
    pub p95_ms: f64,
    /// Fastest observed iteration in milliseconds.
    pub min_ms: f64,
    /// Slowest observed iteration in milliseconds.
    pub max_ms: f64,
}

/// Times `f` for `iters` iterations (plus one warm-up) and returns the
/// sample. The closure's result is passed through [`black_box`] so the work
/// is not optimized away.
pub fn bench<T>(label: impl Into<String>, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    let iters = iters.max(1);
    black_box(f());
    let times_ms: Vec<f64> = (0..iters)
        .map(|_| {
            let started = Instant::now();
            black_box(f());
            started.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    sample_from(label, times_ms)
}

/// Times two variants in **alternating rounds** (`rounds` rounds of
/// `iters_per_round` iterations each, one warm-up per variant first) and
/// returns both samples. Use this instead of two [`fn@bench`] calls when the
/// quantity of interest is the *ratio* between the variants: machine noise
/// (frequency drift, neighbours on a shared box) is slow relative to a
/// round, so interleaving makes any drift hit both variants alike instead of
/// biasing whichever happened to run second.
pub fn bench_pair<TA, TB>(
    label_a: impl Into<String>,
    label_b: impl Into<String>,
    rounds: u32,
    iters_per_round: u32,
    mut a: impl FnMut() -> TA,
    mut b: impl FnMut() -> TB,
) -> (Sample, Sample) {
    let rounds = rounds.max(1);
    let per = iters_per_round.max(1);
    black_box(a());
    black_box(b());
    let mut times_a = Vec::with_capacity((rounds * per) as usize);
    let mut times_b = Vec::with_capacity((rounds * per) as usize);
    for _ in 0..rounds {
        for _ in 0..per {
            let started = Instant::now();
            black_box(a());
            times_a.push(started.elapsed().as_secs_f64() * 1_000.0);
        }
        for _ in 0..per {
            let started = Instant::now();
            black_box(b());
            times_b.push(started.elapsed().as_secs_f64() * 1_000.0);
        }
    }
    (sample_from(label_a, times_a), sample_from(label_b, times_b))
}

fn sample_from(label: impl Into<String>, mut times_ms: Vec<f64>) -> Sample {
    times_ms.sort_by(f64::total_cmp);
    // Nearest-rank p95: the smallest time ≥ 95% of observations.
    let p95_idx = ((times_ms.len() * 95).div_ceil(100)).clamp(1, times_ms.len()) - 1;
    Sample {
        label: label.into(),
        iters: times_ms.len() as u32,
        median_ms: times_ms[times_ms.len() / 2],
        p95_ms: times_ms[p95_idx],
        min_ms: times_ms[0],
        max_ms: times_ms[times_ms.len() - 1],
    }
}

/// A machine-readable benchmark report: the per-case wall-time statistics
/// plus arbitrary named counters (phase timings, speedups, correctness
/// flags), serialized as `BENCH_<name>.json` so every perf PR leaves a
/// queryable trajectory next to the human-readable table.
///
/// ```json
/// {"name":"e1_s2t_vs_naive","cases":[
///   {"label":"arena/120","iters":10,"median_ms":3.1,"p95_ms":3.4,
///    "min_ms":3.0,"max_ms":3.6,"counters":{"voting_ms":2.2}}]}
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonReport {
    name: String,
    cases: Vec<(Sample, Vec<(String, f64)>)>,
}

impl JsonReport {
    /// Starts a report named `name` (the file becomes `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        JsonReport {
            name: name.into(),
            cases: Vec::new(),
        }
    }

    /// Adds a measured case with no extra counters.
    pub fn push(&mut self, sample: Sample) {
        self.cases.push((sample, Vec::new()));
    }

    /// Adds a measured case with named counters (phase breakdowns, derived
    /// ratios, gate outcomes encoded as 0/1, …).
    pub fn push_with(&mut self, sample: Sample, counters: Vec<(String, f64)>) {
        self.cases.push((sample, counters));
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn num(v: f64) -> String {
            // JSON has no NaN/Infinity; clamp to null-free zero.
            if v.is_finite() {
                format!("{v}")
            } else {
                "0".to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{{\"name\":\"{}\",\"cases\":[", esc(&self.name)));
        for (i, (s, counters)) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"iters\":{},\"median_ms\":{},\"p95_ms\":{},\"min_ms\":{},\"max_ms\":{},\"counters\":{{",
                esc(&s.label),
                s.iters,
                num(s.median_ms),
                num(s.p95_ms),
                num(s.min_ms),
                num(s.max_ms),
            ));
            for (j, (k, v)) in counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", esc(k), num(*v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Writes `BENCH_<name>.json` into `dir`, returning the path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the report into `$HERMES_BENCH_DIR` (default: the current
    /// directory) and prints the path on stderr.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = std::env::var("HERMES_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = self.write_to(Path::new(&dir))?;
        eprintln!("wrote {}", path.display());
        Ok(path)
    }
}

/// Prints samples as an aligned table on stderr (matching the summary style
/// the experiment targets already use).
pub fn report(title: &str, samples: &[Sample]) {
    eprintln!("\n## {title}");
    let width = samples
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(0)
        .max("case".len());
    eprintln!(
        "{:>width$} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "case", "iters", "median_ms", "p95_ms", "min_ms", "max_ms"
    );
    for s in samples {
        eprintln!(
            "{:>width$} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            s.label, s.iters, s.median_ms, s.p95_ms, s.min_ms, s.max_ms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_labels() {
        let mut calls = 0u32;
        let s = bench("spin", 5, || {
            calls += 1;
            (0..1000).sum::<u64>()
        });
        assert_eq!(s.label, "spin");
        assert_eq!(s.iters, 5);
        assert_eq!(calls, 6, "one warm-up plus five measured iterations");
        assert!(s.min_ms <= s.median_ms && s.median_ms <= s.max_ms);
        assert!(s.median_ms <= s.p95_ms && s.p95_ms <= s.max_ms);
        report("test", &[s]);
    }

    #[test]
    fn zero_iterations_are_clamped() {
        let s = bench("once", 0, || 1 + 1);
        assert_eq!(s.iters, 1);
        assert_eq!(
            s.p95_ms, s.median_ms,
            "single observation: all quantiles agree"
        );
    }

    #[test]
    fn json_report_round_trips_structure() {
        let mut report = JsonReport::new("unit_test");
        report.push(Sample {
            label: "plain \"case\"".into(),
            iters: 3,
            median_ms: 1.5,
            p95_ms: 2.0,
            min_ms: 1.0,
            max_ms: 2.5,
        });
        report.push_with(
            Sample {
                label: "with/counters".into(),
                iters: 2,
                median_ms: 4.0,
                p95_ms: f64::INFINITY, // must not produce invalid JSON
                min_ms: 3.0,
                max_ms: 5.0,
            },
            vec![("voting_ms".into(), 2.25), ("speedup".into(), 3.0)],
        );
        let json = report.to_json();
        assert!(json.starts_with("{\"name\":\"unit_test\",\"cases\":["));
        assert!(json.contains("\"label\":\"plain \\\"case\\\"\""));
        assert!(json.contains("\"voting_ms\":2.25"));
        assert!(
            json.contains("\"p95_ms\":0"),
            "non-finite values are clamped: {json}"
        );
        assert!(!json.contains("inf") && !json.contains("NaN"));

        let dir = std::env::temp_dir();
        let path = report.write_to(&dir).unwrap();
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some("BENCH_unit_test.json")
        );
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        std::fs::remove_file(&path).ok();
    }
}
