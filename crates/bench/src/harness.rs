//! A dependency-free micro-benchmark harness.
//!
//! The experiment targets in `benches/` are plain `harness = false`
//! executables: each calls [`bench`] per measured variant and [`report`] to
//! print an aligned summary, keeping the whole workspace buildable offline.
//! Timings are wall-clock medians over a fixed iteration count with one
//! warm-up run — adequate for the order-of-magnitude comparisons the paper's
//! experiments make (indexed vs naive, QuT vs rebuild).

use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Case label, e.g. `qut/25%`.
    pub label: String,
    /// Iterations measured (after one warm-up).
    pub iters: u32,
    /// Median per-iteration time in milliseconds.
    pub median_ms: f64,
    /// Fastest observed iteration in milliseconds.
    pub min_ms: f64,
    /// Slowest observed iteration in milliseconds.
    pub max_ms: f64,
}

/// Times `f` for `iters` iterations (plus one warm-up) and returns the
/// sample. The closure's result is passed through [`black_box`] so the work
/// is not optimized away.
pub fn bench<T>(label: impl Into<String>, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    let iters = iters.max(1);
    black_box(f());
    let mut times_ms: Vec<f64> = (0..iters)
        .map(|_| {
            let started = Instant::now();
            black_box(f());
            started.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    times_ms.sort_by(f64::total_cmp);
    Sample {
        label: label.into(),
        iters,
        median_ms: times_ms[times_ms.len() / 2],
        min_ms: times_ms[0],
        max_ms: times_ms[times_ms.len() - 1],
    }
}

/// Prints samples as an aligned table on stderr (matching the summary style
/// the experiment targets already use).
pub fn report(title: &str, samples: &[Sample]) {
    eprintln!("\n## {title}");
    let width = samples
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(0)
        .max("case".len());
    eprintln!(
        "{:>width$} {:>7} {:>12} {:>12} {:>12}",
        "case", "iters", "median_ms", "min_ms", "max_ms"
    );
    for s in samples {
        eprintln!(
            "{:>width$} {:>7} {:>12.3} {:>12.3} {:>12.3}",
            s.label, s.iters, s.median_ms, s.min_ms, s.max_ms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_labels() {
        let mut calls = 0u32;
        let s = bench("spin", 5, || {
            calls += 1;
            (0..1000).sum::<u64>()
        });
        assert_eq!(s.label, "spin");
        assert_eq!(s.iters, 5);
        assert_eq!(calls, 6, "one warm-up plus five measured iterations");
        assert!(s.min_ms <= s.median_ms && s.median_ms <= s.max_ms);
        report("test", &[s]);
    }

    #[test]
    fn zero_iterations_are_clamped() {
        let s = bench("once", 0, || 1 + 1);
        assert_eq!(s.iters, 1);
    }
}
