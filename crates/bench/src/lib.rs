//! Shared helpers for the benchmark harness.
//!
//! Every benchmark target in `benches/` regenerates one experiment of
//! EXPERIMENTS.md (one table/figure/claim of the ICDE 2018 demo paper). The
//! helpers here build the standard synthetic workloads and parameter sets so
//! the benches and the documentation agree on what exactly was measured.
//!
//! **Layer:** out-of-band measurement over the public surface of every
//! other crate. Reports land as `BENCH_<name>.json` (see the README's
//! "Benchmark reports" section); the formats and subsystems under test are
//! documented in `docs/ARCHITECTURE.md`, `docs/PROTOCOL.md` and
//! `docs/STORAGE.md`.

use hermes_datagen::{
    AircraftScenario, AircraftScenarioBuilder, MaritimeScenario, MaritimeScenarioBuilder,
    UrbanScenario, UrbanScenarioBuilder,
};
use hermes_retratree::{QutParams, ReTraTreeParams};
use hermes_s2t::S2TParams;
use hermes_trajectory::Duration;

pub mod harness;

/// The S2T parameter set used for aircraft workloads across the experiments.
pub fn aircraft_s2t_params() -> S2TParams {
    S2TParams {
        sigma: 2_000.0,
        epsilon: 6_000.0,
        min_duration_ms: 5 * 60_000,
        ..S2TParams::default()
    }
}

/// The S2T parameter set used for urban (commute-grid) workloads.
pub fn urban_s2t_params() -> S2TParams {
    S2TParams {
        sigma: 60.0,
        epsilon: 250.0,
        min_duration_ms: 3 * 60_000,
        ..S2TParams::default()
    }
}

/// An urban commute scenario with roughly `vehicles` vehicles (corridor
/// traffic plus ~25% random routes), deterministic in `seed`. The standard
/// voting-hot-path workload: dense grids with many co-moving segments.
pub fn urban_with(vehicles: usize, seed: u64) -> UrbanScenario {
    let per_corridor = (vehicles * 3 / 4 / 3).max(1);
    UrbanScenarioBuilder {
        seed,
        grid_size: 12,
        num_corridors: 3,
        vehicles_per_corridor: per_corridor,
        num_random_vehicles: (vehicles / 4).max(1),
        ..UrbanScenarioBuilder::default()
    }
    .build()
}

/// The S2T parameter set used for maritime workloads.
pub fn maritime_s2t_params() -> S2TParams {
    S2TParams {
        sigma: 800.0,
        epsilon: 2_500.0,
        min_duration_ms: 10 * 60_000,
        ..S2TParams::default()
    }
}

/// ReTraTree parameters used by the QuT experiments.
pub fn tree_params(s2t: S2TParams) -> ReTraTreeParams {
    ReTraTreeParams {
        chunk_duration: Duration::from_hours(2),
        subchunks_per_chunk: 4,
        reorg_page_threshold: 4,
        buffer_frames: 256,
        s2t,
    }
}

/// QuT parameters used by the window experiments.
pub fn qut_params(s2t: S2TParams) -> QutParams {
    QutParams {
        s2t,
        merge_distance: 2_500.0,
        merge_gap: Duration::from_mins(45),
    }
}

/// An aircraft scenario with roughly `flights` flights (streams × waves ×
/// flights-per-wave, plus ~10% stragglers), deterministic in `seed`.
pub fn aircraft_with(flights: usize, seed: u64) -> AircraftScenario {
    let per_wave = (flights / 6).max(1);
    AircraftScenarioBuilder {
        seed,
        num_streams: 3,
        waves_per_stream: 2,
        flights_per_wave: per_wave,
        num_stragglers: (flights / 10).max(1),
        holding_probability: 0.3,
        ..AircraftScenarioBuilder::default()
    }
    .build()
}

/// The standard maritime scenario used by the E3/E6 experiments.
pub fn maritime_standard(seed: u64) -> MaritimeScenario {
    MaritimeScenarioBuilder {
        seed,
        num_lanes: 3,
        vessels_per_lane: 10,
        num_rogues: 5,
        departure_spread_ms: 40 * 60_000,
        ..MaritimeScenarioBuilder::default()
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_workloads() {
        let a = aircraft_with(30, 1);
        let b = aircraft_with(30, 1);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 30, "requested ~30 flights, got {}", a.len());
        let m = maritime_standard(1);
        assert_eq!(m.trajectories.len(), 35);
        assert!(aircraft_s2t_params().validate().is_ok());
        assert!(tree_params(maritime_s2t_params()).validate().is_ok());
        assert!(qut_params(maritime_s2t_params()).validate().is_ok());
    }
}
