//! `hermes-coord` — the Hermes sharding coordinator.
//!
//! ```text
//! hermes-coord --shard a=host1:8650@min..3600000 \
//!              --shard b=host2:8650@3600000..max
//! hermes-coord --shard a=host1:8650,host2:8650@min..max --hedge-ms 30
//! hermes-coord --shard-map shards.toml --addr 0.0.0.0:8651
//! hermes-coord --shard solo=host1:8650 --port 0    # ephemeral upstream port
//! ```
//!
//! The coordinator owns a static shard map (temporal sub-chunk → replica
//! set), speaks the normal wire protocol downstream to each `hermes-serve`
//! endpoint, and upstream exposes the same protocol — `hermes-cli --connect`
//! works unchanged. Multi-shard reads fan out in parallel and are merged
//! bit-identically to a single-node engine, failing over (and optionally
//! hedging) across a shard's replicas; writes route by shard key or
//! broadcast to every replica all-or-error. See `docs/SHARDING.md`.
//!
//! The bound address is announced on stdout as `hermes-coord listening on
//! <addr>` so scripts can scrape the ephemeral port, mirroring
//! `hermes-serve`. With `--metrics-addr` a second line `hermes-coord metrics
//! listening on <addr>` announces the Prometheus endpoint the same way.

use hermes_coord::{
    parse_shard_flag, parse_shard_map, validate_shard_map, CoordServer, Coordinator,
    FailoverPolicy, ShardSpec,
};
use hermes_exec::ExecPolicy;
use hermes_obs::serve_metrics;
use hermes_server::{ConnectOptions, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "\
hermes-coord — the Hermes sharding coordinator

USAGE:
    hermes-coord (--shard <name=addr[,addr2,…][@start..end]>)...
                 [--shard-map <file>]
                 [--addr <host:port> | --port <n>] [--max-connections <n>]
                 [--threads <n>] [--connect-timeout-ms <n>]
                 [--read-timeout-ms <n>] [--retries <n>]
                 [--hedge-ms <n>] [--failover-backoff-ms <n>]
                 [--metrics-addr <host:port>] [--slow-query-ms <n>]

OPTIONS:
    --shard <spec>           One shard: name=addr[,addr2,…][@start..end].
                             The address list is the shard's replica set
                             (primary first; replicas receive every write
                             and serve reads on failover). The half-open
                             slice bounds are epoch ms, 'min' or 'max'
                             (both default to unbounded). Repeatable.
    --shard-map <file>       Shard map file: [[shard]] tables with name,
                             addr (same comma-separated replica syntax)
                             and optional start_ms / end_ms keys.
                             Combines with --shard flags.
    --addr <host:port>       Upstream bind address (default 127.0.0.1:8651;
                             port 0 picks an ephemeral port)
    --port <n>               Shorthand for --addr 127.0.0.1:<n>
    --max-connections <n>    Simultaneous upstream connection cap
                             (default 64)
    --threads <n>            Fan-out/merge compute threads (default:
                             HERMES_THREADS or all cores; 1 = serial).
                             SET threads = n; also rebroadcasts to shards.
    --connect-timeout-ms <n> Per-attempt shard connect timeout
                             (default 5000)
    --read-timeout-ms <n>    Per-request shard deadline: an endpoint
                             exceeding it fails the attempt and the read
                             fails over to the next replica
                             (default: block forever)
    --retries <n>            Extra connect attempts per endpoint dial
                             (default 3, exponential backoff)
    --hedge-ms <n>           Hedged reads: when a primary has not answered
                             within n ms, fire a duplicate of the read at a
                             replica and take the first answer (the loser
                             is ignored). Off by default.
    --failover-backoff-ms <n> Base pause before retrying a read on the next
                             replica; doubles per attempt, jittered ±50%
                             (default 10)
    --metrics-addr <h:p>     Serve the Prometheus text exposition of the
                             process metrics registry (coordinator counters
                             plus per-shard hermes_shard_* series) at
                             GET /metrics on this address (port 0 picks one;
                             announced as 'hermes-coord metrics listening
                             on <addr>')
    --slow-query-ms <n>      Log one structured JSON line (with the
                             statement's distributed trace id) to stderr for
                             every statement slower than n milliseconds
    -h, --help               Print this text

The slices must partition the whole time axis (first starts at min, last
ends at max, no gaps or overlaps) and interior boundaries must be multiples
of the BUILD INDEX chunk duration — the coordinator enforces both.
";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8651".to_string();
    let mut config = ServerConfig::default();
    let mut policy = ExecPolicy::from_env();
    let mut opts = ConnectOptions::default();
    let mut failover = FailoverPolicy::default();
    let mut shards: Vec<ShardSpec> = Vec::new();
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shard" => match args.next().map(|v| parse_shard_flag(&v)) {
                Some(Ok(spec)) => shards.push(spec),
                Some(Err(e)) => return fail(&e.to_string()),
                None => return fail("--shard requires a name=addr[@start..end] value"),
            },
            "--shard-map" => match args.next() {
                Some(path) => match std::fs::read_to_string(&path) {
                    Ok(text) => match parse_shard_map(&text) {
                        Ok(mut specs) => shards.append(&mut specs),
                        Err(e) => return fail(&format!("{path}: {e}")),
                    },
                    Err(e) => return fail(&format!("cannot read shard map {path}: {e}")),
                },
                None => return fail("--shard-map requires a file path"),
            },
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return fail("--addr requires a host:port value"),
            },
            "--port" => match args.next().and_then(|n| n.parse::<u16>().ok()) {
                Some(port) => addr = format!("127.0.0.1:{port}"),
                None => return fail("--port requires a port number (0 picks one)"),
            },
            "--max-connections" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.max_connections = n,
                _ => return fail("--max-connections requires a positive integer"),
            },
            "--threads" => match args
                .next()
                .and_then(|n| n.parse().ok())
                .map(ExecPolicy::new)
            {
                Some(Ok(p)) => policy = p,
                Some(Err(m)) => return fail(&format!("--{m}")),
                None => return fail("--threads requires a positive integer"),
            },
            "--connect-timeout-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) => opts.connect_timeout = Duration::from_millis(ms),
                None => return fail("--connect-timeout-ms requires a millisecond count"),
            },
            "--read-timeout-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) if ms > 0 => opts.read_timeout = Some(Duration::from_millis(ms)),
                _ => return fail("--read-timeout-ms requires a positive millisecond count"),
            },
            "--retries" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.retries = n,
                None => return fail("--retries requires an attempt count"),
            },
            "--hedge-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) if ms > 0 => failover.hedge = Some(Duration::from_millis(ms)),
                _ => return fail("--hedge-ms requires a positive millisecond count"),
            },
            "--failover-backoff-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) => failover.backoff = Duration::from_millis(ms),
                None => return fail("--failover-backoff-ms requires a millisecond count"),
            },
            "--metrics-addr" => match args.next() {
                Some(a) => metrics_addr = Some(a),
                None => return fail("--metrics-addr requires a host:port value"),
            },
            "--slow-query-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) => config.slow_query_ms = Some(ms),
                None => return fail("--slow-query-ms requires a millisecond count"),
            },
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'\n\n{HELP}")),
        }
    }

    if shards.is_empty() {
        return fail(
            "no shards configured; pass --shard or --shard-map\n\nRun with --help for the syntax",
        );
    }
    if let Err(e) = validate_shard_map(&mut shards) {
        return fail(&e.to_string());
    }

    let coordinator = Coordinator::with_failover(shards, opts, policy, failover);
    // Startup health probes: report each endpoint's reachability, but start
    // regardless — an endpoint that is still coming up will be retried on
    // its first query, and SHOW STATS tracks liveness from then on.
    for (name, endpoint_addr, alive) in coordinator.probe_all() {
        if alive {
            eprintln!("shard '{name}' ({endpoint_addr}): reachable");
        } else {
            eprintln!("shard '{name}' ({endpoint_addr}): UNREACHABLE (will retry per query)");
        }
    }
    // A shard is reachable while any endpoint of its replica set is.
    let reachable = coordinator.shards().iter().filter(|s| s.is_alive()).count();
    let total = coordinator.shards().len();
    eprintln!("{reachable}/{total} shard(s) reachable");

    let server = match CoordServer::bind(&addr, coordinator, config) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot bind {addr}: {e}")),
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(&format!("cannot resolve bound address: {e}")),
    };
    // Keep the handle alive for the life of the process; dropping it would
    // stop the accept loop.
    let _handle = match server.spawn() {
        Ok(h) => h,
        Err(e) => return fail(&format!("cannot start the accept loop: {e}")),
    };
    println!("hermes-coord listening on {bound}");
    // Keep the scrape listener alive for the life of the process.
    let _metrics_handle = match &metrics_addr {
        Some(maddr) => match serve_metrics(maddr.as_str(), _handle.registry()) {
            Ok(h) => {
                println!("hermes-coord metrics listening on {}", h.addr());
                Some(h)
            }
            Err(e) => return fail(&format!("cannot bind metrics address {maddr}: {e}")),
        },
        None => None,
    };
    let _ = std::io::stdout().flush();

    // The coordinator holds no durable state, so there is nothing to flush
    // on shutdown: run until the process is killed.
    loop {
        std::thread::park();
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}
