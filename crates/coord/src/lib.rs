//! # hermes-coord
//!
//! The multi-node subsystem: one coordinator in front of N `hermes-serve`
//! shards, each owning a static half-open temporal slice of the data.
//!
//! Upstream the coordinator speaks the exact same wire protocol as a
//! single-node server — `hermes-cli --connect` works unchanged — and
//! downstream it fans statements out over pooled
//! [`HermesClient`](hermes_server::HermesClient) connections:
//!
//! - [`shardmap`] — the static shard map (TOML-subset file or repeated
//!   `--shard` flags), each slice owned by a **replica set** (primary plus
//!   N replicas), and its partition-of-the-time-axis validation;
//! - [`registry`] — per-endpoint liveness, latency/byte counters and
//!   connection pools, plus the read-path availability machinery: failover
//!   across the replica set with jittered backoff, and optional hedged
//!   duplicates (`--hedge-ms`), surfaced through `SHOW STATS`;
//! - [`router`] — verbatim forwarding for single-shard statements, parallel
//!   fan-out plus the border-merging reassembly (bit-identical to a single
//!   node, see `docs/SHARDING.md`) for multi-shard reads, and all-or-error
//!   broadcasts to every endpoint for writes (so replicas never diverge);
//! - [`server`] — the upstream accept loop, `hermes-server`'s
//!   thread-per-connection shape with the engine swapped for a
//!   [`Coordinator`].
//!
//! The `hermes-coord` binary wires these together behind `--shard` /
//! `--shard-map` flags.

#![deny(missing_docs)]

pub mod registry;
pub mod router;
pub mod server;
pub mod shardmap;

pub use registry::{CoordError, Endpoint, FailoverPolicy, ReadCall, Shard};
pub use router::{Coordinator, ForwardSpec};
pub use server::{CoordServer, CoordServerHandle};
pub use shardmap::{
    parse_shard_flag, parse_shard_map, validate_shard_map, ShardMapError, ShardSpec,
};
