//! Per-shard control-plane state: replica endpoints, liveness, counters and
//! connection pools.
//!
//! A [`Shard`] is a **replica set**: one primary endpoint plus N replicas
//! that hold byte-identical state (the router sends every write to every
//! endpoint, all-or-error, so replicas never diverge — `docs/SHARDING.md`).
//! Reads go through [`Shard::call`], which owns the availability machinery:
//!
//! - **Failover ladder** — endpoints are tried live-first/primary-first; a
//!   transport failure, or a server-answered *retryable* error
//!   ([`ErrorCode::is_retryable`](hermes_server::ErrorCode::is_retryable):
//!   `Deadline`/`Capacity`/`Backpressure`),
//!   moves the call to the next endpoint after a jittered exponential
//!   backoff and bumps `failovers`. A `Query`-class error is an *answer* — a
//!   replica would say exactly the same — and is relayed verbatim.
//! - **Hedging** — with [`FailoverPolicy::hedge`] set, a duplicate of the
//!   call is fired at the first replica when the primary has not answered
//!   within the hedge window; the first answer wins and the loser is
//!   cancelled by ignoring it (its thread finishes in the background and its
//!   connection re-pools only if it is still clean).
//!
//! Connections are pooled per **endpoint**. Check-in refuses connections
//! that are not [`clean`](HermesClient::is_clean) — a stream that broke
//! mid-frame, or that still owes responses (a hedge loser), is dropped
//! rather than handed to the next caller desynchronized.

use crate::shardmap::ShardSpec;
use hermes_obs::{Counter, Sample, SampleValue, TraceContext};
use hermes_server::protocol::{Request, Response};
use hermes_server::{ClientError, ConnectOptions, HermesClient};
use hermes_sql::Value;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Idle connections kept per endpoint; extras are dropped on check-in.
const POOL_KEEP: usize = 8;

/// A coordinator-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// An error whose text is exactly what a single-node engine would
    /// produce (shard-answered SQL/engine errors, or errors the coordinator
    /// mirrors from the executor's own validation).
    Data(String),
    /// A shard became unreachable or spoke garbage; names the culprit.
    Shard {
        /// The failing shard's name from the shard map.
        name: String,
        /// The failing endpoint's address.
        addr: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Data(m) => f.write_str(m),
            CoordError::Shard { name, addr, detail } => {
                write!(f, "shard '{name}' ({addr}): {detail}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// Availability knobs for the read path (`--hedge-ms`,
/// `--failover-backoff-ms` on the binary).
#[derive(Debug, Clone)]
pub struct FailoverPolicy {
    /// Fire a duplicate read at the first replica when the primary has not
    /// answered within this window (`None` = never hedge). The first answer
    /// wins; the loser is ignored.
    pub hedge: Option<Duration>,
    /// Base pause before retrying on the next endpoint; doubles per further
    /// attempt and is jittered ±50% so replicas of a struggling shard are
    /// not hit in lockstep.
    pub backoff: Duration,
    /// Upper bound for the (pre-jitter) backoff.
    pub max_backoff: Duration,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy {
            hedge: None,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
        }
    }
}

/// One read-path wire call, owned so a failover retry or a hedge thread can
/// replay it verbatim on another endpoint.
#[derive(Debug)]
pub enum ReadCall {
    /// A pipelined batch: every request is written before the first response
    /// is read; one `Response` per request, in order (`Error` frames as
    /// values in their slot).
    Pipeline(Vec<Request>),
    /// The prepared-statement forward: `Prepare` then `ExecutePrepared` with
    /// the same bound parameters. Two round trips by necessity — the handle
    /// is assigned by the server mid-exchange — but still replayable.
    Prepared {
        /// The original placeholder SQL.
        sql: String,
        /// The bound parameter values.
        params: Vec<Value>,
    },
}

/// One endpoint of a replica set: its address, last observed liveness and
/// its idle-connection pool.
pub struct Endpoint {
    /// `host:port` of this endpoint's `hermes-serve` listener.
    pub addr: String,
    alive: AtomicBool,
    idle: Mutex<Vec<HermesClient>>,
}

impl Endpoint {
    fn new(addr: String) -> Endpoint {
        Endpoint {
            addr,
            alive: AtomicBool::new(false),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Last observed liveness of this endpoint.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    fn pooled(&self) -> usize {
        self.idle.lock().unwrap().len()
    }

    fn check_out(&self, opts: &ConnectOptions) -> Result<HermesClient, ClientError> {
        if let Some(conn) = self.idle.lock().unwrap().pop() {
            return Ok(conn);
        }
        HermesClient::connect_with(self.addr.as_str(), opts).map_err(ClientError::Io)
    }

    fn check_in(&self, conn: HermesClient) {
        // The poison gate: a connection that owes responses or broke
        // mid-frame must never serve another caller.
        if !conn.is_clean() {
            return;
        }
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < POOL_KEEP {
            idle.push(conn);
        }
    }
}

/// One shard's registry entry: its spec, replica endpoints, cumulative
/// counters and the failover policy. All counters are lock-free
/// `hermes-obs` counters — `SHOW STATS` and the `/metrics` collector read
/// them without stopping traffic.
pub struct Shard {
    /// The shard's name, replica set and owned slice.
    pub spec: ShardSpec,
    opts: ConnectOptions,
    policy: FailoverPolicy,
    endpoints: Vec<Endpoint>,
    queries: Counter,
    errors: Counter,
    failovers: Counter,
    hedges_fired: Counter,
    hedges_won: Counter,
    latency_us: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    /// xorshift state for backoff jitter; seeded from the shard name so runs
    /// are reproducible per shard without any global randomness source.
    rng: AtomicU64,
}

impl Shard {
    /// Creates the registry entry with the default [`FailoverPolicy`]; no
    /// connection is attempted until the first call (or [`Shard::probe`]).
    pub fn new(spec: ShardSpec, opts: ConnectOptions) -> Shard {
        Shard::with_policy(spec, opts, FailoverPolicy::default())
    }

    /// Creates the registry entry with an explicit [`FailoverPolicy`].
    pub fn with_policy(spec: ShardSpec, opts: ConnectOptions, policy: FailoverPolicy) -> Shard {
        let endpoints = spec
            .endpoints()
            .map(|a| Endpoint::new(a.to_string()))
            .collect();
        // FNV-1a over the name: any nonzero, per-shard-distinct seed works.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in spec.name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Shard {
            spec,
            opts,
            policy,
            endpoints,
            queries: Counter::new(),
            errors: Counter::new(),
            failovers: Counter::new(),
            hedges_fired: Counter::new(),
            hedges_won: Counter::new(),
            latency_us: Counter::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            rng: AtomicU64::new(seed | 1),
        }
    }

    /// The shard's owned `[start_ms, end_ms)` slice.
    pub fn slice(&self) -> (i64, i64) {
        (self.spec.start_ms, self.spec.end_ms)
    }

    /// The replica set, primary first.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Shard liveness: true while at least one endpoint is alive (updated
    /// by every exchange and by probes).
    pub fn is_alive(&self) -> bool {
        self.endpoints.iter().any(Endpoint::is_alive)
    }

    /// Times the read path failed over to another endpoint.
    pub fn failovers(&self) -> u64 {
        self.failovers.get()
    }

    /// Hedged duplicates fired / hedged duplicates that won the race.
    pub fn hedge_counts(&self) -> (u64, u64) {
        (self.hedges_fired.get(), self.hedges_won.get())
    }

    /// Health probe: one cheap round trip (`SHOW THREADS;`) per endpoint.
    /// Updates every liveness flag and returns the shard-level result.
    pub fn probe(&self) -> bool {
        for idx in 0..self.endpoints.len() {
            let _ = self.on_endpoint(idx, |c| c.query("SHOW THREADS;").map(|_| ()));
        }
        self.is_alive()
    }

    fn named(&self, addr: &str, detail: String) -> CoordError {
        CoordError::Shard {
            name: self.spec.name.clone(),
            addr: addr.to_string(),
            detail,
        }
    }

    /// Runs `f` over a pooled connection to one specific endpoint — the
    /// **write** path (ingest, DDL, broadcasts) and probes. No failover:
    /// writes must reach every endpoint of the set or fail the statement,
    /// otherwise replicas would diverge. Error taxonomy:
    ///
    /// - a clean answer marks the endpoint alive and re-pools the connection;
    /// - a *server-answered* error (unknown dataset, bad parameters, …)
    ///   keeps the connection when still clean and surfaces the message
    ///   **verbatim** — it is exactly what a single-node engine would say;
    /// - an I/O or protocol failure drops the connection, marks the endpoint
    ///   dead and surfaces a [`CoordError::Shard`] naming shard + endpoint.
    pub fn on_endpoint<T>(
        &self,
        idx: usize,
        f: impl FnOnce(&mut HermesClient) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        let endpoint = &self.endpoints[idx];
        let mut conn = match endpoint.check_out(&self.opts) {
            Ok(conn) => conn,
            Err(e) => {
                endpoint.alive.store(false, Ordering::Relaxed);
                self.errors.inc();
                return Err(self.named(&endpoint.addr, format!("connect failed: {e}")));
            }
        };
        let (out0, in0) = (conn.bytes_out(), conn.bytes_in());
        let started = Instant::now();
        let result = f(&mut conn);
        self.latency_us.add(started.elapsed().as_micros() as u64);
        self.bytes_out.add(conn.bytes_out() - out0);
        self.bytes_in.add(conn.bytes_in() - in0);
        match result {
            Ok(value) => {
                self.queries.inc();
                endpoint.alive.store(true, Ordering::Relaxed);
                endpoint.check_in(conn);
                Ok(value)
            }
            Err(ClientError::Server { message, .. }) => {
                // The endpoint executed the request and said no: the stream
                // is in sync (check_in re-verifies), and the message is
                // relayed verbatim (it matches the single-node error text).
                self.errors.inc();
                endpoint.check_in(conn);
                Err(CoordError::Data(message))
            }
            Err(e) => {
                self.errors.inc();
                endpoint.alive.store(false, Ordering::Relaxed);
                drop(conn);
                Err(self.named(&endpoint.addr, e.to_string()))
            }
        }
    }

    /// Runs `f` over a pooled connection to the primary. Kept for callers
    /// that predate replica sets; reads should use [`Shard::call`].
    pub fn with_conn<T>(
        &self,
        f: impl FnOnce(&mut HermesClient) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        self.on_endpoint(0, f)
    }

    /// The **read** path: executes `call` with failover across the replica
    /// set and optional hedging (see the module docs). Returns the responses
    /// of the first endpoint that produced a non-retryable answer; `Error`
    /// frames of the `Query` class come back as values — they are answers,
    /// identical on every replica.
    pub fn call(
        self: &Arc<Self>,
        call: ReadCall,
        trace: Option<TraceContext>,
    ) -> Result<Vec<Response>, CoordError> {
        let call = Arc::new(call);
        let order = self.endpoint_order();
        let mut attempted = 0usize;
        let mut last_err = None;

        if let (Some(hedge), true) = (self.policy.hedge, order.len() > 1) {
            match self.hedged_pair(&call, trace, order[0], order[1], hedge) {
                Ok(responses) => return Ok(responses),
                Err(e) => {
                    last_err = Some(e);
                    attempted = 2;
                }
            }
        }

        for &idx in &order[attempted.min(order.len())..] {
            if attempted > 0 {
                self.failovers.inc();
                std::thread::sleep(self.jittered_backoff(attempted));
            }
            attempted += 1;
            match self.attempt(idx, &call, trace) {
                Ok(responses) => return Ok(responses),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("a replica set has at least one endpoint"))
    }

    /// One try on one endpoint: transport failures and retryable-coded
    /// answers (`Deadline`/`Capacity`/`Backpressure`) become `Err` so the
    /// ladder moves on; everything else is final.
    fn attempt(
        &self,
        idx: usize,
        call: &ReadCall,
        trace: Option<TraceContext>,
    ) -> Result<Vec<Response>, CoordError> {
        let endpoint = &self.endpoints[idx];
        match self.run_endpoint(idx, call, trace) {
            Ok(responses) => {
                let retryable = responses.iter().find_map(|r| match r {
                    Response::Error { code, message } if code.is_retryable() => {
                        Some(format!("{code:?}: {message}"))
                    }
                    _ => None,
                });
                match retryable {
                    // The endpoint answered — it is alive — but refused or
                    // timed out; a replica may accept.
                    Some(detail) => {
                        self.errors.inc();
                        Err(self.named(&endpoint.addr, detail))
                    }
                    None => Ok(responses),
                }
            }
            Err(e) => {
                self.errors.inc();
                endpoint.alive.store(false, Ordering::Relaxed);
                Err(self.named(&endpoint.addr, e.to_string()))
            }
        }
    }

    /// The raw exchange on one endpoint, with byte/latency accounting.
    fn run_endpoint(
        &self,
        idx: usize,
        call: &ReadCall,
        trace: Option<TraceContext>,
    ) -> Result<Vec<Response>, ClientError> {
        let endpoint = &self.endpoints[idx];
        let mut conn = endpoint.check_out(&self.opts)?;
        conn.set_trace(trace);
        let (out0, in0) = (conn.bytes_out(), conn.bytes_in());
        let started = Instant::now();
        let result = match call {
            ReadCall::Pipeline(requests) => conn.pipeline(requests),
            ReadCall::Prepared { sql, params } => {
                match conn.exchange(&Request::Prepare { sql: sql.clone() })? {
                    Response::Prepared { handle } => conn
                        .exchange(&Request::ExecutePrepared {
                            handle,
                            params: params.clone(),
                        })
                        .map(|r| vec![r]),
                    error @ Response::Error { .. } => Ok(vec![error]),
                    other => Err(ClientError::Protocol(format!(
                        "expected a Prepared response, got {other:?}"
                    ))),
                }
            }
        };
        conn.set_trace(None);
        self.latency_us.add(started.elapsed().as_micros() as u64);
        self.bytes_out.add(conn.bytes_out() - out0);
        self.bytes_in.add(conn.bytes_in() - in0);
        match result {
            Ok(responses) => {
                self.queries.inc();
                endpoint.alive.store(true, Ordering::Relaxed);
                endpoint.check_in(conn);
                Ok(responses)
            }
            Err(e) => Err(e),
        }
    }

    /// Races the primary attempt against a delayed duplicate on `b`. The
    /// first non-retryable answer wins; the loser's thread finishes in the
    /// background (cancel-by-ignore). `Err` means both endpoints were
    /// exhausted — the caller continues the ladder from the third endpoint.
    fn hedged_pair(
        self: &Arc<Self>,
        call: &Arc<ReadCall>,
        trace: Option<TraceContext>,
        a: usize,
        b: usize,
        hedge: Duration,
    ) -> Result<Vec<Response>, CoordError> {
        let (tx, rx) = mpsc::channel();
        self.spawn_attempt(a, call, trace, tx.clone());
        match rx.recv_timeout(hedge) {
            Ok((_, Ok(responses))) => Ok(responses),
            Ok((_, Err(_e))) => {
                // The primary failed outright within the window: a classic
                // failover, not a hedge.
                self.failovers.inc();
                std::thread::sleep(self.jittered_backoff(1));
                self.attempt(b, call, trace)
            }
            Err(_) => {
                // The primary is slow. Duplicate the call at `b` and take
                // whichever answers first.
                self.hedges_fired.inc();
                self.spawn_attempt(b, call, trace, tx);
                let mut last_err = None;
                for _ in 0..2 {
                    match rx.recv() {
                        Ok((winner, Ok(responses))) => {
                            if winner == b {
                                self.hedges_won.inc();
                            }
                            return Ok(responses);
                        }
                        Ok((_, Err(e))) => last_err = Some(e),
                        Err(_) => break,
                    }
                }
                Err(last_err
                    .unwrap_or_else(|| self.named(&self.endpoints[a].addr, "hedge lost".into())))
            }
        }
    }

    /// Fires one attempt on a detached thread; the result (or the loss) is
    /// reported through `tx`. Detachment is what makes cancel-by-ignore
    /// work: a loser blocked on a slow endpoint cannot stall the winner.
    fn spawn_attempt(
        self: &Arc<Self>,
        idx: usize,
        call: &Arc<ReadCall>,
        trace: Option<TraceContext>,
        tx: mpsc::Sender<(usize, Result<Vec<Response>, CoordError>)>,
    ) {
        let shard = Arc::clone(self);
        let call = Arc::clone(call);
        std::thread::spawn(move || {
            let result = shard.attempt(idx, &call, trace);
            let _ = tx.send((idx, result));
        });
    }

    /// Endpoint indices in attempt order: live endpoints first, primary
    /// first within each class (the sort is stable). Dead endpoints stay in
    /// the ladder — liveness is a hint, not a ban — but are tried last.
    fn endpoint_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.endpoints.len()).collect();
        order.sort_by_key(|&i| !self.endpoints[i].is_alive());
        order
    }

    /// Exponential backoff for the `attempt`-th try, jittered to 50–150% via
    /// a per-shard xorshift so replicas are not retried in lockstep.
    fn jittered_backoff(&self, attempt: usize) -> Duration {
        let doubled = self
            .policy
            .backoff
            .saturating_mul(1u32 << (attempt.clamp(1, 5) as u32 - 1));
        let capped = doubled.min(self.policy.max_backoff);
        let mut seed = self.rng.load(Ordering::Relaxed);
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        self.rng.store(seed, Ordering::Relaxed);
        capped.mul_f64(0.5 + (seed % 1024) as f64 / 1024.0)
    }

    /// The shard's `SHOW STATS` rows (scope is added by the caller):
    /// shard-level counters plus one `endpoint.<i>.*` group per replica.
    pub fn stat_rows(&self) -> Vec<(String, i64)> {
        let mut rows = vec![
            ("alive".to_string(), self.is_alive() as i64),
            ("endpoints".to_string(), self.endpoints.len() as i64),
            ("queries".to_string(), self.queries.get() as i64),
            ("errors".to_string(), self.errors.get() as i64),
            ("failovers".to_string(), self.failovers.get() as i64),
            ("hedges_fired".to_string(), self.hedges_fired.get() as i64),
            ("hedges_won".to_string(), self.hedges_won.get() as i64),
            ("latency_us_total".to_string(), self.latency_us.get() as i64),
            ("bytes_in".to_string(), self.bytes_in.get() as i64),
            ("bytes_out".to_string(), self.bytes_out.get() as i64),
            (
                "pooled_connections".to_string(),
                self.endpoints.iter().map(Endpoint::pooled).sum::<usize>() as i64,
            ),
        ];
        for (i, endpoint) in self.endpoints.iter().enumerate() {
            rows.push((format!("endpoint.{i}.alive"), endpoint.is_alive() as i64));
            rows.push((
                format!("endpoint.{i}.pooled_connections"),
                endpoint.pooled() as i64,
            ));
        }
        rows
    }

    /// Appends this shard's Prometheus samples (`hermes_shard_*` labelled by
    /// shard name; per-endpoint gauges also labelled by endpoint address) —
    /// the coordinator registers one collector calling this for every shard
    /// at scrape time.
    pub fn collect_samples(&self, out: &mut Vec<Sample>) {
        let labels = || vec![("shard", self.spec.name.clone())];
        let counter = |name, help, v: u64| Sample {
            name,
            help,
            labels: labels(),
            value: SampleValue::Counter(v),
        };
        out.push(Sample {
            name: "hermes_shard_alive",
            help: "Last observed shard liveness (1 = at least one endpoint alive)",
            labels: labels(),
            value: SampleValue::Gauge(self.is_alive() as u64),
        });
        for endpoint in &self.endpoints {
            out.push(Sample {
                name: "hermes_shard_endpoint_alive",
                help: "Last observed endpoint liveness (1 = alive)",
                labels: vec![
                    ("shard", self.spec.name.clone()),
                    ("endpoint", endpoint.addr.clone()),
                ],
                value: SampleValue::Gauge(endpoint.is_alive() as u64),
            });
            out.push(Sample {
                name: "hermes_shard_endpoint_pooled_connections",
                help: "Idle pooled connections to the endpoint",
                labels: vec![
                    ("shard", self.spec.name.clone()),
                    ("endpoint", endpoint.addr.clone()),
                ],
                value: SampleValue::Gauge(endpoint.pooled() as u64),
            });
        }
        out.push(counter(
            "hermes_shard_queries_total",
            "Successful exchanges with the shard",
            self.queries.get(),
        ));
        out.push(counter(
            "hermes_shard_errors_total",
            "Failed exchanges with the shard (answered or broken)",
            self.errors.get(),
        ));
        out.push(counter(
            "hermes_shard_failovers_total",
            "Reads retried on another endpoint of the replica set",
            self.failovers.get(),
        ));
        out.push(counter(
            "hermes_shard_hedges_fired_total",
            "Hedged duplicate reads fired at a replica",
            self.hedges_fired.get(),
        ));
        out.push(counter(
            "hermes_shard_hedges_won_total",
            "Hedged duplicates that answered before the primary",
            self.hedges_won.get(),
        ));
        out.push(counter(
            "hermes_shard_latency_us_total",
            "Cumulative downstream exchange latency in microseconds",
            self.latency_us.get(),
        ));
        out.push(counter(
            "hermes_shard_bytes_in_total",
            "Bytes read from the shard",
            self.bytes_in.get(),
        ));
        out.push(counter(
            "hermes_shard_bytes_out_total",
            "Bytes written to the shard",
            self.bytes_out.get(),
        ));
        out.push(Sample {
            name: "hermes_shard_pooled_connections",
            help: "Idle pooled connections to the shard (all endpoints)",
            labels: labels(),
            value: SampleValue::Gauge(
                self.endpoints.iter().map(Endpoint::pooled).sum::<usize>() as u64
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ShardSpec {
        ShardSpec {
            name: "lonely".into(),
            addr: "127.0.0.1:1".into(), // reserved port: connections fail fast
            replicas: vec!["127.0.0.1:2".into()],
            start_ms: i64::MIN,
            end_ms: i64::MAX,
        }
    }

    fn opts() -> ConnectOptions {
        ConnectOptions {
            retries: 0,
            connect_timeout: std::time::Duration::from_millis(200),
            ..ConnectOptions::default()
        }
    }

    fn fast_policy() -> FailoverPolicy {
        FailoverPolicy {
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..FailoverPolicy::default()
        }
    }

    #[test]
    fn unreachable_shard_yields_a_named_error_and_goes_dead() {
        let shard = Shard::new(spec(), opts());
        let err = shard.with_conn(|c| c.query("SHOW THREADS;")).unwrap_err();
        match &err {
            CoordError::Shard { name, addr, .. } => {
                assert_eq!(name, "lonely");
                assert_eq!(addr, "127.0.0.1:1");
            }
            other => panic!("expected a named shard error, got {other:?}"),
        }
        assert!(err.to_string().starts_with("shard 'lonely' (127.0.0.1:1):"));
        assert!(!shard.is_alive());
        assert!(!shard.probe());
        let rows = shard.stat_rows();
        assert!(rows.contains(&("alive".to_string(), 0)));
        assert!(rows.contains(&("endpoints".to_string(), 2)));
        assert!(rows.iter().any(|(m, v)| m == "errors" && *v >= 2));
    }

    #[test]
    fn read_ladder_walks_every_endpoint_and_counts_failovers() {
        let shard = Arc::new(Shard::with_policy(spec(), opts(), fast_policy()));
        let err = shard
            .call(
                ReadCall::Pipeline(vec![Request::Query {
                    sql: "SHOW THREADS;".into(),
                }]),
                None,
            )
            .unwrap_err();
        // Both (unreachable) endpoints were tried; the error names the last.
        match err {
            CoordError::Shard { addr, .. } => assert_eq!(addr, "127.0.0.1:2"),
            other => panic!("expected a named shard error, got {other:?}"),
        }
        assert_eq!(shard.failovers(), 1);
        assert_eq!(shard.hedge_counts(), (0, 0));
        assert!(!shard.endpoints()[0].is_alive());
        assert!(!shard.endpoints()[1].is_alive());
    }

    #[test]
    fn backoff_is_jittered_and_bounded() {
        let shard = Shard::with_policy(spec(), opts(), FailoverPolicy::default());
        for attempt in 1..6 {
            let d = shard.jittered_backoff(attempt);
            assert!(d >= Duration::from_millis(5), "{d:?} too small");
            assert!(d <= Duration::from_millis(300), "{d:?} too large");
        }
        // Distinct draws: the xorshift state advances.
        let (a, b) = (shard.jittered_backoff(1), shard.jittered_backoff(1));
        assert!(a != b || shard.jittered_backoff(1) != b);
    }
}
