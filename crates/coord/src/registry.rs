//! Per-shard control-plane state: liveness, counters and a connection pool.
//!
//! Every downstream call goes through [`Shard::with_conn`], which checks a
//! pooled [`HermesClient`] out (dialing a fresh one when the pool is dry),
//! runs the exchange, and folds the outcome into the shard's counters:
//!
//! - a clean answer marks the shard alive and returns the connection to the
//!   pool;
//! - a *server-answered* error (unknown dataset, bad parameters, …) keeps
//!   the connection — the stream is still in sync — and surfaces the
//!   message **verbatim**, because it is exactly what a single-node engine
//!   would have said;
//! - an I/O or protocol failure drops the connection, marks the shard dead
//!   and surfaces a [`CoordError::Shard`] naming the shard, so a client
//!   always learns *which* node failed.

use crate::shardmap::ShardSpec;
use hermes_obs::{Counter, Sample, SampleValue};
use hermes_server::{ClientError, ConnectOptions, HermesClient};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Idle connections kept per shard; extras are dropped on check-in.
const POOL_KEEP: usize = 8;

/// A coordinator-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// An error whose text is exactly what a single-node engine would
    /// produce (shard-answered SQL/engine errors, or errors the coordinator
    /// mirrors from the executor's own validation).
    Data(String),
    /// A shard became unreachable or spoke garbage; names the culprit.
    Shard {
        /// The failing shard's name from the shard map.
        name: String,
        /// The failing shard's address.
        addr: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Data(m) => f.write_str(m),
            CoordError::Shard { name, addr, detail } => {
                write!(f, "shard '{name}' ({addr}): {detail}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// One shard's registry entry: its spec, liveness, cumulative counters and
/// pooled connections. All counters are lock-free `hermes-obs` counters —
/// `SHOW STATS` and the `/metrics` collector read them without stopping
/// traffic.
pub struct Shard {
    /// The shard's name, address and owned slice.
    pub spec: ShardSpec,
    opts: ConnectOptions,
    alive: AtomicBool,
    queries: Counter,
    errors: Counter,
    latency_us: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    idle: Mutex<Vec<HermesClient>>,
}

impl Shard {
    /// Creates the registry entry; no connection is attempted until the
    /// first [`Shard::with_conn`] (or [`Shard::probe`]).
    pub fn new(spec: ShardSpec, opts: ConnectOptions) -> Shard {
        Shard {
            spec,
            opts,
            alive: AtomicBool::new(false),
            queries: Counter::new(),
            errors: Counter::new(),
            latency_us: Counter::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The shard's owned `[start_ms, end_ms)` slice.
    pub fn slice(&self) -> (i64, i64) {
        (self.spec.start_ms, self.spec.end_ms)
    }

    /// Last observed liveness (updated by every exchange and by probes).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Health probe: one cheap round trip (`SHOW THREADS;`). Updates the
    /// liveness flag and returns it.
    pub fn probe(&self) -> bool {
        self.with_conn(|c| c.query("SHOW THREADS;").map(|_| ()))
            .is_ok()
    }

    fn named(&self, detail: String) -> CoordError {
        CoordError::Shard {
            name: self.spec.name.clone(),
            addr: self.spec.addr.clone(),
            detail,
        }
    }

    /// Runs `f` over a pooled connection to this shard, accounting the
    /// exchange (liveness, latency, bytes, query/error counts) on the way
    /// out. See the module docs for the error taxonomy.
    pub fn with_conn<T>(
        &self,
        f: impl FnOnce(&mut HermesClient) -> Result<T, ClientError>,
    ) -> Result<T, CoordError> {
        let pooled = self.idle.lock().unwrap().pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => match HermesClient::connect_with(self.spec.addr.as_str(), &self.opts) {
                Ok(conn) => conn,
                Err(e) => {
                    self.alive.store(false, Ordering::Relaxed);
                    self.errors.inc();
                    return Err(self.named(format!("connect failed: {e}")));
                }
            },
        };
        let (out0, in0) = (conn.bytes_out(), conn.bytes_in());
        let started = Instant::now();
        let result = f(&mut conn);
        self.latency_us.add(started.elapsed().as_micros() as u64);
        self.bytes_out.add(conn.bytes_out() - out0);
        self.bytes_in.add(conn.bytes_in() - in0);
        match result {
            Ok(value) => {
                self.queries.inc();
                self.alive.store(true, Ordering::Relaxed);
                self.check_in(conn);
                Ok(value)
            }
            Err(ClientError::Server { message, .. }) => {
                // The shard executed the request and said no: the stream is
                // in sync, the connection stays pooled, and the message is
                // relayed verbatim (it matches the single-node error text).
                self.errors.inc();
                self.check_in(conn);
                Err(CoordError::Data(message))
            }
            Err(e) => {
                self.errors.inc();
                self.alive.store(false, Ordering::Relaxed);
                drop(conn);
                Err(self.named(e.to_string()))
            }
        }
    }

    fn check_in(&self, conn: HermesClient) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < POOL_KEEP {
            idle.push(conn);
        }
    }

    /// The shard's `SHOW STATS` rows (scope is added by the caller).
    pub fn stat_rows(&self) -> Vec<(&'static str, i64)> {
        vec![
            ("alive", self.is_alive() as i64),
            ("queries", self.queries.get() as i64),
            ("errors", self.errors.get() as i64),
            ("latency_us_total", self.latency_us.get() as i64),
            ("bytes_in", self.bytes_in.get() as i64),
            ("bytes_out", self.bytes_out.get() as i64),
            ("pooled_connections", self.idle.lock().unwrap().len() as i64),
        ]
    }

    /// Appends this shard's Prometheus samples (`hermes_shard_*` labelled by
    /// shard name) — the coordinator registers one collector calling this
    /// for every shard at scrape time.
    pub fn collect_samples(&self, out: &mut Vec<Sample>) {
        let labels = || vec![("shard", self.spec.name.clone())];
        let counter = |name, help, v: u64| Sample {
            name,
            help,
            labels: labels(),
            value: SampleValue::Counter(v),
        };
        out.push(Sample {
            name: "hermes_shard_alive",
            help: "Last observed shard liveness (1 = alive)",
            labels: labels(),
            value: SampleValue::Gauge(self.is_alive() as u64),
        });
        out.push(counter(
            "hermes_shard_queries_total",
            "Successful exchanges with the shard",
            self.queries.get(),
        ));
        out.push(counter(
            "hermes_shard_errors_total",
            "Failed exchanges with the shard (answered or broken)",
            self.errors.get(),
        ));
        out.push(counter(
            "hermes_shard_latency_us_total",
            "Cumulative downstream exchange latency in microseconds",
            self.latency_us.get(),
        ));
        out.push(counter(
            "hermes_shard_bytes_in_total",
            "Bytes read from the shard",
            self.bytes_in.get(),
        ));
        out.push(counter(
            "hermes_shard_bytes_out_total",
            "Bytes written to the shard",
            self.bytes_out.get(),
        ));
        out.push(Sample {
            name: "hermes_shard_pooled_connections",
            help: "Idle pooled connections to the shard",
            labels: labels(),
            value: SampleValue::Gauge(self.idle.lock().unwrap().len() as u64),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ShardSpec {
        ShardSpec {
            name: "lonely".into(),
            addr: "127.0.0.1:1".into(), // reserved port: connections fail fast
            start_ms: i64::MIN,
            end_ms: i64::MAX,
        }
    }

    fn opts() -> ConnectOptions {
        ConnectOptions {
            retries: 0,
            connect_timeout: std::time::Duration::from_millis(200),
            ..ConnectOptions::default()
        }
    }

    #[test]
    fn unreachable_shard_yields_a_named_error_and_goes_dead() {
        let shard = Shard::new(spec(), opts());
        let err = shard.with_conn(|c| c.query("SHOW THREADS;")).unwrap_err();
        match &err {
            CoordError::Shard { name, addr, .. } => {
                assert_eq!(name, "lonely");
                assert_eq!(addr, "127.0.0.1:1");
            }
            other => panic!("expected a named shard error, got {other:?}"),
        }
        assert!(err.to_string().starts_with("shard 'lonely' (127.0.0.1:1):"));
        assert!(!shard.is_alive());
        assert!(!shard.probe());
        let rows = shard.stat_rows();
        assert!(rows.contains(&("alive", 0)));
        assert!(rows.iter().any(|(m, v)| *m == "errors" && *v >= 2));
    }
}
