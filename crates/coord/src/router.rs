//! Statement routing: verbatim forwarding, parallel fan-out, bit-exact
//! reassembly.
//!
//! The routing rules (proof sketches in `docs/SHARDING.md`):
//!
//! - **Interior fast path** — a window lying *strictly* inside one shard's
//!   slice is forwarded verbatim: that shard owns every sub-chunk the window
//!   closed-intersects, so its local answer already *is* the single-node
//!   answer. Boundary-touching windows take the fan-out path, because the
//!   neighbouring shard's border sub-chunk also intersects them.
//! - **QUT / HISTOGRAM fan-out** — every shard computes the clusters of its
//!   *owned* sub-chunks against the full (un-clipped) window; concatenating
//!   the partials in slice order and running the same border merge a
//!   single node runs yields byte-identical clusters
//!   ([`hermes_retratree::merge_qut_partials`]).
//! - **RANGE** — owned counts sum to the single-node count.
//! - **S2T** — not decomposable (voting is global), so the raw trajectories
//!   are gathered (each shard contributes those *starting* in its slice — a
//!   disjoint cover) and the full pipeline runs on the coordinator.
//! - **INGEST** — each trajectory goes to every shard whose slice its
//!   lifespan closed-intersects, so border sub-chunks see exactly the same
//!   segments everywhere; `INFO` sums de-duplicate via ownership.
//! - **Writes** (`CREATE`/`DROP`/`BUILD INDEX`/`CHECKPOINT`/`SET`)
//!   broadcast to **every endpoint of every replica set** with all-or-error
//!   semantics — the write fan-out invariant that keeps replicas
//!   byte-identical and makes read failover sound.
//!
//! Reads run through [`Shard::call`]: a pipelined exchange with the replica
//! set, failing over (and optionally hedging) across endpoints. Shard-
//! answered errors are relayed **verbatim** (they match single-node texts);
//! exhausted replica sets surface as `shard '<name>' (<addr>): …` so the
//! failing node is always named.

use crate::registry::{CoordError, FailoverPolicy, ReadCall, Shard};
use crate::shardmap::ShardSpec;
use hermes_core::{DatasetInfo, EngineError};
use hermes_exec::{ExecPolicy, Executor};
use hermes_obs::QueryTrace;
use hermes_retratree::{merge_qut_partials, QutParams, QutPartial, QutStats};
use hermes_s2t::{run_s2t_naive_with, run_s2t_with, S2TParams};
use hermes_server::protocol::{PartialInfo, Request, Response};
use hermes_server::{ConnectOptions, ServerMetrics};
use hermes_sql::{
    clusters_frame, histogram_frame, info_frame, push_stat, qut_stats_frame, range_frame,
    s2t_stats_frame, sort_stats_rows, stats_frame, trace_frame, traces_frame, CommandStatus,
    CommandTag, Frame, Scalar, SqlError, Statement, Value, ValueType,
};
use hermes_trajectory::{Duration, TimeInterval, Timestamp, Trajectory};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How a statement is re-sent to a shard when it is forwarded whole instead
/// of being decomposed: the original SQL text (plus bound parameters when it
/// arrived through the prepared path). Forwarding the client's own bytes —
/// never re-rendering a parsed statement — is what keeps forwarded answers
/// trivially byte-identical.
pub enum ForwardSpec<'a> {
    /// A plain `Query` request: forward the SQL text as-is.
    Query(&'a str),
    /// An `ExecutePrepared` request: prepare the original text downstream
    /// (the shard de-duplicates re-preparations) and execute with the same
    /// parameters.
    Prepared {
        /// The original placeholder SQL.
        sql: &'a str,
        /// The bound parameter values.
        params: &'a [Value],
    },
}

/// The query-routing brain of `hermes-coord`: a static shard registry plus
/// an executor pool for parallel fan-out and local merge work.
pub struct Coordinator {
    shards: Vec<Arc<Shard>>,
    exec: Mutex<Arc<Executor>>,
}

impl Coordinator {
    /// Builds a coordinator over a validated shard map (see
    /// [`crate::validate_shard_map`]) with the default [`FailoverPolicy`];
    /// `specs` must already be sorted by slice start, which validation
    /// guarantees.
    pub fn new(specs: Vec<ShardSpec>, opts: ConnectOptions, policy: ExecPolicy) -> Coordinator {
        Coordinator::with_failover(specs, opts, policy, FailoverPolicy::default())
    }

    /// Builds a coordinator with an explicit [`FailoverPolicy`] (hedging
    /// window, retry backoff) applied to every shard's read path.
    pub fn with_failover(
        specs: Vec<ShardSpec>,
        opts: ConnectOptions,
        policy: ExecPolicy,
        failover: FailoverPolicy,
    ) -> Coordinator {
        Coordinator {
            shards: specs
                .into_iter()
                .map(|spec| Arc::new(Shard::with_policy(spec, opts.clone(), failover.clone())))
                .collect(),
            exec: Mutex::new(Arc::new(Executor::new(policy))),
        }
    }

    /// The shard registry, in slice order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    fn exec(&self) -> Arc<Executor> {
        Arc::clone(&self.exec.lock().unwrap())
    }

    /// Every `(shard_idx, endpoint_idx)` pair — the write fan-out targets.
    fn endpoint_pairs(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(s, shard)| (0..shard.endpoints().len()).map(move |e| (s, e)))
            .collect()
    }

    /// Probes every endpoint of every shard in parallel (one
    /// `SHOW THREADS;` round trip each) and returns `(name, addr, alive)`
    /// per endpoint, in slice order, primaries first within a shard.
    pub fn probe_all(&self) -> Vec<(String, String, bool)> {
        let pairs = self.endpoint_pairs();
        let exec = self.exec();
        exec.map(&pairs, |_, &(s, e)| {
            let shard = &self.shards[s];
            let alive = shard
                .on_endpoint(e, |c| c.query("SHOW THREADS;").map(|_| ()))
                .is_ok();
            (
                shard.spec.name.clone(),
                shard.endpoints()[e].addr.clone(),
                alive,
            )
        })
    }

    /// Executes one bound statement, returning the wire response to relay.
    /// `fwd` carries the client's original bytes for the forwarding paths;
    /// `metrics` feeds the `coordinator` scope of `SHOW STATS`. When `trace`
    /// is set, fan-out paths record one child span per contacted shard (and
    /// propagate the context downstream) plus a `merge` span for the local
    /// reassembly; interior-forwarded and broadcast statements stay span-free
    /// — their cost is the root span itself.
    pub fn execute(
        &self,
        stmt: &Statement,
        fwd: &ForwardSpec<'_>,
        metrics: &ServerMetrics,
        trace: Option<&QueryTrace>,
    ) -> Response {
        match self.route(stmt, fwd, metrics, trace) {
            Ok(response) => response,
            Err(e) => Response::error(e.to_string()),
        }
    }

    /// Bulk-load entry point ([`Request::Ingest`]): routes each trajectory
    /// to every shard whose slice its lifespan closed-intersects, and within
    /// a shard to **every endpoint** of its replica set, all-or-error — a
    /// replica that missed a write would stop answering bit-identically.
    /// Every shard receives its (possibly empty) share so the dataset exists
    /// everywhere — shards auto-create datasets on first ingest, and later
    /// broadcasts (`BUILD INDEX`) assume the name resolves on all of them.
    pub fn ingest(&self, dataset: &str, trajectories: Vec<Trajectory>) -> Response {
        let shares: Vec<Vec<Trajectory>> = self
            .shards
            .iter()
            .map(|shard| {
                let (a, b) = shard.slice();
                trajectories
                    .iter()
                    .filter(|t| {
                        let l = t.lifespan();
                        l.end.millis() >= a && (l.start.millis() < b || b == i64::MAX)
                    })
                    .cloned()
                    .collect()
            })
            .collect();
        let pairs = self.endpoint_pairs();
        let exec = self.exec();
        let results = exec.map(&pairs, |_, &(s, e)| {
            self.shards[s].on_endpoint(e, |c| c.ingest(dataset, &shares[s]).map(|_| ()))
        });
        for result in results {
            if let Err(e) = result {
                return Response::error(e.to_string());
            }
        }
        Response::Command(CommandStatus {
            tag: CommandTag::Ingest,
            // The client loaded n trajectories, exactly as on a single node;
            // cross-border duplication is a sharding detail, not a result.
            affected: trajectories.len() as u64,
        })
    }

    fn route(
        &self,
        stmt: &Statement,
        fwd: &ForwardSpec<'_>,
        metrics: &ServerMetrics,
        trace: Option<&QueryTrace>,
    ) -> Result<Response, CoordError> {
        let f64_of = |s: &Scalar| s.as_f64().map_err(|m| sql_err(SqlError::Bind(m)));
        let i64_of = |s: &Scalar| s.as_i64().map_err(|m| sql_err(SqlError::Bind(m)));
        match stmt {
            Statement::CreateDataset { .. } | Statement::DropDataset { .. } => {
                let responses = self.broadcast(fwd, &[])?;
                Ok(responses
                    .into_iter()
                    .flatten()
                    .next()
                    .expect("a validated map has at least one shard"))
            }
            Statement::Checkpoint => {
                let responses = self.broadcast(fwd, &[])?;
                Ok(Response::Command(CommandStatus {
                    tag: CommandTag::Checkpoint,
                    affected: sum_affected(&responses),
                }))
            }
            Statement::BuildIndex {
                name, chunk_hours, ..
            } => {
                let chunk_ms = (f64_of(chunk_hours)? * 3_600_000.0) as i64;
                if chunk_ms > 0 {
                    // Interior slice boundaries must sit on chunk boundaries
                    // (chunks are epoch-aligned), otherwise one sub-chunk
                    // would straddle two owners and sharded answers could
                    // not be bit-identical. Reject up front with the rule.
                    for shard in &self.shards {
                        let start = shard.spec.start_ms;
                        if start != i64::MIN && start.rem_euclid(chunk_ms) != 0 {
                            return Err(CoordError::Data(format!(
                                "shard '{}' starts at {start} ms, which is not a multiple of \
                                 the {chunk_ms} ms chunk duration; align shard boundaries to \
                                 the chunk grid (see docs/SHARDING.md)",
                                shard.spec.name
                            )));
                        }
                    }
                }
                // A shard whose slice holds no data of this dataset reports
                // "holds no trajectories"; as long as one shard indexed, the
                // deployment is indexed and the empty shard simply owns
                // nothing.
                let empty = [EngineError::EmptyDataset(name.clone()).to_string()];
                let responses = self.broadcast(fwd, &empty)?;
                Ok(Response::Command(CommandStatus {
                    tag: CommandTag::BuildIndex,
                    affected: sum_affected(&responses),
                }))
            }
            Statement::SetThreads { threads } => {
                let n = i64_of(threads)?;
                let count = usize::try_from(n).map_err(|_| {
                    sql_err(SqlError::Engine(EngineError::InvalidParameters(format!(
                        "SET threads expects a positive thread count, got {n}"
                    ))))
                })?;
                let policy = ExecPolicy::new(count).map_err(|m| {
                    sql_err(SqlError::Engine(EngineError::InvalidParameters(format!(
                        "SET {m}"
                    ))))
                })?;
                // Scalars are already bound, so the canonical text is exact.
                let sql = format!("SET threads = {count};");
                self.broadcast(&ForwardSpec::Query(&sql), &[])?;
                *self.exec.lock().unwrap() = Arc::new(Executor::new(policy));
                Ok(Response::Command(CommandStatus {
                    tag: CommandTag::Set,
                    affected: count as u64,
                }))
            }
            Statement::ShowThreads => {
                let mut frame = Frame::with_columns(&[("threads", ValueType::Int)]);
                push(&mut frame, vec![Value::Int(self.exec().threads() as i64)]);
                Ok(rows(frame))
            }
            Statement::ShowDatasets => {
                // A read: one (failover-capable) forward per shard suffices —
                // replicas hold the same dataset names by the write
                // invariant.
                let exec = self.exec();
                let responses = exec
                    .map(&self.shards, |_, shard| self.forward(shard, fwd))
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?;
                let mut names = std::collections::BTreeSet::new();
                for response in responses {
                    match response {
                        Response::Rows { frame, .. } => {
                            for row in frame.rows() {
                                if let Some(Value::Text(name)) = row.first() {
                                    names.insert(name.clone());
                                }
                            }
                        }
                        Response::Error { message, .. } => return Err(CoordError::Data(message)),
                        _ => {}
                    }
                }
                let mut frame = Frame::with_columns(&[("dataset", ValueType::Text)]);
                for name in names {
                    push(&mut frame, vec![Value::Text(name)]);
                }
                Ok(rows(frame))
            }
            Statement::ShowStats => Ok(rows(self.stats(fwd, metrics))),
            // Trace statements are answered at the serving edge (the span
            // store lives there, see `crate::server`); these arms only keep
            // the match exhaustive for library callers, answering with the
            // empty schema.
            Statement::ShowTraces => Ok(rows(traces_frame())),
            Statement::ShowTrace { .. } => Ok(rows(trace_frame())),
            Statement::Info { name } => {
                let partials = self.fan_out(name, |shard| {
                    let (owned_start_ms, owned_end_ms) = shard.slice();
                    traced_call(
                        trace,
                        shard,
                        Request::InfoPartial {
                            dataset: name.clone(),
                            owned_start_ms,
                            owned_end_ms,
                        },
                        extract_info,
                        |_| Vec::new(),
                    )
                })?;
                let mut info = DatasetInfo {
                    name: name.clone(),
                    num_trajectories: 0,
                    num_points: 0,
                    lifespan: None,
                    indexed: false,
                    num_cluster_entries: 0,
                };
                for partial in partials.into_iter().flatten() {
                    info.num_trajectories += partial.trajectories as usize;
                    info.num_points += partial.points as usize;
                    info.indexed |= partial.indexed;
                    info.num_cluster_entries += partial.cluster_entries as usize;
                    if let Some((start, end)) = partial.lifespan {
                        let (lo, hi) = match info.lifespan {
                            Some(l) => (l.start.millis().min(start), l.end.millis().max(end)),
                            None => (start, end),
                        };
                        info.lifespan = Some(TimeInterval::new(Timestamp(lo), Timestamp(hi)));
                    }
                }
                Ok(rows(info_frame(&info)))
            }
            Statement::S2T {
                name,
                sigma,
                tau,
                delta,
                min_duration_ms,
                epsilon,
                naive,
            } => {
                let params = S2TParams::builder()
                    .sigma(f64_of(sigma)?)
                    .tau(f64_of(tau)?)
                    .delta(f64_of(delta)?)
                    .min_duration_ms(i64_of(min_duration_ms)?)
                    .epsilon(f64_of(epsilon)?)
                    .build()
                    .map_err(|m| sql_err(SqlError::Engine(EngineError::InvalidParameters(m))))?;
                // Each shard contributes the trajectories *starting* in its
                // slice: a disjoint cover of the dataset even though border
                // trajectories are stored on several shards.
                let shares = self.fan_out(name, |shard| {
                    let (owned_start_ms, owned_end_ms) = shard.slice();
                    traced_call(
                        trace,
                        shard,
                        Request::GatherTrajectories {
                            dataset: name.clone(),
                            owned_start_ms,
                            owned_end_ms,
                        },
                        extract_trajectories,
                        |trajectories| vec![("trajectories", trajectories.len().to_string())],
                    )
                })?;
                let mut trajectories: Vec<Trajectory> =
                    shares.into_iter().flatten().flatten().collect();
                if trajectories.is_empty() {
                    return Err(sql_err(SqlError::Engine(EngineError::EmptyDataset(
                        name.clone(),
                    ))));
                }
                // Single-node S2T runs over trajectories in insertion order;
                // with the documented ascending-id ingest convention, the id
                // sort reproduces it (docs/SHARDING.md).
                trajectories.sort_by_key(|t| t.id);
                let exec = self.exec();
                let outcome = if *naive {
                    run_s2t_naive_with(&trajectories, &params, &exec)
                } else {
                    run_s2t_with(&trajectories, &params, &exec)
                };
                Ok(Response::Rows {
                    frame: clusters_frame(&outcome.result),
                    stats: Some(s2t_stats_frame(&outcome.result, outcome.timings.total_ms())),
                })
            }
            Statement::Qut {
                name,
                wi,
                we,
                tau,
                delta,
                min_duration_ms,
                merge_distance,
                merge_gap_ms,
                rebuild,
            } => {
                let (wi, we) = (i64_of(wi)?, i64_of(we)?);
                if *rebuild {
                    // The rebuild baseline re-clusters the window's raw
                    // sub-trajectories from scratch — a global computation
                    // with no owned decomposition. Serve it when one shard
                    // holds the whole window, refuse it otherwise.
                    if let Some(shard) = self.interior_shard(wi, we) {
                        return self.forward(&shard, fwd);
                    }
                    return Err(CoordError::Data(format!(
                        "QUT_REBUILD re-clusters the window's raw data on one node and \
                         window [{wi}, {we}] spans shard boundaries; narrow the window \
                         to a single shard's slice or use QUT"
                    )));
                }
                let merge = QutParams {
                    s2t: S2TParams::default(),
                    merge_distance: f64_of(merge_distance)?,
                    merge_gap: Duration::from_millis(i64_of(merge_gap_ms)?),
                };
                merge
                    .validate()
                    .map_err(|m| sql_err(SqlError::Engine(EngineError::InvalidParameters(m))))?;
                if let Some(shard) = self.interior_shard(wi, we) {
                    let response = self.forward(&shard, fwd)?;
                    if !is_unpopulated_error(&response, name) {
                        return Ok(response);
                    }
                    // The owning shard holds nothing of this dataset; the
                    // fan-out below reconstructs the deployment-wide truth.
                }
                let started = Instant::now();
                let overrides = Some((f64_of(tau)?, f64_of(delta)?, i64_of(min_duration_ms)?));
                let partials = self.fan_out(name, |shard| {
                    let (owned_start_ms, owned_end_ms) = shard.slice();
                    traced_call(
                        trace,
                        shard,
                        Request::QutPartial {
                            dataset: name.clone(),
                            owned_start_ms,
                            owned_end_ms,
                            wi,
                            we,
                            overrides,
                        },
                        extract_qut,
                        |partial| phase_attrs(&partial.stats),
                    )
                })?;
                let partials: Vec<QutPartial> = partials
                    .into_iter()
                    .map(Option::unwrap_or_default)
                    .collect();
                let merge_started = Instant::now();
                let (result, mut stats) = merge_qut_partials(partials, &merge);
                record_merge_span(trace, merge_started, stats.merges);
                stats.elapsed_ms = started.elapsed().as_secs_f64() * 1_000.0;
                Ok(Response::Rows {
                    frame: clusters_frame(&result),
                    stats: Some(qut_stats_frame(&result, &stats)),
                })
            }
            Statement::Range { name, wi, we } => {
                let (wi, we) = (i64_of(wi)?, i64_of(we)?);
                if let Some(shard) = self.interior_shard(wi, we) {
                    let response = self.forward(&shard, fwd)?;
                    if !is_unpopulated_error(&response, name) {
                        return Ok(response);
                    }
                }
                let counts = self.fan_out(name, |shard| {
                    let (owned_start_ms, owned_end_ms) = shard.slice();
                    traced_call(
                        trace,
                        shard,
                        Request::RangePartial {
                            dataset: name.clone(),
                            owned_start_ms,
                            owned_end_ms,
                            wi,
                            we,
                        },
                        extract_count,
                        |count| vec![("count", count.to_string())],
                    )
                })?;
                let total: u64 = counts.into_iter().flatten().sum();
                Ok(rows(range_frame(total as usize)))
            }
            Statement::Histogram {
                name,
                wi,
                we,
                bucket_ms,
            } => {
                let bucket_ms = i64_of(bucket_ms)?;
                if bucket_ms <= 0 {
                    return Err(sql_err(SqlError::Engine(EngineError::InvalidParameters(
                        "histogram bucket width must be positive".into(),
                    ))));
                }
                let (wi, we) = (i64_of(wi)?, i64_of(we)?);
                if let Some(shard) = self.interior_shard(wi, we) {
                    let response = self.forward(&shard, fwd)?;
                    if !is_unpopulated_error(&response, name) {
                        return Ok(response);
                    }
                }
                // No overrides: the histogram clusters with the tree's own
                // indexing-time S2T parameters, exactly like the executor.
                let partials = self.fan_out(name, |shard| {
                    let (owned_start_ms, owned_end_ms) = shard.slice();
                    traced_call(
                        trace,
                        shard,
                        Request::QutPartial {
                            dataset: name.clone(),
                            owned_start_ms,
                            owned_end_ms,
                            wi,
                            we,
                            overrides: None,
                        },
                        extract_qut,
                        |partial| phase_attrs(&partial.stats),
                    )
                })?;
                let partials: Vec<QutPartial> = partials
                    .into_iter()
                    .map(Option::unwrap_or_default)
                    .collect();
                let merge_started = Instant::now();
                let (result, merge_stats) = merge_qut_partials(partials, &QutParams::default());
                record_merge_span(trace, merge_started, merge_stats.merges);
                Ok(rows(histogram_frame(&result, bucket_ms)))
            }
        }
    }

    /// The `SHOW STATS` frame: coordinator scope first, then the registry's
    /// per-shard control-plane counters, then every reachable shard's own
    /// stats re-scoped as `<shard>.<scope>`. A dead shard contributes only
    /// its registry rows (`alive = 0`) — observability must not require the
    /// whole fleet to be up.
    fn stats(&self, fwd: &ForwardSpec<'_>, metrics: &ServerMetrics) -> Frame {
        let exec = self.exec();
        let answers = exec.map(&self.shards, |_, shard| self.forward(shard, fwd).ok());
        let mut frame = stats_frame();
        for (metric, value) in metrics.rows() {
            push_stat(&mut frame, "coordinator", &metric, value);
        }
        for shard in &self.shards {
            let scope = format!("coordinator.{}", shard.spec.name);
            for (metric, value) in shard.stat_rows() {
                push_stat(&mut frame, &scope, &metric, value);
            }
        }
        for (shard, answer) in self.shards.iter().zip(answers) {
            if let Some(Response::Rows {
                frame: shard_frame, ..
            }) = answer
            {
                for row in shard_frame.rows() {
                    if let [Value::Text(scope), Value::Text(metric), Value::Int(value)] =
                        row.as_slice()
                    {
                        push_stat(
                            &mut frame,
                            &format!("{}.{scope}", shard.spec.name),
                            metric,
                            *value,
                        );
                    }
                }
            }
        }
        // Same deterministic (scope, metric) ordering contract as the
        // single-node server (docs/OBSERVABILITY.md).
        sort_stats_rows(&mut frame);
        frame
    }

    /// The shard whose slice *strictly* contains the (clamped) window, if
    /// any. Strictness matters: a window touching a slice boundary also
    /// closed-intersects the neighbour's border sub-chunk, so only strictly
    /// interior windows may skip the fan-out. With one shard everything is
    /// interior by construction.
    fn interior_shard(&self, wi: i64, we: i64) -> Option<Arc<Shard>> {
        if self.shards.len() == 1 {
            return Some(Arc::clone(&self.shards[0]));
        }
        let (a, b) = (wi, we.max(wi));
        self.shards
            .iter()
            .find(|s| a > s.spec.start_ms && b < s.spec.end_ms)
            .cloned()
    }

    /// Re-sends the client's original statement to one shard — the **read**
    /// forward: [`Shard::call`] retries the exchange across the replica set,
    /// so a dead primary degrades to a replica instead of an error. The
    /// shard's response is returned verbatim (including shard-answered
    /// errors — they carry single-node texts).
    fn forward(&self, shard: &Arc<Shard>, fwd: &ForwardSpec<'_>) -> Result<Response, CoordError> {
        let call = match fwd {
            ForwardSpec::Query(sql) => ReadCall::Pipeline(vec![Request::Query {
                sql: (*sql).to_string(),
            }]),
            ForwardSpec::Prepared { sql, params } => ReadCall::Prepared {
                sql: (*sql).to_string(),
                params: params.to_vec(),
            },
        };
        let mut responses = shard.call(call, None)?;
        responses.pop().ok_or_else(|| CoordError::Shard {
            name: shard.spec.name.clone(),
            addr: shard.spec.addr.clone(),
            detail: "empty pipeline answer".into(),
        })
    }

    /// Forwards `fwd` to **every endpoint of every shard** in parallel,
    /// all-or-error — the **write** path. No failover: a write that skipped
    /// a replica would leave the set divergent, so any endpoint failure
    /// fails the statement. A shard-answered error whose message is listed
    /// in `tolerated` makes the shard contribute `None` instead of failing
    /// the broadcast — unless *every* shard says it, in which case it is the
    /// deployment-wide truth and is relayed. The returned vector holds the
    /// **primary's** response per shard (one response per shard, not per
    /// endpoint, so affected-row sums match a single node's).
    fn broadcast(
        &self,
        fwd: &ForwardSpec<'_>,
        tolerated: &[String],
    ) -> Result<Vec<Option<Response>>, CoordError> {
        let pairs = self.endpoint_pairs();
        let exec = self.exec();
        let results = exec.map(&pairs, |_, &(s, e)| self.forward_on(s, e, fwd));
        let mut out: Vec<Option<Response>> = (0..self.shards.len()).map(|_| None).collect();
        let mut first_tolerated = None;
        for (&(s, e), result) in pairs.iter().zip(results) {
            match result {
                Ok(Response::Error { message, .. }) | Err(CoordError::Data(message))
                    if tolerated.contains(&message) =>
                {
                    first_tolerated.get_or_insert(message);
                }
                Ok(Response::Error { message, .. }) => return Err(CoordError::Data(message)),
                Ok(response) => {
                    if e == 0 {
                        out[s] = Some(response);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if out.iter().all(Option::is_none) {
            return Err(CoordError::Data(
                first_tolerated.expect("a validated map has at least one shard"),
            ));
        }
        Ok(out)
    }

    /// One verbatim statement exchange with one specific endpoint (the
    /// write-path unit; no failover).
    fn forward_on(
        &self,
        shard_idx: usize,
        endpoint_idx: usize,
        fwd: &ForwardSpec<'_>,
    ) -> Result<Response, CoordError> {
        self.shards[shard_idx].on_endpoint(endpoint_idx, |c| match fwd {
            ForwardSpec::Query(sql) => c.exchange(&Request::Query {
                sql: (*sql).to_string(),
            }),
            ForwardSpec::Prepared { sql, params } => {
                match c.exchange(&Request::Prepare {
                    sql: (*sql).to_string(),
                })? {
                    Response::Prepared { handle } => c.exchange(&Request::ExecutePrepared {
                        handle,
                        params: params.to_vec(),
                    }),
                    error @ Response::Error { .. } => Ok(error),
                    other => Err(hermes_server::ClientError::Protocol(format!(
                        "expected a Prepared response, got {other:?}"
                    ))),
                }
            }
        })
    }

    /// Runs one typed shard call per shard in parallel (slice order is
    /// preserved — the merge depends on it). "Holds no trajectories" and
    /// "has no ReTraTree index" answers from *individual* shards become
    /// `None` — an empty slice is a sharding artifact, not an error — but if
    /// every shard reports it, it is the dataset's real state and the error
    /// is relayed with its single-node text.
    fn fan_out<T: Send>(
        &self,
        dataset: &str,
        call: impl Fn(&Arc<Shard>) -> Result<T, CoordError> + Sync,
    ) -> Result<Vec<Option<T>>, CoordError> {
        let tolerated = [
            EngineError::EmptyDataset(dataset.to_string()).to_string(),
            EngineError::NotIndexed(dataset.to_string()).to_string(),
        ];
        let exec = self.exec();
        let results = exec.map(&self.shards, |_, shard| call(shard));
        let mut out = Vec::with_capacity(results.len());
        let mut first_tolerated = None;
        for result in results {
            match result {
                Ok(value) => out.push(Some(value)),
                Err(CoordError::Data(message)) if tolerated.contains(&message) => {
                    first_tolerated.get_or_insert(message);
                    out.push(None);
                }
                Err(e) => return Err(e),
            }
        }
        if out.iter().all(Option::is_none) {
            return Err(CoordError::Data(
                first_tolerated.expect("a validated map has at least one shard"),
            ));
        }
        Ok(out)
    }
}

/// Runs one downstream read with a child span around it: allocates the span,
/// propagates its [`TraceContext`](hermes_obs::TraceContext) through
/// [`Shard::call`] so the shard's own partial span parents under it, and
/// records `shard:<name>` with the call's outcome. With no active trace this
/// is exactly the bare call. The request travels as a one-element pipeline —
/// the failover/hedging machinery replays it verbatim on other endpoints as
/// needed.
fn traced_call<T>(
    trace: Option<&QueryTrace>,
    shard: &Arc<Shard>,
    request: Request,
    extract: impl FnOnce(&Shard, Response) -> Result<T, CoordError>,
    attrs: impl FnOnce(&T) -> Vec<(&'static str, String)>,
) -> Result<T, CoordError> {
    let run = |ctx| {
        let mut responses = shard.call(ReadCall::Pipeline(vec![request]), ctx)?;
        let response = responses.pop().ok_or_else(|| CoordError::Shard {
            name: shard.spec.name.clone(),
            addr: shard.spec.addr.clone(),
            detail: "empty pipeline answer".into(),
        })?;
        extract(shard, response)
    };
    let Some(trace) = trace else {
        return run(None);
    };
    let (span_id, ctx) = trace.child_ctx();
    let started = Instant::now();
    let result = run(Some(ctx));
    let span_attrs = match &result {
        Ok(value) => attrs(value),
        Err(e) => vec![("error", e.to_string())],
    };
    trace.record_child(
        span_id,
        format!("shard:{}", shard.spec.name),
        started,
        started.elapsed(),
        span_attrs,
    );
    result
}

/// Typed extraction of a shard's answer frame, with shard-answered errors
/// relayed verbatim and unexpected frames named after the shard.
fn extract_qut(shard: &Shard, response: Response) -> Result<QutPartial, CoordError> {
    match response {
        Response::QutPartial(partial) => Ok(partial),
        other => extract_mismatch(shard, "QutPartial", other),
    }
}

fn extract_count(shard: &Shard, response: Response) -> Result<u64, CoordError> {
    match response {
        Response::Count(n) => Ok(n),
        other => extract_mismatch(shard, "Count", other),
    }
}

fn extract_trajectories(shard: &Shard, response: Response) -> Result<Vec<Trajectory>, CoordError> {
    match response {
        Response::Trajectories(trajectories) => Ok(trajectories),
        other => extract_mismatch(shard, "Trajectories", other),
    }
}

fn extract_info(shard: &Shard, response: Response) -> Result<PartialInfo, CoordError> {
    match response {
        Response::InfoPartial(info) => Ok(info),
        other => extract_mismatch(shard, "InfoPartial", other),
    }
}

fn extract_mismatch<T>(shard: &Shard, wanted: &str, got: Response) -> Result<T, CoordError> {
    match got {
        Response::Error { message, .. } => Err(CoordError::Data(message)),
        other => Err(CoordError::Shard {
            name: shard.spec.name.clone(),
            addr: shard.spec.addr.clone(),
            detail: format!("expected a {wanted} response, got {other:?}"),
        }),
    }
}

/// Span attributes carrying a shard's S2T phase work and voting-kernel
/// pruning counters for its partial.
fn phase_attrs(stats: &QutStats) -> Vec<(&'static str, String)> {
    let t = &stats.phases;
    vec![
        ("index_build_ms", format!("{:.3}", t.index_build_ms)),
        ("voting_ms", format!("{:.3}", t.voting_ms)),
        ("segmentation_ms", format!("{:.3}", t.segmentation_ms)),
        ("sampling_ms", format!("{:.3}", t.sampling_ms)),
        ("clustering_ms", format!("{:.3}", t.clustering_ms)),
        ("kernel_evaluated", stats.kernel.evaluated.to_string()),
        ("kernel_pruned", stats.kernel.pruned.to_string()),
    ]
}

/// Records the local border-merge as a child span of the root.
fn record_merge_span(trace: Option<&QueryTrace>, started: Instant, merges: usize) {
    if let Some(trace) = trace {
        let (span_id, _) = trace.child_ctx();
        trace.record_child(
            span_id,
            "merge".to_string(),
            started,
            started.elapsed(),
            vec![("merges", merges.to_string())],
        );
    }
}

/// True when a forwarded response is that shard's way of saying "I hold
/// nothing of this dataset" — the interior fast path then falls back to the
/// fan-out, which reconstructs the deployment-wide answer (or relays the
/// error if the dataset is genuinely empty/unindexed everywhere).
fn is_unpopulated_error(response: &Response, dataset: &str) -> bool {
    match response {
        Response::Error { message, .. } => {
            *message == EngineError::EmptyDataset(dataset.to_string()).to_string()
                || *message == EngineError::NotIndexed(dataset.to_string()).to_string()
        }
        _ => false,
    }
}

fn sql_err(e: SqlError) -> CoordError {
    CoordError::Data(e.to_string())
}

fn sum_affected(responses: &[Option<Response>]) -> u64 {
    responses
        .iter()
        .flatten()
        .map(|r| match r {
            Response::Command(status) => status.affected,
            _ => 0,
        })
        .sum()
}

fn rows(frame: Frame) -> Response {
    Response::Rows { frame, stats: None }
}

fn push(frame: &mut Frame, row: Vec<Value>) {
    frame
        .push_row(row)
        .expect("coordinator rows match their frame schema");
}
