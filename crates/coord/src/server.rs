//! The coordinator's upstream listener: the same wire protocol
//! `hermes-serve` speaks, so `hermes-cli --connect` (and any
//! [`HermesClient`](hermes_server::HermesClient)) works against a sharded
//! deployment unchanged.
//!
//! The loop mirrors `hermes-server`'s thread-per-connection server, with the
//! engine swapped for a [`Coordinator`]: statements are parsed (and, for the
//! prepared path, bound) locally, then routed; the original SQL text rides
//! along so forwarded statements hit the shards byte-for-byte as the client
//! wrote them.

use crate::router::{Coordinator, ForwardSpec};
use hermes_server::protocol::{
    read_handshake, read_request, write_handshake, write_response, Request, Response,
};
use hermes_server::{ServerConfig, ServerMetrics};
use hermes_sql::{parse, Statement};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// A bound-but-not-yet-running coordinator server.
pub struct CoordServer {
    listener: TcpListener,
    coordinator: Arc<Coordinator>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl CoordServer {
    /// Binds a listener (port 0 picks an ephemeral port) over a coordinator.
    pub fn bind(
        addr: impl ToSocketAddrs,
        coordinator: Coordinator,
        config: ServerConfig,
    ) -> io::Result<CoordServer> {
        Ok(CoordServer {
            listener: TcpListener::bind(addr)?,
            coordinator: Arc::new(coordinator),
            config,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The coordinator behind the listener (e.g. to probe shards).
    pub fn coordinator(&self) -> Arc<Coordinator> {
        Arc::clone(&self.coordinator)
    }

    /// The server's metric counters (the `coordinator` scope of
    /// `SHOW STATS`).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Runs the accept loop on the calling thread until shut down.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let active = self.metrics.connections_active.load(Ordering::Relaxed);
            if active >= self.config.max_connections as u64 {
                self.metrics
                    .connections_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let max_connections = self.config.max_connections;
                thread::spawn(move || reject_connection(stream, max_connections));
                continue;
            }
            self.metrics
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            self.metrics
                .connections_active
                .fetch_add(1, Ordering::Relaxed);
            let coordinator = Arc::clone(&self.coordinator);
            let metrics = Arc::clone(&self.metrics);
            thread::spawn(move || {
                let _ = handle_connection(stream, &coordinator, &metrics);
                metrics.connections_active.fetch_sub(1, Ordering::Relaxed);
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle that
    /// shuts the server down when asked (or dropped).
    pub fn spawn(self) -> io::Result<CoordServerHandle> {
        let addr = self.local_addr()?;
        let metrics = self.metrics();
        let coordinator = self.coordinator();
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(CoordServerHandle {
            addr,
            metrics,
            coordinator,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Handle to a coordinator server running on a background thread.
pub struct CoordServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    coordinator: Arc<Coordinator>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl CoordServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The coordinator behind the listener.
    pub fn coordinator(&self) -> Arc<Coordinator> {
        Arc::clone(&self.coordinator)
    }

    /// Stops accepting connections and joins the accept loop. Connections
    /// already in a session run until their client disconnects.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for CoordServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Turns away a connection over the cap, mirroring `hermes-server`: finish
/// the handshake, read the first request, answer with the capacity error.
fn reject_connection(stream: TcpStream, max_connections: usize) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let Ok(mut reader) = stream.try_clone().map(BufReader::new) else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    if write_handshake(&mut writer).is_err() || read_handshake(&mut reader).is_err() {
        return;
    }
    let _ = read_request(&mut reader);
    let _ = write_response(
        &mut writer,
        &Response::Error {
            message: format!("server at connection capacity ({max_connections} active)"),
        },
    );
}

/// Per-connection request loop; same shape as the single-node server's.
fn handle_connection(
    stream: TcpStream,
    coordinator: &Coordinator,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    write_handshake(&mut writer)?;
    if let Err(e) = read_handshake(&mut reader) {
        metrics.query_errors.fetch_add(1, Ordering::Relaxed);
        let _ = write_response(
            &mut writer,
            &Response::Error {
                message: e.to_string(),
            },
        );
        return Ok(());
    }

    // Wire handles index this connection-private table of parsed statements
    // plus their original SQL (the text is what gets forwarded downstream).
    let mut prepared: Vec<(String, Statement)> = Vec::new();

    loop {
        let (request, n_in) = match read_request(&mut reader) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                metrics.query_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_in.fetch_add(n_in, Ordering::Relaxed);

        let started = Instant::now();
        let response = answer(coordinator, &mut prepared, metrics, request);
        metrics.latency.record(started.elapsed());
        match &response {
            Response::Error { .. } => metrics.query_errors.fetch_add(1, Ordering::Relaxed),
            _ => metrics.queries_served.fetch_add(1, Ordering::Relaxed),
        };
        let n_out = match write_response(&mut writer, &response) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                metrics.query_errors.fetch_add(1, Ordering::Relaxed);
                write_response(
                    &mut writer,
                    &Response::Error {
                        message: format!("result too large for the wire protocol: {e}"),
                    },
                )?
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_out.fetch_add(n_out, Ordering::Relaxed);
    }
}

fn answer(
    coordinator: &Coordinator,
    prepared: &mut Vec<(String, Statement)>,
    metrics: &ServerMetrics,
    request: Request,
) -> Response {
    match request {
        Request::Query { sql } => match parse(&sql) {
            Ok(stmt) => coordinator.execute(&stmt, &ForwardSpec::Query(&sql), metrics),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Prepare { sql } => match parse(&sql) {
            Ok(stmt) => {
                let wire = match prepared.iter().position(|(text, _)| *text == sql) {
                    Some(i) => i,
                    None => {
                        prepared.push((sql, stmt));
                        prepared.len() - 1
                    }
                };
                Response::Prepared {
                    handle: wire as u32,
                }
            }
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::ExecutePrepared { handle, params } => {
            let Some((sql, stmt)) = prepared.get(handle as usize) else {
                return Response::Error {
                    message: format!(
                        "unknown prepared statement handle {handle} on this connection"
                    ),
                };
            };
            match stmt.bind(&params) {
                Ok(bound) => coordinator.execute(
                    &bound,
                    &ForwardSpec::Prepared {
                        sql,
                        params: &params,
                    },
                    metrics,
                ),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Ingest {
            dataset,
            trajectories,
        } => coordinator.ingest(&dataset, trajectories),
        Request::QutPartial { .. }
        | Request::RangePartial { .. }
        | Request::GatherTrajectories { .. }
        | Request::InfoPartial { .. } => Response::Error {
            message: "shard-internal request: the coordinator accepts client statements \
                      (QUERY / PREPARE / EXECUTE / INGEST) only"
                .into(),
        },
    }
}
