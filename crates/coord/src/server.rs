//! The coordinator's upstream listener: the same wire protocol
//! `hermes-serve` speaks, so `hermes-cli --connect` (and any
//! [`HermesClient`](hermes_server::HermesClient)) works against a sharded
//! deployment unchanged.
//!
//! The loop mirrors `hermes-server`'s thread-per-connection server, with the
//! engine swapped for a [`Coordinator`]: statements are parsed (and, for the
//! prepared path, bound) locally, then routed; the original SQL text rides
//! along so forwarded statements hit the shards byte-for-byte as the client
//! wrote them.
//!
//! Observability mirrors the single-node server too: the coordinator owns a
//! process-wide [`Registry`] (its `hermes_server_*` counters plus a collector
//! over the shard registry's `hermes_shard_*` counters) and a [`SpanStore`].
//! Every `Query`/`ExecutePrepared` statement becomes the *root* of a
//! distributed trace: the router records one child span per contacted shard
//! (propagating the context downstream, so the shard's own span joins the
//! tree) plus a `merge` span, and `SHOW TRACE <id>` against the coordinator
//! returns the whole fan-out tree.

use crate::router::{Coordinator, ForwardSpec};
use hermes_obs::{slow_query_line, QueryTrace, Registry, SpanStore};
use hermes_server::protocol::{
    read_handshake, read_request, write_handshake, write_response, Request, Response,
};
use hermes_server::traceview::{self, TraceQuery};
use hermes_server::{ServerConfig, ServerMetrics};
use hermes_sql::{parse, QueryOutcome, Statement};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// A bound-but-not-yet-running coordinator server.
pub struct CoordServer {
    listener: TcpListener,
    coordinator: Arc<Coordinator>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    spans: Arc<SpanStore>,
    shutdown: Arc<AtomicBool>,
}

impl CoordServer {
    /// Binds a listener (port 0 picks an ephemeral port) over a coordinator.
    ///
    /// The server owns a process-wide [`Registry`] carrying its own counters
    /// plus a pull-based collector over the shard registry (`hermes_shard_*`,
    /// one label set per shard), and a [`SpanStore`] holding the fan-out
    /// span trees for `SHOW TRACE`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        coordinator: Coordinator,
        config: ServerConfig,
    ) -> io::Result<CoordServer> {
        let coordinator = Arc::new(coordinator);
        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(ServerMetrics::register(&registry));
        let collector_coord = Arc::clone(&coordinator);
        registry.register_collector(move |out| {
            for shard in collector_coord.shards() {
                shard.collect_samples(out);
            }
        });
        Ok(CoordServer {
            listener: TcpListener::bind(addr)?,
            coordinator,
            config,
            metrics,
            registry,
            spans: Arc::new(SpanStore::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The coordinator behind the listener (e.g. to probe shards).
    pub fn coordinator(&self) -> Arc<Coordinator> {
        Arc::clone(&self.coordinator)
    }

    /// The server's metric counters (the `coordinator` scope of
    /// `SHOW STATS`).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The process-wide metrics registry (served at `GET /metrics`).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The in-process span store behind `SHOW TRACE` / `SHOW TRACES`.
    pub fn spans(&self) -> Arc<SpanStore> {
        Arc::clone(&self.spans)
    }

    /// Runs the accept loop on the calling thread until shut down.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let active = self.metrics.connections_active.get();
            if active >= self.config.max_connections as u64 {
                self.metrics.connections_rejected.inc();
                let max_connections = self.config.max_connections;
                thread::spawn(move || reject_connection(stream, max_connections));
                continue;
            }
            self.metrics.connections_accepted.inc();
            self.metrics.connections_active.inc();
            let coordinator = Arc::clone(&self.coordinator);
            let metrics = Arc::clone(&self.metrics);
            let spans = Arc::clone(&self.spans);
            let slow_query_ms = self.config.slow_query_ms;
            thread::spawn(move || {
                let _ = handle_connection(stream, &coordinator, &metrics, &spans, slow_query_ms);
                metrics.connections_active.dec();
            });
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread, returning a handle that
    /// shuts the server down when asked (or dropped).
    pub fn spawn(self) -> io::Result<CoordServerHandle> {
        let addr = self.local_addr()?;
        let metrics = self.metrics();
        let registry = self.registry();
        let spans = self.spans();
        let coordinator = self.coordinator();
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(CoordServerHandle {
            addr,
            metrics,
            registry,
            spans,
            coordinator,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Handle to a coordinator server running on a background thread.
pub struct CoordServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    spans: Arc<SpanStore>,
    coordinator: Arc<Coordinator>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl CoordServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The process-wide metrics registry (served at `GET /metrics`).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The in-process span store behind `SHOW TRACE` / `SHOW TRACES`.
    pub fn spans(&self) -> Arc<SpanStore> {
        Arc::clone(&self.spans)
    }

    /// The coordinator behind the listener.
    pub fn coordinator(&self) -> Arc<Coordinator> {
        Arc::clone(&self.coordinator)
    }

    /// Stops accepting connections and joins the accept loop. Connections
    /// already in a session run until their client disconnects.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for CoordServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Turns away a connection over the cap, mirroring `hermes-server`: finish
/// the handshake, read the first request, answer with the capacity error.
fn reject_connection(stream: TcpStream, max_connections: usize) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let Ok(mut reader) = stream.try_clone().map(BufReader::new) else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    if write_handshake(&mut writer).is_err() || read_handshake(&mut reader).is_err() {
        return;
    }
    let _ = read_request(&mut reader);
    let _ = write_response(
        &mut writer,
        &Response::error(format!(
            "server at connection capacity ({max_connections} active)"
        )),
    );
}

/// Per-connection request loop; same shape as the single-node server's.
fn handle_connection(
    stream: TcpStream,
    coordinator: &Coordinator,
    metrics: &ServerMetrics,
    spans: &Arc<SpanStore>,
    slow_query_ms: Option<u64>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    write_handshake(&mut writer)?;
    if let Err(e) = read_handshake(&mut reader) {
        metrics.query_errors.inc();
        let _ = write_response(&mut writer, &Response::error(e.to_string()));
        return Ok(());
    }

    // Wire handles index this connection-private table of parsed statements
    // plus their original SQL (the text is what gets forwarded downstream).
    let mut prepared: Vec<(String, Statement)> = Vec::new();

    loop {
        // The coordinator is the origin of distributed traces, not a relay:
        // an inbound trace context (only ever sent by another coordinator,
        // which does not happen in a two-tier deployment) is ignored.
        let (request, _inbound_trace, n_in) = match read_request(&mut reader) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                metrics.query_errors.inc();
                let _ = write_response(&mut writer, &Response::error(e.to_string()));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_in.add(n_in);

        let started = Instant::now();
        let (response, traced) = answer(coordinator, &mut prepared, metrics, spans, request);
        let elapsed = started.elapsed();
        metrics.latency.record(elapsed);
        match &response {
            Response::Error { .. } => metrics.query_errors.inc(),
            _ => metrics.queries_served.inc(),
        };
        if let (Some(threshold), Some((trace_id, statement))) = (slow_query_ms, traced) {
            let ms = elapsed.as_secs_f64() * 1e3;
            if ms >= threshold as f64 {
                metrics.slow_queries.inc();
                eprintln!("{}", slow_query_line(ms, trace_id, &statement));
            }
        }
        let n_out = match write_response(&mut writer, &response) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                metrics.query_errors.inc();
                write_response(
                    &mut writer,
                    &Response::error(format!("result too large for the wire protocol: {e}")),
                )?
            }
            Err(e) => return Err(e),
        };
        metrics.bytes_out.add(n_out);
    }
}

/// Answers one request. For statements that fan out (`Query` and
/// `ExecutePrepared`), the second element carries `(trace_id, statement)` of
/// the root trace recorded around the execution, feeding the slow-query log.
fn answer(
    coordinator: &Coordinator,
    prepared: &mut Vec<(String, Statement)>,
    metrics: &ServerMetrics,
    spans: &Arc<SpanStore>,
    request: Request,
) -> (Response, Option<(u64, String)>) {
    match request {
        Request::Query { sql } => match traceview::sniff_trace_text(&sql) {
            // Trace inspection is answered at this serving edge, against the
            // coordinator's own span store — never recorded, never routed.
            Some(TraceQuery::Traces) => (outcome_response(traceview::traces_outcome(spans)), None),
            Some(TraceQuery::Trace(id)) => {
                (outcome_response(traceview::trace_outcome(spans, id)), None)
            }
            None => match parse(&sql) {
                Ok(stmt) => {
                    let trace = QueryTrace::root(Arc::clone(spans));
                    let started = Instant::now();
                    let response = coordinator.execute(
                        &stmt,
                        &ForwardSpec::Query(&sql),
                        metrics,
                        Some(&trace),
                    );
                    finish_root(&trace, "query", &sql, started, &response);
                    let trace_id = trace.trace_id();
                    (response, Some((trace_id, sql)))
                }
                Err(e) => (error_response(e), None),
            },
        },
        Request::Prepare { sql } => match parse(&sql) {
            Ok(stmt) => {
                let wire = match prepared.iter().position(|(text, _)| *text == sql) {
                    Some(i) => i,
                    None => {
                        prepared.push((sql, stmt));
                        prepared.len() - 1
                    }
                };
                (
                    Response::Prepared {
                        handle: wire as u32,
                    },
                    None,
                )
            }
            Err(e) => (error_response(e), None),
        },
        Request::ExecutePrepared { handle, params } => {
            let Some((sql, stmt)) = prepared.get(handle as usize) else {
                return (
                    Response::error(format!(
                        "unknown prepared statement handle {handle} on this connection"
                    )),
                    None,
                );
            };
            match stmt.bind(&params) {
                // Prepared trace inspection (`SHOW TRACE $1`) is intercepted
                // like its direct-text form; binding resolved the id already.
                Ok(Statement::ShowTraces) => {
                    (outcome_response(traceview::traces_outcome(spans)), None)
                }
                Ok(Statement::ShowTrace { id }) => match id.as_i64() {
                    Ok(id) => (outcome_response(traceview::trace_outcome(spans, id)), None),
                    Err(message) => (Response::error(message), None),
                },
                Ok(bound) => {
                    let trace = QueryTrace::root(Arc::clone(spans));
                    let started = Instant::now();
                    let response = coordinator.execute(
                        &bound,
                        &ForwardSpec::Prepared {
                            sql,
                            params: &params,
                        },
                        metrics,
                        Some(&trace),
                    );
                    finish_root(&trace, "execute_prepared", sql, started, &response);
                    let trace_id = trace.trace_id();
                    let statement = sql.clone();
                    (response, Some((trace_id, statement)))
                }
                Err(e) => (error_response(e), None),
            }
        }
        Request::Ingest {
            dataset,
            trajectories,
        } => (coordinator.ingest(&dataset, trajectories), None),
        Request::QutPartial { .. }
        | Request::RangePartial { .. }
        | Request::GatherTrajectories { .. }
        | Request::InfoPartial { .. } => (
            Response::error(
                "shard-internal request: the coordinator accepts client statements \
                 (QUERY / PREPARE / EXECUTE / INGEST) only",
            ),
            None,
        ),
    }
}

/// Records the root span of a routed statement: the statement text and
/// whether it succeeded, with the shard/merge children already recorded by
/// the router underneath it.
fn finish_root(trace: &QueryTrace, name: &str, sql: &str, started: Instant, response: &Response) {
    let status = match response {
        Response::Error { .. } => "error",
        _ => "ok",
    };
    trace.finish_root(
        name.to_string(),
        started.elapsed(),
        vec![
            ("statement", sql.to_string()),
            ("status", status.to_string()),
        ],
    );
}

fn outcome_response(outcome: QueryOutcome) -> Response {
    match outcome {
        QueryOutcome::Rows { frame, stats } => Response::Rows { frame, stats },
        QueryOutcome::Command(status) => Response::Command(status),
    }
}

fn error_response(e: impl std::fmt::Display) -> Response {
    Response::error(e.to_string())
}
