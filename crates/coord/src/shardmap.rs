//! The static shard map: who owns which half-open temporal slice.
//!
//! A shard map assigns every instant of the time axis to exactly one shard.
//! Slices are half-open `[start_ms, end_ms)` intervals that must be sorted,
//! contiguous and cover the whole axis (`i64::MIN ..= i64::MAX` — an
//! `end_ms` of `i64::MAX` is treated as unbounded, mirroring
//! [`hermes_retratree::OwnedSlice`]). Interior boundaries must additionally
//! be multiples of the `BUILD INDEX` chunk duration; the coordinator checks
//! that at `BUILD INDEX` time because the chunk duration is a statement
//! parameter, not a map property (see `docs/SHARDING.md` for why alignment
//! is what makes sharded answers bit-identical).
//!
//! Two input syntaxes produce the same [`ShardSpec`]s:
//!
//! - repeated `--shard name=addr,addr2@start..end` flags, where either bound
//!   may be empty, `min` or `max`;
//! - a TOML-subset map file of `[[shard]]` tables with `name`, `addr` and
//!   optional `start_ms` / `end_ms` keys (defaulting to the unbounded ends).
//!
//! The address part is a comma-separated **replica set**: the first endpoint
//! is the primary, the rest are replicas holding (by the write fan-out
//! invariant, `docs/SHARDING.md`) byte-identical state. Reads prefer the
//! primary and fail over; writes go to every endpoint all-or-error.

use std::fmt;

/// One shard of the deployment: a display name, the replica set of
/// `host:port` endpoints serving its slice (primary first), and the
/// half-open `[start_ms, end_ms)` temporal slice it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard name, used in error frames and `SHOW STATS` scopes.
    pub name: String,
    /// `host:port` of the shard's primary `hermes-serve` listener.
    pub addr: String,
    /// `host:port` of each replica listener (may be empty — an unreplicated
    /// shard). Replicas receive every write the primary receives and
    /// therefore answer reads bit-identically.
    pub replicas: Vec<String>,
    /// Inclusive start of the owned slice in epoch milliseconds.
    pub start_ms: i64,
    /// Exclusive end of the owned slice (`i64::MAX` = unbounded).
    pub end_ms: i64,
}

impl ShardSpec {
    /// Every endpoint of the replica set, primary first.
    pub fn endpoints(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.addr.as_str()).chain(self.replicas.iter().map(String::as_str))
    }

    /// Replica-set size (primary + replicas).
    pub fn endpoint_count(&self) -> usize {
        1 + self.replicas.len()
    }
}

/// Splits a comma-separated endpoint list into `(primary, replicas)`.
fn split_endpoints(list: &str) -> (String, Vec<String>) {
    let mut parts = list.split(',').map(|a| a.trim().to_string());
    let primary = parts.next().unwrap_or_default();
    (primary, parts.collect())
}

/// A malformed or inconsistent shard map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMapError(pub String);

impl fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard map error: {}", self.0)
    }
}

impl std::error::Error for ShardMapError {}

fn err<T>(message: impl Into<String>) -> Result<T, ShardMapError> {
    Err(ShardMapError(message.into()))
}

/// Parses one `--shard` flag value: `name=addr[,addr2,…][@start..end]`,
/// where either bound may be empty, `min` or `max` (both default to
/// unbounded) and the address list is the shard's replica set, primary
/// first.
///
/// ```
/// use hermes_coord::parse_shard_flag;
/// let s = parse_shard_flag("early=127.0.0.1:9001,127.0.0.1:9101@min..3600000").unwrap();
/// assert_eq!((s.start_ms, s.end_ms), (i64::MIN, 3_600_000));
/// assert_eq!(s.addr, "127.0.0.1:9001");
/// assert_eq!(s.replicas, vec!["127.0.0.1:9101".to_string()]);
/// ```
pub fn parse_shard_flag(value: &str) -> Result<ShardSpec, ShardMapError> {
    let Some((name, rest)) = value.split_once('=') else {
        return err(format!(
            "--shard expects name=addr[@start..end], got '{value}'"
        ));
    };
    let (addr, range) = match rest.split_once('@') {
        Some((addr, range)) => (addr, Some(range)),
        None => (rest, None),
    };
    let (start_ms, end_ms) = match range {
        None => (i64::MIN, i64::MAX),
        Some(range) => {
            let Some((lo, hi)) = range.split_once("..") else {
                return err(format!(
                    "shard '{name}': slice '{range}' is not of the form start..end"
                ));
            };
            (
                parse_bound(name, lo, i64::MIN)?,
                parse_bound(name, hi, i64::MAX)?,
            )
        }
    };
    let (primary, replicas) = split_endpoints(addr);
    let spec = ShardSpec {
        name: name.trim().to_string(),
        addr: primary,
        replicas,
        start_ms,
        end_ms,
    };
    check_spec(&spec)?;
    Ok(spec)
}

fn parse_bound(shard: &str, text: &str, unbounded: i64) -> Result<i64, ShardMapError> {
    match text.trim() {
        "" => Ok(unbounded),
        "min" => Ok(i64::MIN),
        "max" => Ok(i64::MAX),
        t => match t.parse() {
            Ok(ms) => Ok(ms),
            Err(_) => err(format!(
                "shard '{shard}': slice bound '{t}' is not an integer, 'min', 'max' or empty"
            )),
        },
    }
}

/// Parses a shard-map file: a TOML subset of `[[shard]]` tables with
/// `name = "…"`, `addr = "…"` and optional integer `start_ms` / `end_ms`
/// keys. `#` comments and blank lines are ignored. The result still needs
/// [`validate_shard_map`].
pub fn parse_shard_map(text: &str) -> Result<Vec<ShardSpec>, ShardMapError> {
    let mut shards = Vec::new();
    let mut current: Option<ShardSpec> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if line == "[[shard]]" {
            if let Some(spec) = current.take() {
                check_spec(&spec)?;
                shards.push(spec);
            }
            current = Some(ShardSpec {
                name: String::new(),
                addr: String::new(),
                replicas: Vec::new(),
                start_ms: i64::MIN,
                end_ms: i64::MAX,
            });
            continue;
        }
        if line.starts_with('[') {
            return err(format!(
                "line {lineno}: only [[shard]] tables are supported"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("line {lineno}: expected key = value, got '{line}'"));
        };
        let Some(spec) = current.as_mut() else {
            return err(format!("line {lineno}: key outside a [[shard]] table"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "name" => spec.name = parse_toml_string(value, lineno)?,
            "addr" => {
                // Same comma-separated replica-set syntax as the flag form.
                let (primary, replicas) = split_endpoints(&parse_toml_string(value, lineno)?);
                spec.addr = primary;
                spec.replicas = replicas;
            }
            "start_ms" => spec.start_ms = parse_toml_int(value, lineno)?,
            "end_ms" => spec.end_ms = parse_toml_int(value, lineno)?,
            other => {
                return err(format!(
                    "line {lineno}: unknown key '{other}' (expected name, addr, start_ms or end_ms)"
                ))
            }
        }
    }
    if let Some(spec) = current.take() {
        check_spec(&spec)?;
        shards.push(spec);
    }
    Ok(shards)
}

/// Drops a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_string(value: &str, lineno: usize) -> Result<String, ShardMapError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ShardMapError(format!("line {lineno}: expected a \"quoted\" string")))?;
    if inner.contains('"') {
        return err(format!("line {lineno}: embedded quotes are not supported"));
    }
    Ok(inner.to_string())
}

fn parse_toml_int(value: &str, lineno: usize) -> Result<i64, ShardMapError> {
    // TOML allows underscores as digit separators; accept them.
    value
        .replace('_', "")
        .parse()
        .map_err(|_| ShardMapError(format!("line {lineno}: expected an integer, got '{value}'")))
}

fn check_spec(spec: &ShardSpec) -> Result<(), ShardMapError> {
    if spec.name.is_empty() {
        return err("every shard needs a non-empty name");
    }
    if spec.addr.is_empty() {
        return err(format!("shard '{}' needs an addr", spec.name));
    }
    if spec.replicas.iter().any(String::is_empty) {
        return err(format!(
            "shard '{}': empty endpoint in the replica list",
            spec.name
        ));
    }
    let mut endpoints: Vec<&str> = spec.endpoints().collect();
    endpoints.sort_unstable();
    for pair in endpoints.windows(2) {
        if pair[0] == pair[1] {
            return err(format!(
                "shard '{}': endpoint '{}' appears twice in the replica set",
                spec.name, pair[0]
            ));
        }
    }
    if spec.start_ms >= spec.end_ms {
        return err(format!(
            "shard '{}': slice start {} must be below its end {}",
            spec.name, spec.start_ms, spec.end_ms
        ));
    }
    Ok(())
}

/// Validates and normalizes a complete map: at least one shard, unique
/// names, and slices that — once sorted by start, which this function does
/// in place — are contiguous and cover the whole time axis. These are the
/// preconditions of the bit-exactness argument in `docs/SHARDING.md`, so a
/// hole or overlap is rejected up front rather than silently mis-answering.
pub fn validate_shard_map(shards: &mut [ShardSpec]) -> Result<(), ShardMapError> {
    if shards.is_empty() {
        return err("at least one shard is required");
    }
    for spec in shards.iter() {
        check_spec(spec)?;
    }
    shards.sort_by_key(|s| s.start_ms);
    let mut names: Vec<&str> = shards.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    for pair in names.windows(2) {
        if pair[0] == pair[1] {
            return err(format!("duplicate shard name '{}'", pair[0]));
        }
    }
    if shards[0].start_ms != i64::MIN {
        return err(format!(
            "the first slice must start unbounded (min), got {} — every instant needs an owner",
            shards[0].start_ms
        ));
    }
    if shards[shards.len() - 1].end_ms != i64::MAX {
        return err(format!(
            "the last slice must end unbounded (max), got {} — every instant needs an owner",
            shards[shards.len() - 1].end_ms
        ));
    }
    for pair in shards.windows(2) {
        if pair[0].end_ms != pair[1].start_ms {
            return err(format!(
                "slices of '{}' and '{}' are not contiguous: {} ends at {} but {} starts at {}",
                pair[0].name,
                pair[1].name,
                pair[0].name,
                pair[0].end_ms,
                pair[1].name,
                pair[1].start_ms
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, start: i64, end: i64) -> ShardSpec {
        ShardSpec {
            name: name.into(),
            addr: "127.0.0.1:1".into(),
            replicas: Vec::new(),
            start_ms: start,
            end_ms: end,
        }
    }

    #[test]
    fn flag_syntax_round_trips() {
        let s = parse_shard_flag("alpha=10.0.0.1:8650").unwrap();
        assert_eq!(s.name, "alpha");
        assert_eq!(s.addr, "10.0.0.1:8650");
        assert_eq!((s.start_ms, s.end_ms), (i64::MIN, i64::MAX));

        let s = parse_shard_flag("b=h:1@min..3600000").unwrap();
        assert_eq!((s.start_ms, s.end_ms), (i64::MIN, 3_600_000));
        let s = parse_shard_flag("c=h:1@3600000..max").unwrap();
        assert_eq!((s.start_ms, s.end_ms), (3_600_000, i64::MAX));
        let s = parse_shard_flag("d=h:1@-100..100").unwrap();
        assert_eq!((s.start_ms, s.end_ms), (-100, 100));
        let s = parse_shard_flag("e=h:1@..").unwrap();
        assert_eq!((s.start_ms, s.end_ms), (i64::MIN, i64::MAX));
    }

    #[test]
    fn replica_sets_parse_in_both_syntaxes() {
        let s = parse_shard_flag("a=h:1, h:2 ,h:3@min..0").unwrap();
        assert_eq!(s.addr, "h:1");
        assert_eq!(s.replicas, vec!["h:2".to_string(), "h:3".to_string()]);
        assert_eq!(s.endpoint_count(), 3);
        assert_eq!(s.endpoints().collect::<Vec<_>>(), vec!["h:1", "h:2", "h:3"]);

        let mut shards = parse_shard_map(
            "[[shard]]\nname = \"a\"\naddr = \"h:1,h:2\"\nend_ms = 0\n\
             [[shard]]\nname = \"b\"\naddr = \"h:3\"\nstart_ms = 0\n",
        )
        .unwrap();
        validate_shard_map(&mut shards).unwrap();
        assert_eq!(shards[0].replicas, vec!["h:2".to_string()]);
        assert!(shards[1].replicas.is_empty());

        // Duplicate or empty endpoints are rejected.
        assert!(parse_shard_flag("a=h:1,h:1").is_err());
        assert!(parse_shard_flag("a=h:1,,h:2").is_err());
        assert!(parse_shard_flag("a=,h:2").is_err());
    }

    #[test]
    fn flag_syntax_rejects_nonsense() {
        assert!(parse_shard_flag("no-equals").is_err());
        assert!(parse_shard_flag("a=h:1@123").is_err());
        assert!(parse_shard_flag("a=h:1@x..y").is_err());
        assert!(parse_shard_flag("a=h:1@100..100").is_err());
        assert!(parse_shard_flag("=h:1").is_err());
        assert!(parse_shard_flag("a=").is_err());
    }

    #[test]
    fn toml_subset_parses() {
        let text = r#"
            # two shards split at the one-hour mark
            [[shard]]
            name = "early"            # owns everything before t = 1h
            addr = "127.0.0.1:9001"
            end_ms = 3_600_000

            [[shard]]
            name = "late"
            addr = "127.0.0.1:9002"
            start_ms = 3600000
        "#;
        let mut shards = parse_shard_map(text).unwrap();
        validate_shard_map(&mut shards).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].name, "early");
        assert_eq!(
            (shards[0].start_ms, shards[0].end_ms),
            (i64::MIN, 3_600_000)
        );
        assert_eq!(
            (shards[1].start_ms, shards[1].end_ms),
            (3_600_000, i64::MAX)
        );
    }

    #[test]
    fn toml_subset_rejects_malformed_input() {
        assert!(parse_shard_map("name = \"orphan\"").is_err());
        assert!(parse_shard_map("[[shard]]\nname = unquoted").is_err());
        assert!(parse_shard_map("[[shard]]\nbogus = 1").is_err());
        assert!(parse_shard_map("[server]\nport = 1").is_err());
        assert!(parse_shard_map("[[shard]]\nname = \"a\"").is_err()); // no addr
    }

    #[test]
    fn validation_enforces_a_partition_of_the_axis() {
        // Gap.
        let mut gap = vec![spec("a", i64::MIN, 100), spec("b", 200, i64::MAX)];
        assert!(validate_shard_map(&mut gap).is_err());
        // Overlap.
        let mut overlap = vec![spec("a", i64::MIN, 200), spec("b", 100, i64::MAX)];
        assert!(validate_shard_map(&mut overlap).is_err());
        // Bounded ends.
        let mut bounded = vec![spec("a", 0, i64::MAX)];
        assert!(validate_shard_map(&mut bounded).is_err());
        let mut bounded = vec![spec("a", i64::MIN, 0)];
        assert!(validate_shard_map(&mut bounded).is_err());
        // Duplicate names.
        let mut dup = vec![spec("a", i64::MIN, 0), spec("a", 0, i64::MAX)];
        assert!(validate_shard_map(&mut dup).is_err());
        // Empty.
        assert!(validate_shard_map(&mut Vec::new()).is_err());
        // A valid two-way split sorts and passes.
        let mut ok = vec![spec("late", 0, i64::MAX), spec("early", i64::MIN, 0)];
        validate_shard_map(&mut ok).unwrap();
        assert_eq!(ok[0].name, "early");
    }
}
