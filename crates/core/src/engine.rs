//! The [`HermesEngine`] façade.

use crate::error::EngineError;
use crate::persist::Durability;
use crate::Result;
use hermes_exec::{ExecPolicy, Executor};
use hermes_obs::Counter;
use hermes_retratree::{
    qut_clustering_with, qut_partial_with, range_query_then_cluster_with, OwnedSlice, QutParams,
    QutPartial, QutStats, ReTraTree, ReTraTreeParams,
};
use hermes_s2t::{
    run_s2t_naive_with, run_s2t_with, ClusteringResult, KernelCounters, S2TOutcome, S2TParams,
    S2TPhaseTimings,
};
use hermes_storage::{BufferStats, Catalog, DatasetId};
use hermes_trajectory::{TimeInterval, Trajectory};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-dataset state held by the engine.
///
/// Both fields sit behind an `Arc` so [`HermesEngine::fork_snapshot`] is a
/// reference bump per dataset rather than a deep copy; mutators go through
/// [`Arc::make_mut`], which deep-clones only when a published snapshot still
/// shares the data (copy-on-write).
#[derive(Clone)]
pub(crate) struct Dataset {
    pub(crate) trajectories: Arc<Vec<Trajectory>>,
    pub(crate) tree: Option<Arc<ReTraTree>>,
}

/// Summary of a registered dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Number of trajectories loaded.
    pub num_trajectories: usize,
    /// Total number of points loaded.
    pub num_points: usize,
    /// Temporal extent of the data (None when empty).
    pub lifespan: Option<TimeInterval>,
    /// Whether a ReTraTree has been built.
    pub indexed: bool,
    /// Number of level-3 cluster entries in the ReTraTree (0 when not
    /// indexed).
    pub num_cluster_entries: usize,
}

/// Cumulative per-phase compute milliseconds, summed over every clustering
/// query the engine has answered (S2T direct or through QuT border
/// re-clustering / window rebuild). Under parallel execution per-task phase
/// times overlap in wall-clock, so these count *work*, like CPU time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCountersMs {
    /// Segment arena + packed index construction.
    pub index_build_ms: u64,
    /// Voting phase.
    pub voting_ms: u64,
    /// Segmentation phase.
    pub segmentation_ms: u64,
    /// Sampling (representative selection) phase.
    pub sampling_ms: u64,
    /// Greedy clustering / outlier detection phase.
    pub clustering_ms: u64,
}

/// Engine-wide resource counters, aggregated over every dataset's ReTraTree
/// storage. Surfaced by `SHOW STATS` and the CLI's `\stats` so the buffer
/// pool's behaviour is observable outside the benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Registered datasets.
    pub datasets: usize,
    /// Datasets with a built ReTraTree.
    pub indexed_datasets: usize,
    /// Level-4 partitions across every built index.
    pub indexed_partitions: usize,
    /// Sub-trajectory records stored across every built index.
    pub stored_records: usize,
    /// Buffer-pool hit/miss/eviction counters summed over every index.
    pub buffer: BufferStats,
    /// Intra-query compute threads the engine currently uses.
    pub threads: usize,
    /// Cumulative S2T pipeline phase timings across every clustering query.
    pub phases: PhaseCountersMs,
    /// Candidate pairs the voting kernel evaluated exactly, across every
    /// clustering query (arena hot path only; the naive baseline does not
    /// count).
    pub kernel_evaluated: u64,
    /// Candidate pairs a distance lower bound pruned before the exact
    /// kernel, across every clustering query.
    pub kernel_pruned: u64,
    /// True when the engine was opened over a data directory (snapshot + WAL
    /// durability). The three counters below are 0 when false.
    pub durable: bool,
    /// Size in bytes of the newest snapshot file (0 before the first
    /// checkpoint of a fresh data directory).
    pub snapshot_bytes: u64,
    /// Current write-ahead-log size in bytes (header included).
    pub wal_bytes: u64,
    /// Wall-clock milliseconds the most recent [`HermesEngine::checkpoint`]
    /// took (0 until one runs in this process).
    pub last_checkpoint_ms: u64,
}

/// Lock-free accumulator behind [`PhaseCountersMs`]: the clustering entry
/// points take `&self` (shared deployments answer reads concurrently under a
/// read lock), so the counters are `hermes-obs` atomics, recorded in
/// microseconds to keep sub-millisecond phases from vanishing into rounding.
/// The serving layer exports the same totals through the process-wide metrics
/// registry (`hermes_engine_phase_ms_total{phase=…}`).
#[derive(Default)]
struct PhaseAccumulator {
    index_build_us: Counter,
    voting_us: Counter,
    segmentation_us: Counter,
    sampling_us: Counter,
    clustering_us: Counter,
    /// Voting-kernel pruned-vs-evaluated counters, same lifetime and
    /// visibility as the phase totals.
    kernel_evaluated: Counter,
    kernel_pruned: Counter,
}

impl PhaseAccumulator {
    fn record(&self, t: &S2TPhaseTimings) {
        let us = |ms: f64| (ms * 1_000.0).max(0.0) as u64;
        self.index_build_us.add(us(t.index_build_ms));
        self.voting_us.add(us(t.voting_ms));
        self.segmentation_us.add(us(t.segmentation_ms));
        self.sampling_us.add(us(t.sampling_ms));
        self.clustering_us.add(us(t.clustering_ms));
    }

    fn record_kernel(&self, k: &KernelCounters) {
        self.kernel_evaluated.add(k.evaluated);
        self.kernel_pruned.add(k.pruned);
    }

    fn snapshot_ms(&self) -> PhaseCountersMs {
        let ms = |c: &Counter| c.get() / 1_000;
        PhaseCountersMs {
            index_build_ms: ms(&self.index_build_us),
            voting_ms: ms(&self.voting_us),
            segmentation_ms: ms(&self.segmentation_us),
            sampling_ms: ms(&self.sampling_us),
            clustering_ms: ms(&self.clustering_us),
        }
    }
}

/// Read-only copy of the durability counters, carried by engine snapshots
/// forked off a durable master ([`HermesEngine::fork_snapshot`]). The live
/// [`Durability`] handle owns files and an advisory lock, so it cannot be
/// cloned into snapshots; this view keeps `SHOW STATS` correct on the read
/// path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DurabilityView {
    pub(crate) durable: bool,
    pub(crate) snapshot_bytes: u64,
    pub(crate) wal_bytes: u64,
    pub(crate) last_checkpoint_ms: u64,
}

/// The Moving Object Database engine.
pub struct HermesEngine {
    pub(crate) catalog: Catalog,
    pub(crate) datasets: HashMap<DatasetId, Dataset>,
    /// Intra-query parallelism: the policy and the executor built from it.
    /// Every compute entry point (S2T, QuT, `BUILD INDEX`) fans out on this
    /// executor; serial (1 thread) means everything runs inline. Cloning the
    /// executor shares the pool, so snapshots compute on the same workers.
    exec_policy: ExecPolicy,
    exec: Executor,
    /// Cumulative per-phase compute time over every clustering query. Shared
    /// (`Arc`) across snapshots so reads answered against an older epoch
    /// still land in the same monotone totals.
    phase_totals: Arc<PhaseAccumulator>,
    /// Snapshot + WAL persistence, present when the engine was opened over a
    /// data directory ([`HermesEngine::open`]). `None` means a plain
    /// in-memory engine — every mutator skips logging. Always `None` on
    /// forked snapshots; they carry `durability_view` instead.
    pub(crate) durability: Option<Durability>,
    /// Durability counters frozen at fork time (see [`DurabilityView`]).
    pub(crate) durability_view: DurabilityView,
}

impl Default for HermesEngine {
    fn default() -> Self {
        HermesEngine::new()
    }
}

impl HermesEngine {
    /// Creates an empty engine with the deployment-default execution policy
    /// ([`ExecPolicy::from_env`]: `HERMES_THREADS`, else the machine's
    /// available parallelism).
    pub fn new() -> Self {
        HermesEngine::with_exec_policy(ExecPolicy::from_env())
    }

    /// Creates an empty engine with an explicit execution policy.
    pub fn with_exec_policy(policy: ExecPolicy) -> Self {
        HermesEngine {
            catalog: Catalog::default(),
            datasets: HashMap::new(),
            exec_policy: policy,
            exec: Executor::new(policy),
            phase_totals: Arc::new(PhaseAccumulator::default()),
            durability: None,
            durability_view: DurabilityView::default(),
        }
    }

    /// Forks an immutable point-in-time copy of this engine for the epoch
    /// read path (`SharedEngine`): catalog and per-dataset `Arc`s are
    /// reference-bumped (no trajectory or tree data is copied until a later
    /// mutation touches it), the executor handle shares the same pool, the
    /// phase totals stay the same shared accumulator, and the durability
    /// counters are frozen into a `DurabilityView` (snapshots never own
    /// the WAL or the data-directory lock).
    pub fn fork_snapshot(&self) -> HermesEngine {
        HermesEngine {
            catalog: self.catalog.clone(),
            datasets: self.datasets.clone(),
            exec_policy: self.exec_policy,
            exec: self.exec.clone(),
            phase_totals: Arc::clone(&self.phase_totals),
            durability: None,
            durability_view: self.durability_view_now(),
        }
    }

    /// The durability counters as of now: live values on a durable master,
    /// the frozen fork-time view on a snapshot, zeros in memory-only mode.
    fn durability_view_now(&self) -> DurabilityView {
        match self.durability.as_ref() {
            Some(d) => DurabilityView {
                durable: true,
                snapshot_bytes: d.snapshot_bytes,
                wal_bytes: d.wal.size_bytes(),
                last_checkpoint_ms: d.last_checkpoint_ms,
            },
            None => self.durability_view,
        }
    }

    /// The current execution policy (surfaced by `SHOW THREADS`).
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec_policy
    }

    /// The engine's executor, for callers driving the compute crates
    /// directly (benchmarks, examples).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Re-points the engine at a new execution policy (the `SET threads = N`
    /// statement). The count is validated by [`ExecPolicy::new`] (`0` and
    /// counts beyond [`ExecPolicy::MAX_THREADS`] are rejected — each pool
    /// worker is a real OS thread, so this is reachable from remote
    /// clients); an unchanged thread count keeps the existing pool (no
    /// worker churn).
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) -> Result<()> {
        let policy = ExecPolicy::new(policy.threads)
            .map_err(|m| EngineError::InvalidParameters(format!("SET {m}")))?;
        if policy.threads != self.exec_policy.threads {
            self.exec = Executor::new(policy);
            self.exec_policy = policy;
        }
        Ok(())
    }

    /// Registers a new, empty dataset. Durable engines log the operation to
    /// the write-ahead log once it has applied.
    pub fn create_dataset(&mut self, name: &str) -> Result<DatasetId> {
        let id = self.apply_create_dataset(name)?;
        self.log_create_dataset(name)?;
        Ok(id)
    }

    pub(crate) fn apply_create_dataset(&mut self, name: &str) -> Result<DatasetId> {
        let id = self.catalog.create(name)?;
        self.datasets.insert(
            id,
            Dataset {
                trajectories: Arc::new(Vec::new()),
                tree: None,
            },
        );
        Ok(id)
    }

    /// Drops a dataset and everything loaded into it (logged when durable).
    pub fn drop_dataset(&mut self, name: &str) -> Result<()> {
        self.apply_drop_dataset(name)?;
        self.log_drop_dataset(name)?;
        Ok(())
    }

    pub(crate) fn apply_drop_dataset(&mut self, name: &str) -> Result<()> {
        let meta = self.catalog.drop_dataset(name)?;
        self.datasets.remove(&meta.id);
        Ok(())
    }

    fn dataset_id(&self, name: &str) -> Result<DatasetId> {
        Ok(self.catalog.get(name)?.id)
    }

    fn dataset(&self, name: &str) -> Result<&Dataset> {
        let id = self.dataset_id(name)?;
        self.datasets
            .get(&id)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// Appends trajectories to a dataset. If the dataset is already indexed,
    /// the new trajectories are also inserted incrementally into its
    /// ReTraTree (the maintenance path of the architecture figure). Durable
    /// engines log the batch to the write-ahead log.
    pub fn load_trajectories(&mut self, name: &str, trajectories: Vec<Trajectory>) -> Result<()> {
        // Encode the record before the Vec is consumed; append it only once
        // the ingest has applied, so a rejected batch is never logged.
        let record = self
            .durability
            .is_some()
            .then(|| crate::persist::encode_wal_ingest(name, &trajectories));
        self.apply_load_trajectories(name, trajectories)?;
        if let Some(record) = record {
            self.log_record(&record)?;
        }
        Ok(())
    }

    pub(crate) fn apply_load_trajectories(
        &mut self,
        name: &str,
        trajectories: Vec<Trajectory>,
    ) -> Result<()> {
        let id = self.dataset_id(name)?;
        let ds = self
            .datasets
            .get_mut(&id)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        if let Some(tree) = ds.tree.as_mut() {
            // Copy-on-write: deep-clones the tree only while a published
            // snapshot still shares it.
            let tree = Arc::make_mut(tree);
            for t in &trajectories {
                tree.insert_trajectory(t);
            }
        }
        Arc::make_mut(&mut ds.trajectories).extend(trajectories);

        let (num_points, lifespan) = dataset_extent(&ds.trajectories);
        let n = ds.trajectories.len();
        self.catalog.update_stats(id, n, num_points, lifespan);
        Ok(())
    }

    /// Builds (or rebuilds) the ReTraTree of a dataset, returning the number
    /// of trajectories indexed (the SQL layer reports it as the command's
    /// affected count). Durable engines log the parameters; replay re-runs
    /// the (deterministic) build, and the next checkpoint absorbs the tree
    /// into the snapshot so recovery stops paying for it.
    pub fn build_index(&mut self, name: &str, params: ReTraTreeParams) -> Result<usize> {
        let indexed = self.apply_build_index(name, params.clone())?;
        self.log_build_index(name, &params)?;
        Ok(indexed)
    }

    pub(crate) fn apply_build_index(
        &mut self,
        name: &str,
        params: ReTraTreeParams,
    ) -> Result<usize> {
        params.validate().map_err(EngineError::InvalidParameters)?;
        let id = self.dataset_id(name)?;
        let ds = self
            .datasets
            .get_mut(&id)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        if ds.trajectories.is_empty() {
            return Err(EngineError::EmptyDataset(name.to_string()));
        }
        ds.tree = Some(Arc::new(ReTraTree::build_from_with(
            params,
            &ds.trajectories,
            &self.exec,
        )));
        Ok(ds.trajectories.len())
    }

    /// Access to a dataset's ReTraTree (for statistics and benchmarks).
    pub fn tree(&self, name: &str) -> Result<&ReTraTree> {
        let ds = self.dataset(name)?;
        ds.tree
            .as_deref()
            .ok_or_else(|| EngineError::NotIndexed(name.to_string()))
    }

    /// Access to a dataset's raw trajectories.
    pub fn trajectories(&self, name: &str) -> Result<&[Trajectory]> {
        Ok(&self.dataset(name)?.trajectories)
    }

    /// Runs S2T-Clustering over the whole dataset (index-accelerated voting).
    pub fn run_s2t(&self, name: &str, params: &S2TParams) -> Result<S2TOutcome> {
        params.validate().map_err(EngineError::InvalidParameters)?;
        let ds = self.dataset(name)?;
        if ds.trajectories.is_empty() {
            return Err(EngineError::EmptyDataset(name.to_string()));
        }
        let outcome = run_s2t_with(&ds.trajectories, params, &self.exec);
        self.phase_totals.record(&outcome.timings);
        self.phase_totals.record_kernel(&outcome.kernel);
        Ok(outcome)
    }

    /// Runs S2T-Clustering with the naive (index-free) voting — the
    /// "corresponding PostgreSQL functions" baseline of experiment E1.
    pub fn run_s2t_naive(&self, name: &str, params: &S2TParams) -> Result<S2TOutcome> {
        params.validate().map_err(EngineError::InvalidParameters)?;
        let ds = self.dataset(name)?;
        if ds.trajectories.is_empty() {
            return Err(EngineError::EmptyDataset(name.to_string()));
        }
        let outcome = run_s2t_naive_with(&ds.trajectories, params, &self.exec);
        self.phase_totals.record(&outcome.timings);
        Ok(outcome)
    }

    /// Answers `QUT(D, Wi, We, …)` from the dataset's ReTraTree.
    pub fn run_qut(
        &self,
        name: &str,
        window: &TimeInterval,
        params: &QutParams,
    ) -> Result<(ClusteringResult, QutStats)> {
        params.validate().map_err(EngineError::InvalidParameters)?;
        let tree = self.tree(name)?;
        let (result, stats) = qut_clustering_with(tree, window, params, &self.exec);
        self.phase_totals.record(&stats.phases);
        self.phase_totals.record_kernel(&stats.kernel);
        Ok((result, stats))
    }

    /// Answers this shard's *owned* share of `QUT(D, Wi, We, …)`: every
    /// sub-chunk that intersects `window` and starts inside `owned`, without
    /// the final cross-boundary merge (the coordinator applies
    /// [`hermes_retratree::merge_qut_partials`] over all shards' partials).
    pub fn run_qut_partial(
        &self,
        name: &str,
        owned: &OwnedSlice,
        window: &TimeInterval,
        params: &QutParams,
    ) -> Result<QutPartial> {
        params.validate().map_err(EngineError::InvalidParameters)?;
        let tree = self.tree(name)?;
        let partial = qut_partial_with(tree, owned, window, params, &self.exec);
        self.phase_totals.record(&partial.stats.phases);
        self.phase_totals.record_kernel(&partial.stats.kernel);
        Ok(partial)
    }

    /// This shard's share of a distributed `RANGE` count: stored pieces whose
    /// lifespan intersects `window`, counted only in owned sub-chunks.
    pub fn owned_range_count(
        &self,
        name: &str,
        owned: &OwnedSlice,
        window: &TimeInterval,
    ) -> Result<usize> {
        Ok(self
            .tree(name)?
            .owned_window_sub_trajectories(window, owned)
            .len())
    }

    /// The rebuild-from-scratch strategy the demo compares QuT against
    /// (temporal range query → fresh index → S2T).
    pub fn run_window_rebuild(
        &self,
        name: &str,
        window: &TimeInterval,
        params: &S2TParams,
    ) -> Result<(ClusteringResult, QutStats)> {
        params.validate().map_err(EngineError::InvalidParameters)?;
        let tree = self.tree(name)?;
        let (result, stats) = range_query_then_cluster_with(tree, window, params, &self.exec);
        self.phase_totals.record(&stats.phases);
        self.phase_totals.record_kernel(&stats.kernel);
        Ok((result, stats))
    }

    /// Summary of a dataset.
    pub fn dataset_info(&self, name: &str) -> Result<DatasetInfo> {
        let meta = self.catalog.get(name)?;
        let ds = self.dataset(name)?;
        Ok(DatasetInfo {
            name: meta.name.clone(),
            num_trajectories: meta.num_trajectories,
            num_points: meta.num_points,
            lifespan: meta.lifespan,
            indexed: ds.tree.is_some(),
            num_cluster_entries: ds.tree.as_ref().map(|t| t.total_clusters()).unwrap_or(0),
        })
    }

    /// Aggregated resource counters over every dataset.
    pub fn stats(&self) -> EngineStats {
        let view = self.durability_view_now();
        let mut stats = EngineStats {
            datasets: self.datasets.len(),
            threads: self.exec_policy.threads,
            phases: self.phase_totals.snapshot_ms(),
            kernel_evaluated: self.phase_totals.kernel_evaluated.get(),
            kernel_pruned: self.phase_totals.kernel_pruned.get(),
            durable: view.durable,
            snapshot_bytes: view.snapshot_bytes,
            wal_bytes: view.wal_bytes,
            last_checkpoint_ms: view.last_checkpoint_ms,
            ..EngineStats::default()
        };
        for ds in self.datasets.values() {
            let Some(tree) = ds.tree.as_ref() else {
                continue;
            };
            stats.indexed_datasets += 1;
            let store = tree.store();
            stats.indexed_partitions += store.num_partitions();
            stats.stored_records += store.total_records();
            let b = store.buffer().stats();
            stats.buffer.hits += b.hits;
            stats.buffer.misses += b.misses;
            stats.buffer.evictions += b.evictions;
        }
        stats
    }

    /// Names of every registered dataset, sorted.
    pub fn list_datasets(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.list().map(|m| m.name.clone()).collect();
        names.sort();
        names
    }
}

fn dataset_extent(trajectories: &[Trajectory]) -> (usize, Option<TimeInterval>) {
    let num_points = trajectories.iter().map(|t| t.len()).sum();
    let lifespan = trajectories
        .iter()
        .map(|t| t.lifespan())
        .reduce(|a, b| a.union(&b));
    (num_points, lifespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Duration, Point, Timestamp};

    fn traj(id: u64, y: f64, t0: i64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn engine_with_data() -> HermesEngine {
        let mut e = HermesEngine::new();
        e.create_dataset("flights").unwrap();
        let mut trajs = Vec::new();
        for i in 0..10 {
            trajs.push(traj(i, i as f64 * 10.0, 0));
        }
        for i in 10..18 {
            trajs.push(traj(i, 50_000.0 + i as f64 * 10.0, 4 * 3_600_000));
        }
        e.load_trajectories("flights", trajs).unwrap();
        e
    }

    fn s2t_params() -> S2TParams {
        S2TParams {
            sigma: 60.0,
            epsilon: 400.0,
            min_duration_ms: 120_000,
            ..S2TParams::default()
        }
    }

    fn tree_params() -> ReTraTreeParams {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(4),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 2,
            buffer_frames: 64,
            s2t: s2t_params(),
        }
    }

    #[test]
    fn dataset_lifecycle() {
        let mut e = HermesEngine::new();
        e.create_dataset("a").unwrap();
        assert!(matches!(
            e.create_dataset("a"),
            Err(EngineError::DatasetExists(_))
        ));
        assert_eq!(e.list_datasets(), vec!["a".to_string()]);
        assert!(matches!(
            e.dataset_info("missing"),
            Err(EngineError::UnknownDataset(_))
        ));
        e.drop_dataset("a").unwrap();
        assert!(e.list_datasets().is_empty());
    }

    #[test]
    fn info_reflects_loaded_data_and_index() {
        let mut e = engine_with_data();
        let info = e.dataset_info("flights").unwrap();
        assert_eq!(info.num_trajectories, 18);
        assert_eq!(info.num_points, 18 * 30);
        assert!(!info.indexed);
        assert!(info.lifespan.is_some());

        e.build_index("flights", tree_params()).unwrap();
        let info = e.dataset_info("flights").unwrap();
        assert!(info.indexed);
    }

    #[test]
    fn s2t_through_the_engine() {
        let e = engine_with_data();
        let outcome = e.run_s2t("flights", &s2t_params()).unwrap();
        assert_eq!(outcome.result.num_clusters(), 2);
        let naive = e.run_s2t_naive("flights", &s2t_params()).unwrap();
        assert_eq!(naive.result.num_clusters(), 2);
        // Parameter validation is enforced.
        let mut bad = s2t_params();
        bad.sigma = -1.0;
        assert!(matches!(
            e.run_s2t("flights", &bad),
            Err(EngineError::InvalidParameters(_))
        ));
    }

    #[test]
    fn qut_requires_an_index() {
        let mut e = engine_with_data();
        let w = TimeInterval::new(Timestamp(0), Timestamp(3_600_000));
        let qp = QutParams {
            s2t: s2t_params(),
            ..QutParams::default()
        };
        assert!(matches!(
            e.run_qut("flights", &w, &qp),
            Err(EngineError::NotIndexed(_))
        ));
        e.build_index("flights", tree_params()).unwrap();
        let (result, stats) = e.run_qut("flights", &w, &qp).unwrap();
        assert!(result.num_clusters() >= 1);
        assert!(stats.loaded_sub_trajectories > 0);
        let (rebuild, _) = e.run_window_rebuild("flights", &w, &s2t_params()).unwrap();
        assert_eq!(result.num_clusters(), rebuild.num_clusters());
    }

    #[test]
    fn incremental_load_after_indexing_updates_the_tree() {
        let mut e = engine_with_data();
        e.build_index("flights", tree_params()).unwrap();
        let before = e.tree("flights").unwrap().total_population();
        e.load_trajectories("flights", vec![traj(99, 40.0, 0)])
            .unwrap();
        let after = e.tree("flights").unwrap().total_population();
        assert!(after > before);
        assert_eq!(e.dataset_info("flights").unwrap().num_trajectories, 19);
    }

    #[test]
    fn stats_aggregate_storage_counters() {
        let mut e = engine_with_data();
        let before = e.stats();
        assert_eq!(before.datasets, 1);
        assert_eq!(before.indexed_datasets, 0);
        assert_eq!(before.indexed_partitions, 0);

        e.build_index("flights", tree_params()).unwrap();
        // Touch the storage through a window query so the pool sees traffic.
        let w = TimeInterval::new(Timestamp(0), Timestamp(3_600_000));
        let _ = e.tree("flights").unwrap().window_sub_trajectories(&w);
        let after = e.stats();
        assert_eq!(after.indexed_datasets, 1);
        assert!(after.indexed_partitions > 0);
        assert!(after.stored_records > 0);
        assert!(after.buffer.hits + after.buffer.misses > 0);
    }

    #[test]
    fn phase_counters_accumulate_across_queries() {
        let mut e = engine_with_data();
        assert_eq!(e.stats().phases, PhaseCountersMs::default());
        assert_eq!(e.stats().kernel_evaluated, 0);
        assert_eq!(e.stats().kernel_pruned, 0);

        // Several runs so the per-phase microsecond counts survive the
        // millisecond truncation in the snapshot.
        for _ in 0..50 {
            e.run_s2t("flights", &s2t_params()).unwrap();
        }
        // The arena hot path must have reported exact-kernel work, and the
        // counters are monotone across queries.
        assert!(
            e.stats().kernel_evaluated > 0,
            "S2T runs must evaluate kernel pairs"
        );
        let after_s2t = e.stats().phases;
        let total = after_s2t.index_build_ms
            + after_s2t.voting_ms
            + after_s2t.segmentation_ms
            + after_s2t.sampling_ms
            + after_s2t.clustering_ms;
        assert!(total > 0, "50 S2T runs must accumulate visible phase time");

        // QuT with a misaligned window re-clusters borders, adding more work.
        e.build_index("flights", tree_params()).unwrap();
        let w = TimeInterval::new(Timestamp(10 * 60_000), Timestamp(3_600_000));
        let qp = QutParams {
            s2t: s2t_params(),
            ..QutParams::default()
        };
        for _ in 0..50 {
            e.run_qut("flights", &w, &qp).unwrap();
        }
        let after_qut = e.stats().phases;
        let qut_total = after_qut.index_build_ms
            + after_qut.voting_ms
            + after_qut.segmentation_ms
            + after_qut.sampling_ms
            + after_qut.clustering_ms;
        assert!(
            qut_total >= total,
            "counters are cumulative: {qut_total} vs {total}"
        );
    }

    #[test]
    fn exec_policy_is_settable_and_rejects_zero() {
        let mut e = HermesEngine::with_exec_policy(ExecPolicy::serial());
        assert_eq!(e.exec_policy().threads, 1);
        assert!(!e.executor().is_parallel());
        e.set_exec_policy(ExecPolicy { threads: 3 }).unwrap();
        assert_eq!(e.exec_policy().threads, 3);
        assert!(e.executor().is_parallel());
        assert_eq!(e.stats().threads, 3);
        let err = e.set_exec_policy(ExecPolicy { threads: 0 }).unwrap_err();
        assert!(
            matches!(err, EngineError::InvalidParameters(ref m) if m.contains("positive")),
            "{err}"
        );
        // Unbounded requests are rejected too — each worker is an OS thread.
        let err = e
            .set_exec_policy(ExecPolicy { threads: 1_000_000 })
            .unwrap_err();
        assert!(
            matches!(err, EngineError::InvalidParameters(ref m) if m.contains("at most")),
            "{err}"
        );
        // The rejected policies left the engine untouched.
        assert_eq!(e.exec_policy().threads, 3);
    }

    #[test]
    fn parallel_engine_results_match_serial() {
        let serial = {
            let mut e = HermesEngine::with_exec_policy(ExecPolicy::serial());
            populate(&mut e);
            e
        };
        let parallel = {
            let mut e = HermesEngine::with_exec_policy(ExecPolicy { threads: 4 });
            populate(&mut e);
            e
        };
        let a = serial.run_s2t("flights", &s2t_params()).unwrap();
        let b = parallel.run_s2t("flights", &s2t_params()).unwrap();
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.result.num_clusters(), b.result.num_clusters());
        assert_eq!(a.result.num_outliers(), b.result.num_outliers());

        let w = TimeInterval::new(Timestamp(0), Timestamp(3_600_000));
        let qp = QutParams {
            s2t: s2t_params(),
            ..QutParams::default()
        };
        let (ra, sa) = serial.run_qut("flights", &w, &qp).unwrap();
        let (rb, sb) = parallel.run_qut("flights", &w, &qp).unwrap();
        assert_eq!(ra.num_clusters(), rb.num_clusters());
        assert_eq!(ra.num_outliers(), rb.num_outliers());
        assert_eq!(sa.loaded_sub_trajectories, sb.loaded_sub_trajectories);

        fn populate(e: &mut HermesEngine) {
            e.create_dataset("flights").unwrap();
            let trajs: Vec<Trajectory> = (0..14).map(|i| traj(i, i as f64 * 10.0, 0)).collect();
            e.load_trajectories("flights", trajs).unwrap();
            e.build_index("flights", tree_params()).unwrap();
        }
    }

    #[test]
    fn empty_dataset_errors() {
        let mut e = HermesEngine::new();
        e.create_dataset("empty").unwrap();
        assert!(matches!(
            e.run_s2t("empty", &s2t_params()),
            Err(EngineError::EmptyDataset(_))
        ));
        assert!(matches!(
            e.build_index("empty", tree_params()),
            Err(EngineError::EmptyDataset(_))
        ));
    }
}
