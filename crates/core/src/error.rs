//! Engine error type.

use hermes_storage::StorageError;
use std::fmt;

/// Errors surfaced by the Hermes engine façade.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The named dataset does not exist.
    UnknownDataset(String),
    /// A dataset with that name already exists.
    DatasetExists(String),
    /// The dataset exists but has no ReTraTree yet (call `build_index`).
    NotIndexed(String),
    /// The dataset exists but holds no trajectories.
    EmptyDataset(String),
    /// A parameter failed validation.
    InvalidParameters(String),
    /// A durability-only operation (`CHECKPOINT`) reached an in-memory
    /// engine — open the engine over a data directory first.
    NotDurable,
    /// An error bubbled up from the storage layer.
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            EngineError::DatasetExists(name) => write!(f, "dataset '{name}' already exists"),
            EngineError::NotIndexed(name) => {
                write!(f, "dataset '{name}' has no ReTraTree index; build it first")
            }
            EngineError::EmptyDataset(name) => write!(f, "dataset '{name}' holds no trajectories"),
            EngineError::InvalidParameters(reason) => write!(f, "invalid parameters: {reason}"),
            EngineError::NotDurable => write!(
                f,
                "engine has no data directory; open it with --data-dir (or HermesEngine::open) to checkpoint"
            ),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::UnknownDataset { name } => EngineError::UnknownDataset(name),
            StorageError::DatasetExists { name } => EngineError::DatasetExists(name),
            other => EngineError::Storage(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: EngineError = StorageError::UnknownDataset { name: "x".into() }.into();
        assert_eq!(e, EngineError::UnknownDataset("x".into()));
        assert!(e.to_string().contains('x'));
        let e: EngineError = StorageError::InvalidPage { page: 3 }.into();
        assert!(matches!(e, EngineError::Storage(_)));
        assert!(EngineError::NotIndexed("d".into())
            .to_string()
            .contains("ReTraTree"));
    }
}
