//! # hermes-core
//!
//! The Hermes Moving Object Database engine: the façade that ties the
//! substrates together the way Hermes@PostgreSQL does inside the DBMS.
//!
//! A [`HermesEngine`] owns a catalog of named datasets. Each dataset holds
//! its raw trajectories and, once indexed, a ReTraTree. The engine exposes
//! the two clustering entry points of the paper — whole-dataset
//! [`HermesEngine::run_s2t`] and window-constrained [`HermesEngine::run_qut`]
//! — plus the naive execution strategies the demo benchmarks against, so the
//! SQL layer (`hermes-sql`) and the examples talk to a single object.
//!
//! Engines come in two flavours: in-memory ([`HermesEngine::new`]) and
//! durable ([`HermesEngine::open`] over a data directory), the latter backed
//! by the snapshot + write-ahead-log [`persist`] layer —
//! [`HermesEngine::checkpoint`] makes the current state the recovery point.
//! The on-disk formats are specified in `docs/STORAGE.md`.

pub mod engine;
pub mod error;
pub mod persist;
pub mod shared;

pub use engine::{DatasetInfo, EngineStats, HermesEngine, PhaseCountersMs};
pub use error::EngineError;
pub use persist::{CheckpointInfo, WalRecord};
pub use shared::SharedEngine;

// Re-exported so front ends (SQL executor, server, CLI) can configure
// intra-query parallelism without depending on `hermes-exec` directly.
pub use hermes_exec::{ExecPolicy, Executor};

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
