//! Engine durability: snapshot + write-ahead-log persistence over a data
//! directory.
//!
//! A durable engine ([`HermesEngine::open`]) keeps two files in its data
//! directory (formats normatively specified in `docs/STORAGE.md`):
//!
//! * `snapshot.hsnap` — the whole engine state (catalog, every dataset's
//!   trajectories, every built ReTraTree including its partition pages and
//!   leaf-index entry lists), wrapped in the checksummed container of
//!   [`hermes_storage::snapshot`]. Written by [`HermesEngine::checkpoint`],
//!   atomically.
//! * `wal-<epoch>.hlog` — the CRC-framed log of mutating operations since
//!   that snapshot ([`hermes_storage::wal`]). `CREATE`/`DROP DATASET`,
//!   ingest batches and `BUILD INDEX` parameters are appended after they
//!   apply; recovery replays them over the snapshot.
//!
//! The `<epoch>` in the WAL name is the checkpoint generation, stamped
//! inside the snapshot body. A checkpoint (1) writes the new snapshot with
//! epoch *E+1*, (2) starts a fresh `wal-<E+1>.hlog`, (3) deletes the old
//! log. Recovery always pairs the snapshot with *its own* log, so a crash
//! anywhere inside a checkpoint can never double-apply operations: until the
//! new snapshot is durably renamed, recovery uses snapshot *E* + `wal-E`;
//! from the instant it is, recovery uses snapshot *E+1* (which already
//! contains everything `wal-E` held) + an empty or missing `wal-E+1`.
//! Stale logs from other epochs are removed on open.
//!
//! Recovery tolerates a torn WAL tail (an append cut short by a crash): the
//! log is truncated to its last intact record and replay covers exactly the
//! durable prefix. `BUILD INDEX` replays by re-running the build — the
//! engine's clustering is deterministic (see `tests/parallel_determinism.rs`)
//! so the rebuilt tree matches the lost one; the next checkpoint absorbs it
//! into the snapshot so subsequent recoveries stop paying for the rebuild.

use crate::engine::Dataset;
use crate::error::EngineError;
use crate::{HermesEngine, Result};
use hermes_exec::ExecPolicy;
use hermes_retratree::{persist as tree_persist, ReTraTreeParams};
use hermes_storage::codec::{decode_trajectory_from, encode_trajectory_into};
use hermes_storage::{
    read_snapshot_file, write_snapshot_file, ByteReader, ByteWriter, Catalog, DatasetMeta,
    StorageError, Wal,
};
use hermes_trajectory::{TimeInterval, Timestamp, Trajectory};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the engine snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.hsnap";

/// Version of the snapshot *body* layout (the container has its own version;
/// this one covers the engine-state encoding inside it).
pub const SNAPSHOT_BODY_VERSION: u16 = 1;

/// The WAL file name for a checkpoint epoch.
fn wal_file_name(epoch: u64) -> String {
    format!("wal-{epoch:016}.hlog")
}

/// Durable-state handle owned by a [`HermesEngine`] opened over a data
/// directory.
pub(crate) struct Durability {
    dir: PathBuf,
    pub(crate) wal: Wal,
    epoch: u64,
    pub(crate) snapshot_bytes: u64,
    pub(crate) last_checkpoint_ms: u64,
    /// Exclusive advisory lock on `<dir>/LOCK`, held for the engine's
    /// lifetime so two processes cannot append to the same WAL through
    /// independent cursors. Released automatically on drop *and* on process
    /// death (`flock` semantics), so a crash never leaves a stale lock.
    _lock: File,
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Best-effort group-commit flush on clean shutdown; a crash instead
        // of a drop loses at most the unsynced suffix, which recovery trims.
        let _ = self.wal.sync();
    }
}

/// What a [`HermesEngine::checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Size in bytes of the snapshot file just written.
    pub snapshot_bytes: u64,
    /// Bytes of write-ahead log the checkpoint made redundant and discarded.
    pub wal_bytes_discarded: u64,
    /// Wall-clock milliseconds the checkpoint took.
    pub elapsed_ms: u64,
}

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

const WAL_CREATE_DATASET: u8 = 1;
const WAL_DROP_DATASET: u8 = 2;
const WAL_INGEST: u8 = 3;
const WAL_BUILD_INDEX: u8 = 4;

/// A decoded logical WAL record (the owned form replay works on; encoding
/// goes through the `encode_wal_*` functions, which borrow their payloads).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE DATASET name`.
    CreateDataset {
        /// Dataset name.
        name: String,
    },
    /// `DROP DATASET name`.
    DropDataset {
        /// Dataset name.
        name: String,
    },
    /// One ingest batch into a dataset.
    Ingest {
        /// Dataset name.
        name: String,
        /// The batch, in load order.
        trajectories: Vec<Trajectory>,
    },
    /// A `BUILD INDEX` with its full parameter set; replay re-runs the
    /// (deterministic) build.
    BuildIndex {
        /// Dataset name.
        name: String,
        /// The construction parameters.
        params: ReTraTreeParams,
    },
}

/// Encodes a `CREATE DATASET` record payload.
pub fn encode_wal_create(name: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(WAL_CREATE_DATASET);
    w.str(name);
    w.into_bytes()
}

/// Encodes a `DROP DATASET` record payload.
pub fn encode_wal_drop(name: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(WAL_DROP_DATASET);
    w.str(name);
    w.into_bytes()
}

/// Encodes an ingest-batch record payload.
pub fn encode_wal_ingest(name: &str, trajectories: &[Trajectory]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64 + trajectories.len() * 128);
    w.u8(WAL_INGEST);
    w.str(name);
    w.u32(trajectories.len() as u32);
    for t in trajectories {
        encode_trajectory_into(&mut w, t);
    }
    w.into_bytes()
}

/// Encodes a `BUILD INDEX` record payload.
pub fn encode_wal_build_index(name: &str, params: &ReTraTreeParams) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(WAL_BUILD_INDEX);
    w.str(name);
    tree_persist::encode_params_into(&mut w, params);
    w.into_bytes()
}

/// Decodes one WAL record payload.
pub fn decode_wal_record(payload: &[u8]) -> std::result::Result<WalRecord, StorageError> {
    let mut r = ByteReader::new(payload);
    let record = match r.u8()? {
        WAL_CREATE_DATASET => WalRecord::CreateDataset { name: r.str()? },
        WAL_DROP_DATASET => WalRecord::DropDataset { name: r.str()? },
        WAL_INGEST => {
            let name = r.str()?;
            let count = r.u32()? as usize;
            let mut trajectories = Vec::with_capacity(count);
            for _ in 0..count {
                trajectories.push(decode_trajectory_from(&mut r)?);
            }
            WalRecord::Ingest { name, trajectories }
        }
        WAL_BUILD_INDEX => WalRecord::BuildIndex {
            name: r.str()?,
            params: tree_persist::decode_params_from(&mut r)?,
        },
        other => {
            return Err(StorageError::Corrupt {
                reason: format!("unknown WAL record type {other}"),
            })
        }
    };
    if !r.is_empty() {
        return Err(StorageError::Corrupt {
            reason: format!("{} trailing bytes after WAL record", r.remaining()),
        });
    }
    Ok(record)
}

// ---------------------------------------------------------------------------
// Snapshot body
// ---------------------------------------------------------------------------

/// Serializes the whole engine state as a snapshot body stamped with the
/// given checkpoint epoch.
pub(crate) fn encode_engine_state(engine: &HermesEngine, epoch: u64) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(1 << 16);
    w.u16(SNAPSHOT_BODY_VERSION);
    w.u64(epoch);

    // Catalog, sorted by id so the encoding is deterministic.
    w.u64(engine.catalog.next_id());
    let mut metas: Vec<&DatasetMeta> = engine.catalog.list().collect();
    metas.sort_by_key(|m| m.id);
    w.u32(metas.len() as u32);
    for meta in &metas {
        w.u64(meta.id);
        w.str(&meta.name);
        w.u64(meta.num_trajectories as u64);
        w.u64(meta.num_points as u64);
        match meta.lifespan {
            Some(span) => {
                w.bool(true);
                w.i64(span.start.millis());
                w.i64(span.end.millis());
            }
            None => w.bool(false),
        }
    }

    // Datasets, same order.
    let mut ids: Vec<u64> = engine.datasets.keys().copied().collect();
    ids.sort_unstable();
    w.u32(ids.len() as u32);
    for id in ids {
        let ds = &engine.datasets[&id];
        w.u64(id);
        w.u32(ds.trajectories.len() as u32);
        for t in ds.trajectories.iter() {
            encode_trajectory_into(&mut w, t);
        }
        match &ds.tree {
            Some(tree) => {
                w.bool(true);
                tree_persist::encode_tree(&mut w, tree);
            }
            None => w.bool(false),
        }
    }
    w.into_bytes()
}

/// Restores engine state from a snapshot body, returning the epoch it was
/// stamped with.
pub(crate) fn restore_engine_state(
    engine: &mut HermesEngine,
    body: &[u8],
) -> std::result::Result<u64, StorageError> {
    let mut r = ByteReader::new(body);
    let body_version = r.u16()?;
    if body_version != SNAPSHOT_BODY_VERSION {
        return Err(StorageError::Corrupt {
            reason: format!(
                "unsupported snapshot body version {body_version} (expected {SNAPSHOT_BODY_VERSION})"
            ),
        });
    }
    let epoch = r.u64()?;

    let next_id = r.u64()?;
    let num_metas = r.u32()? as usize;
    let mut metas = Vec::with_capacity(num_metas);
    for _ in 0..num_metas {
        let id = r.u64()?;
        let name = r.str()?;
        let num_trajectories = r.u64()? as usize;
        let num_points = r.u64()? as usize;
        let lifespan = if r.bool()? {
            Some(TimeInterval::new(Timestamp(r.i64()?), Timestamp(r.i64()?)))
        } else {
            None
        };
        metas.push(DatasetMeta {
            id,
            name,
            num_trajectories,
            num_points,
            lifespan,
        });
    }
    let catalog = Catalog::from_parts(metas, next_id)?;

    let num_datasets = r.u32()? as usize;
    let mut datasets = HashMap::with_capacity(num_datasets);
    for _ in 0..num_datasets {
        let id = r.u64()?;
        if catalog.get_by_id(id).is_none() {
            return Err(StorageError::Corrupt {
                reason: format!("dataset {id} has state but no catalog row"),
            });
        }
        let num_trajectories = r.u32()? as usize;
        let mut trajectories = Vec::with_capacity(num_trajectories);
        for _ in 0..num_trajectories {
            trajectories.push(decode_trajectory_from(&mut r)?);
        }
        let tree = if r.bool()? {
            Some(std::sync::Arc::new(tree_persist::decode_tree(&mut r)?))
        } else {
            None
        };
        if datasets
            .insert(
                id,
                Dataset {
                    trajectories: std::sync::Arc::new(trajectories),
                    tree,
                },
            )
            .is_some()
        {
            return Err(StorageError::Corrupt {
                reason: format!("dataset {id} appears twice in the snapshot"),
            });
        }
    }
    if datasets.len() != catalog.len() {
        return Err(StorageError::Corrupt {
            reason: format!(
                "snapshot holds {} dataset bodies for {} catalog rows",
                datasets.len(),
                catalog.len()
            ),
        });
    }
    if !r.is_empty() {
        return Err(StorageError::Corrupt {
            reason: format!("{} trailing bytes after the snapshot body", r.remaining()),
        });
    }
    engine.catalog = catalog;
    engine.datasets = datasets;
    Ok(epoch)
}

// ---------------------------------------------------------------------------
// The engine's durable surface
// ---------------------------------------------------------------------------

impl HermesEngine {
    /// Opens (or initializes) a durable engine over `data_dir` with the
    /// deployment-default execution policy: loads the newest valid snapshot,
    /// replays the write-ahead log (tolerating a torn tail), and keeps the
    /// log open so every subsequent mutation is journaled.
    pub fn open(data_dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_exec_policy(data_dir, ExecPolicy::from_env())
    }

    /// [`HermesEngine::open`] with an explicit execution policy.
    pub fn open_with_exec_policy(data_dir: impl AsRef<Path>, policy: ExecPolicy) -> Result<Self> {
        let dir = data_dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("creating {}", dir.display()), e))?;
        let lock = acquire_dir_lock(&dir)?;

        let mut engine = HermesEngine::with_exec_policy(policy);
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut epoch = 0;
        let mut snapshot_bytes = 0;
        if let Some(body) = read_snapshot_file(&snapshot_path)? {
            epoch = restore_engine_state(&mut engine, &body)?;
            snapshot_bytes = fs::metadata(&snapshot_path).map(|m| m.len()).unwrap_or(0);
        }

        let wal_path = dir.join(wal_file_name(epoch));
        let (wal, recovery) = Wal::open(&wal_path)?;
        for (i, payload) in recovery.records.iter().enumerate() {
            let record = decode_wal_record(payload)?;
            engine.apply_wal_record(record).map_err(|e| {
                EngineError::Storage(StorageError::Corrupt {
                    reason: format!("replaying WAL record {i} failed: {e}"),
                })
            })?;
        }
        remove_stale_wals(&dir, &wal_path);

        engine.durability = Some(Durability {
            dir,
            wal,
            epoch,
            snapshot_bytes,
            last_checkpoint_ms: 0,
            _lock: lock,
        });
        Ok(engine)
    }

    /// The data directory this engine persists into (`None` for a plain
    /// in-memory engine).
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// True when the engine journals mutations and can [`checkpoint`]
    /// (opened via [`HermesEngine::open`]).
    ///
    /// [`checkpoint`]: HermesEngine::checkpoint
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Changes the WAL group-commit threshold (bytes of appended records
    /// between fsyncs; `0` syncs every append). No-op on in-memory engines.
    pub fn set_wal_sync_interval(&mut self, bytes: u64) {
        if let Some(d) = self.durability.as_mut() {
            d.wal.set_sync_interval(bytes);
        }
    }

    /// Writes a new snapshot of the whole engine state and truncates the
    /// write-ahead log (the records are now redundant). Returns what was
    /// written and discarded; errors with [`EngineError::NotDurable`] on an
    /// in-memory engine.
    ///
    /// Failure ordering: the epoch-*E+1* log is created **before** the
    /// epoch-*E+1* snapshot is durably renamed. If anything fails before the
    /// rename, the durable state is untouched (epoch *E* + `wal-E`; a
    /// leftover empty `wal-E+1` is swept as stale on the next open) and the
    /// engine keeps journaling into `wal-E` — acknowledged operations are
    /// never stranded in a log the next recovery would ignore.
    pub fn checkpoint(&mut self) -> Result<CheckpointInfo> {
        let started = Instant::now();
        let Some(d) = self.durability.as_ref() else {
            return Err(EngineError::NotDurable);
        };
        let new_epoch = d.epoch + 1;
        let dir = d.dir.clone();
        let old_wal_bytes = d.wal.size_bytes();

        // 1. The new log must exist before the snapshot that names it can
        //    become the recovery point.
        let (new_wal, _) = Wal::open(&dir.join(wal_file_name(new_epoch)))?;
        // 2. The atomic snapshot rename is the commit point.
        let body = encode_engine_state(self, new_epoch);
        let snapshot_bytes = write_snapshot_file(&dir.join(SNAPSHOT_FILE), &body)?;

        // 3. Only now is the in-memory state switched and the old log dropped.
        let d = self.durability.as_mut().expect("checked above");
        let old_wal_path = d.wal.path().to_path_buf();
        d.wal = new_wal;
        d.epoch = new_epoch;
        d.snapshot_bytes = snapshot_bytes;
        let _ = fs::remove_file(old_wal_path);
        let elapsed_ms = started.elapsed().as_millis() as u64;
        d.last_checkpoint_ms = elapsed_ms;
        Ok(CheckpointInfo {
            snapshot_bytes,
            wal_bytes_discarded: old_wal_bytes,
            elapsed_ms,
        })
    }

    /// Applies one replayed WAL record through the unlogged mutation paths.
    fn apply_wal_record(&mut self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::CreateDataset { name } => self.apply_create_dataset(&name).map(|_| ()),
            WalRecord::DropDataset { name } => self.apply_drop_dataset(&name),
            WalRecord::Ingest { name, trajectories } => {
                self.apply_load_trajectories(&name, trajectories)
            }
            WalRecord::BuildIndex { name, params } => {
                self.apply_build_index(&name, params).map(|_| ())
            }
        }
    }

    /// Appends an already-encoded record to the WAL (no-op when in-memory).
    ///
    /// Journaling runs *after* the mutation has applied (a rejected
    /// statement must never be logged), so a failure here means the
    /// operation took effect in memory but is not crash-durable. The error
    /// says so explicitly: the caller sees a failure whose state is
    /// recoverable by a successful `CHECKPOINT` (which persists the applied
    /// state wholesale and does not need the lost record).
    pub(crate) fn log_record(&mut self, payload: &[u8]) -> Result<()> {
        if let Some(d) = self.durability.as_mut() {
            d.wal.append(payload).map_err(|e| {
                EngineError::Storage(StorageError::Io {
                    context: "journaling a mutation that already applied in memory \
                              (state is queryable but not crash-durable; run CHECKPOINT \
                              to persist it)"
                        .into(),
                    source: e.to_string(),
                })
            })?;
        }
        Ok(())
    }

    pub(crate) fn log_create_dataset(&mut self, name: &str) -> Result<()> {
        if self.durability.is_some() {
            let record = encode_wal_create(name);
            self.log_record(&record)?;
        }
        Ok(())
    }

    pub(crate) fn log_drop_dataset(&mut self, name: &str) -> Result<()> {
        if self.durability.is_some() {
            let record = encode_wal_drop(name);
            self.log_record(&record)?;
        }
        Ok(())
    }

    pub(crate) fn log_build_index(&mut self, name: &str, params: &ReTraTreeParams) -> Result<()> {
        if self.durability.is_some() {
            let record = encode_wal_build_index(name, params);
            self.log_record(&record)?;
        }
        Ok(())
    }
}

/// Takes an exclusive advisory lock on `<dir>/LOCK`, failing fast when
/// another process already owns the data directory — two engines appending
/// to one WAL through independent file cursors would overwrite each other's
/// acknowledged records. On non-unix platforms the lock file is created but
/// not enforced.
fn acquire_dir_lock(dir: &Path) -> std::result::Result<File, StorageError> {
    let path = dir.join("LOCK");
    let file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&path)
        .map_err(|e| StorageError::io(format!("creating {}", path.display()), e))?;
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        extern "C" {
            fn flock(fd: i32, operation: i32) -> i32;
        }
        const LOCK_EX: i32 = 2;
        const LOCK_NB: i32 = 4;
        if unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) } != 0 {
            return Err(StorageError::Io {
                context: format!("locking {}", path.display()),
                source: "data directory is already in use by another process".into(),
            });
        }
    }
    Ok(file)
}

/// Removes WAL files from other epochs: leftovers of a checkpoint that
/// crashed between creating the new log and deleting the old one. The
/// snapshot is the single source of truth for which epoch is live.
fn remove_stale_wals(dir: &Path, keep: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("wal-") && name.ends_with(".hlog") && path != keep {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Duration, Point};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hermes-core-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn traj(id: u64, y: f64, t0: i64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn tree_params() -> ReTraTreeParams {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(4),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 2,
            buffer_frames: 64,
            s2t: hermes_s2t::S2TParams {
                sigma: 60.0,
                epsilon: 400.0,
                min_duration_ms: 120_000,
                ..hermes_s2t::S2TParams::default()
            },
        }
    }

    #[test]
    fn wal_records_round_trip() {
        let trajs = vec![traj(1, 0.0, 0), traj(2, 50.0, 60_000)];
        for (payload, want) in [
            (
                encode_wal_create("flights"),
                WalRecord::CreateDataset {
                    name: "flights".into(),
                },
            ),
            (
                encode_wal_drop("flights"),
                WalRecord::DropDataset {
                    name: "flights".into(),
                },
            ),
            (
                encode_wal_ingest("flights", &trajs),
                WalRecord::Ingest {
                    name: "flights".into(),
                    trajectories: trajs.clone(),
                },
            ),
            (
                encode_wal_build_index("flights", &tree_params()),
                WalRecord::BuildIndex {
                    name: "flights".into(),
                    params: tree_params(),
                },
            ),
        ] {
            assert_eq!(decode_wal_record(&payload).unwrap(), want);
        }
        assert!(decode_wal_record(&[99]).is_err());
        assert!(decode_wal_record(&[]).is_err());
        // Trailing bytes are rejected.
        let mut payload = encode_wal_create("x");
        payload.push(0);
        assert!(decode_wal_record(&payload).is_err());
    }

    #[test]
    fn open_recovers_wal_only_state() {
        let dir = tmp_dir("walonly");
        {
            let mut e = HermesEngine::open(&dir).unwrap();
            assert!(e.is_durable());
            assert_eq!(e.data_dir(), Some(dir.as_path()));
            e.create_dataset("flights").unwrap();
            e.load_trajectories("flights", vec![traj(1, 0.0, 0), traj(2, 10.0, 0)])
                .unwrap();
            e.create_dataset("doomed").unwrap();
            e.drop_dataset("doomed").unwrap();
        }
        let e = HermesEngine::open(&dir).unwrap();
        assert_eq!(e.list_datasets(), vec!["flights".to_string()]);
        let info = e.dataset_info("flights").unwrap();
        assert_eq!(info.num_trajectories, 2);
        assert_eq!(info.num_points, 60);
        assert!(e.stats().wal_bytes > 8);
        assert_eq!(e.stats().snapshot_bytes, 0, "no checkpoint ran");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_survives_reopen() {
        let dir = tmp_dir("checkpoint");
        {
            let mut e = HermesEngine::open(&dir).unwrap();
            e.create_dataset("flights").unwrap();
            e.load_trajectories(
                "flights",
                (0..12).map(|i| traj(i, i as f64 * 10.0, 0)).collect(),
            )
            .unwrap();
            e.build_index("flights", tree_params()).unwrap();
            let wal_before = e.stats().wal_bytes;
            let info = e.checkpoint().unwrap();
            assert!(info.snapshot_bytes > 0);
            assert_eq!(info.wal_bytes_discarded, wal_before);
            let stats = e.stats();
            assert!(stats.durable);
            assert_eq!(stats.snapshot_bytes, info.snapshot_bytes);
            assert_eq!(stats.wal_bytes, 8, "fresh log is just its header");
            // Post-checkpoint mutations land in the new log.
            e.load_trajectories("flights", vec![traj(99, 40.0, 0)])
                .unwrap();
            assert!(e.stats().wal_bytes > 8);
        }
        let e = HermesEngine::open(&dir).unwrap();
        let info = e.dataset_info("flights").unwrap();
        assert_eq!(info.num_trajectories, 13);
        assert!(info.indexed, "the tree came back from the snapshot");
        // Exactly one WAL file remains.
        let wals = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .count();
        assert_eq!(wals, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_engines_refuse_checkpoint() {
        let mut e = HermesEngine::new();
        assert!(!e.is_durable());
        assert_eq!(e.data_dir(), None);
        assert!(matches!(e.checkpoint(), Err(EngineError::NotDurable)));
        let stats = e.stats();
        assert!(!stats.durable);
        assert_eq!(stats.wal_bytes, 0);
    }

    #[test]
    fn snapshot_body_round_trips_the_whole_engine() {
        let mut e = HermesEngine::new();
        e.create_dataset("a").unwrap();
        e.create_dataset("b").unwrap();
        e.load_trajectories("a", (0..12).map(|i| traj(i, i as f64 * 10.0, 0)).collect())
            .unwrap();
        e.build_index("a", tree_params()).unwrap();
        e.drop_dataset("b").unwrap();
        e.create_dataset("c").unwrap();

        let body = encode_engine_state(&e, 7);
        let mut back = HermesEngine::new();
        assert_eq!(restore_engine_state(&mut back, &body).unwrap(), 7);
        assert_eq!(back.list_datasets(), e.list_datasets());
        assert_eq!(
            back.dataset_info("a").unwrap(),
            e.dataset_info("a").unwrap()
        );
        // The id allocator continues where it left off: a new dataset gets a
        // fresh id even though 'b' was dropped.
        let id = back.create_dataset("d").unwrap();
        assert_eq!(id, 3);

        // Corruption sweeps: truncations fail cleanly.
        for cut in (0..body.len()).step_by(131) {
            let mut scratch = HermesEngine::new();
            assert!(restore_engine_state(&mut scratch, &body[..cut]).is_err());
        }
        fs::remove_dir_all(tmp_dir("unused")).ok();
    }

    #[test]
    fn build_index_replays_from_the_wal_deterministically() {
        let dir = tmp_dir("buildreplay");
        let reference = {
            let mut e = HermesEngine::open(&dir).unwrap();
            e.create_dataset("flights").unwrap();
            e.load_trajectories(
                "flights",
                (0..14).map(|i| traj(i, i as f64 * 10.0, 0)).collect(),
            )
            .unwrap();
            e.build_index("flights", tree_params()).unwrap();
            e.tree("flights").unwrap().describe()
        };
        // No checkpoint: everything, including the BUILD INDEX, replays.
        // (Sequential opens: the data-directory lock admits one engine at a
        // time.)
        let first_reorgs = {
            let e = HermesEngine::open(&dir).unwrap();
            assert_eq!(e.tree("flights").unwrap().describe(), reference);
            e.tree("flights").unwrap().stats().reorganizations
        };
        let f = HermesEngine::open(&dir).unwrap();
        assert_eq!(
            f.tree("flights").unwrap().stats().reorganizations,
            first_reorgs,
            "replay is reproducible"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_data_directory_lock_rejects_a_second_engine() {
        let dir = tmp_dir("lock");
        let first = HermesEngine::open(&dir).unwrap();
        let second = HermesEngine::open(&dir);
        assert!(
            matches!(
                second,
                Err(EngineError::Storage(StorageError::Io { ref source, .. }))
                    if source.contains("another process")
            ),
            "a concurrent open must be refused"
        );
        // Dropping the first engine releases the lock.
        drop(first);
        assert!(HermesEngine::open(&dir).is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
