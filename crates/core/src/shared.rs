//! [`SharedEngine`]: the concurrency wrapper that lets many sessions (CLI
//! shells, server connections, benchmark threads) drive one [`HermesEngine`].
//!
//! The wrapper publishes immutable engine *epochs*. Readers ([`pin`]) grab an
//! `Arc` to the currently published snapshot — a few atomic operations, never
//! a lock shared with writers — and answer against it for as long as they
//! like; a concurrently committing `BUILD INDEX` or `CHECKPOINT` cannot block
//! them and they cannot block it. Writers ([`with_write`]) serialize on a
//! narrow commit mutex around the single mutable *master* engine, then
//! publish a fresh fork ([`HermesEngine::fork_snapshot`], an `Arc` bump per
//! dataset) and advance the epoch counter.
//!
//! Memory reclamation needs no hazard pointers or RCU grace periods: a
//! superseded epoch is kept alive by exactly the `Arc` clones of the readers
//! still pinning it and is freed by the last of them dropping out. See
//! `docs/SERVER.md` for the full lifecycle argument.
//!
//! Cloning a `SharedEngine` clones the handle, not the engine.
//!
//! [`pin`]: SharedEngine::pin
//! [`with_write`]: SharedEngine::with_write

use crate::engine::HermesEngine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

struct SharedInner {
    /// The single mutable engine. All writers serialize here; readers never
    /// touch it.
    master: Mutex<HermesEngine>,
    /// The immutable snapshot readers pin. Swapped wholesale on commit; the
    /// lock is held only for the pointer copy on either side, so it is never
    /// contended for longer than an `Arc` clone.
    published: RwLock<Arc<HermesEngine>>,
    /// Monotone counter, bumped on every publication. Epoch 0 is the engine
    /// as constructed.
    epoch: AtomicU64,
}

/// A cloneable, thread-safe handle to one [`HermesEngine`] with
/// epoch-publication concurrency: non-blocking snapshot reads, serialized
/// copy-on-write commits.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<SharedInner>,
}

impl Default for SharedEngine {
    fn default() -> Self {
        SharedEngine::new(HermesEngine::default())
    }
}

impl SharedEngine {
    /// Wraps an engine for shared use. The initial published epoch is a fork
    /// of the engine as given.
    pub fn new(engine: HermesEngine) -> Self {
        let snapshot = Arc::new(engine.fork_snapshot());
        SharedEngine {
            inner: Arc::new(SharedInner {
                master: Mutex::new(engine),
                published: RwLock::new(snapshot),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Pins the currently published epoch: an immutable point-in-time
    /// snapshot the caller can hold and query for as long as it likes.
    /// Never blocks on writers — a commit in progress keeps publishing
    /// *after* this snapshot was taken, and the pinned epoch stays alive
    /// (and unchanged) until the last pin drops.
    ///
    /// A poisoned publication lock (a panic on another thread mid-swap) is
    /// recovered rather than propagated: the swap is a single pointer store,
    /// applied whole, and a server must keep answering after one bad
    /// connection.
    pub fn pin(&self) -> Arc<HermesEngine> {
        Arc::clone(
            &self
                .inner
                .published
                .read()
                .unwrap_or_else(|e| e.into_inner()),
        )
    }

    /// The current epoch number: how many commits have published so far.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// [`pin`](SharedEngine::pin) under its old name, for callers written
    /// against the read-lock API: the returned `Arc` dereferences to the
    /// engine exactly like the former guard did, minus the blocking.
    pub fn read(&self) -> Arc<HermesEngine> {
        self.pin()
    }

    /// Runs `f` against the currently published epoch.
    pub fn with_read<R>(&self, f: impl FnOnce(&HermesEngine) -> R) -> R {
        f(&self.pin())
    }

    /// Runs `f` against the master engine under the commit mutex, then
    /// publishes the result as a new epoch. Writers serialize with each
    /// other; readers pinned to older epochs are unaffected.
    ///
    /// Publication happens only on `f`'s normal return — if `f` panics, the
    /// master may hold its partial effects (the next commit publishes them,
    /// matching the poison-recovery semantics of the old write lock) but no
    /// reader observes a torn state.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut HermesEngine) -> R) -> R {
        let mut master = self.inner.master.lock().unwrap_or_else(|e| e.into_inner());
        let out = f(&mut master);
        let snapshot = Arc::new(master.fork_snapshot());
        *self
            .inner
            .published
            .write()
            .unwrap_or_else(|e| e.into_inner()) = snapshot;
        self.inner.epoch.fetch_add(1, Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Timestamp, Trajectory};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    fn traj(id: u64, y: f64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn handles_share_one_engine() {
        let shared = SharedEngine::default();
        shared.with_write(|e| e.create_dataset("a")).unwrap();
        let other = shared.clone();
        assert_eq!(other.read().list_datasets(), vec!["a".to_string()]);
    }

    #[test]
    fn concurrent_readers_with_a_writer() {
        let shared = SharedEngine::default();
        shared.with_write(|e| {
            e.create_dataset("d").unwrap();
            e.load_trajectories("d", (0..12).map(|i| traj(i, i as f64 * 10.0)).collect())
                .unwrap();
        });
        let reads = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let shared = shared.clone();
            let reads = Arc::clone(&reads);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let info = shared.read().dataset_info("d").unwrap();
                    // The concurrent writer may or may not have landed yet,
                    // but a reader never observes a torn state.
                    assert!(info.num_trajectories == 12 || info.num_trajectories == 13);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        // A writer interleaves with the readers.
        shared
            .with_write(|e| e.load_trajectories("d", vec![traj(99, 500.0)]))
            .unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reads.load(Ordering::Relaxed), 80);
        assert_eq!(
            shared.read().dataset_info("d").unwrap().num_trajectories,
            13
        );
    }

    #[test]
    fn pinned_epochs_are_immutable_and_commits_advance_the_epoch() {
        let shared = SharedEngine::default();
        assert_eq!(shared.epoch(), 0);
        shared.with_write(|e| e.create_dataset("d")).unwrap();
        assert_eq!(shared.epoch(), 1);

        let before = shared.pin();
        shared
            .with_write(|e| e.load_trajectories("d", vec![traj(1, 0.0)]))
            .unwrap();
        assert_eq!(shared.epoch(), 2);
        // The pinned snapshot still shows the pre-commit state...
        assert_eq!(before.dataset_info("d").unwrap().num_trajectories, 0);
        // ...while a fresh pin sees the new epoch.
        assert_eq!(shared.pin().dataset_info("d").unwrap().num_trajectories, 1);
    }

    #[test]
    fn readers_never_block_on_a_slow_writer() {
        let shared = SharedEngine::default();
        shared.with_write(|e| e.create_dataset("d")).unwrap();
        let writer = {
            let shared = shared.clone();
            thread::spawn(move || {
                shared.with_write(|e| {
                    // A deliberately long-held commit section (stand-in for a
                    // slow BUILD INDEX).
                    thread::sleep(Duration::from_millis(300));
                    e.load_trajectories("d", vec![traj(1, 0.0)]).unwrap();
                });
            })
        };
        // Give the writer time to enter its commit section, then read: the
        // pin must return far sooner than the writer finishes.
        thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        let info = shared.read().dataset_info("d").unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "reader blocked on the in-flight writer"
        );
        assert_eq!(info.num_trajectories, 0, "the old epoch answered");
        writer.join().unwrap();
        assert_eq!(shared.read().dataset_info("d").unwrap().num_trajectories, 1);
    }
}
