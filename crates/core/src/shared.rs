//! [`SharedEngine`]: the concurrency wrapper that lets many sessions (CLI
//! shells, server connections, benchmark threads) drive one [`HermesEngine`].
//!
//! The engine's read paths (`run_s2t`, `run_qut`, range queries, statistics)
//! all take `&self`, so any number of readers proceed in parallel under the
//! read lock; DDL, ingest and `BUILD INDEX` serialize through the write lock.
//! Cloning a `SharedEngine` clones the handle, not the engine.

use crate::engine::HermesEngine;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A cloneable, thread-safe handle to one [`HermesEngine`].
#[derive(Clone, Default)]
pub struct SharedEngine {
    inner: Arc<RwLock<HermesEngine>>,
}

impl SharedEngine {
    /// Wraps an engine for shared use.
    pub fn new(engine: HermesEngine) -> Self {
        SharedEngine {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Acquires the read lock. Readers run concurrently with each other and
    /// block only while a writer holds the engine.
    ///
    /// A poisoned lock (a panic on another thread mid-operation) is recovered
    /// rather than propagated: the engine's state transitions are applied
    /// whole, and a server must keep answering after one bad connection.
    pub fn read(&self) -> RwLockReadGuard<'_, HermesEngine> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the write lock, excluding all readers and writers.
    pub fn write(&self) -> RwLockWriteGuard<'_, HermesEngine> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` under the read lock.
    pub fn with_read<R>(&self, f: impl FnOnce(&HermesEngine) -> R) -> R {
        f(&self.read())
    }

    /// Runs `f` under the write lock.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut HermesEngine) -> R) -> R {
        f(&mut self.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Timestamp, Trajectory};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn traj(id: u64, y: f64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..30)
                .map(|i| Point::new(i as f64 * 100.0, y, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn handles_share_one_engine() {
        let shared = SharedEngine::default();
        shared.write().create_dataset("a").unwrap();
        let other = shared.clone();
        assert_eq!(other.read().list_datasets(), vec!["a".to_string()]);
    }

    #[test]
    fn concurrent_readers_with_a_writer() {
        let shared = SharedEngine::default();
        {
            let mut e = shared.write();
            e.create_dataset("d").unwrap();
            e.load_trajectories("d", (0..12).map(|i| traj(i, i as f64 * 10.0)).collect())
                .unwrap();
        }
        let reads = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let shared = shared.clone();
            let reads = Arc::clone(&reads);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let info = shared.read().dataset_info("d").unwrap();
                    // The concurrent writer may or may not have landed yet,
                    // but a reader never observes a torn state.
                    assert!(info.num_trajectories == 12 || info.num_trajectories == 13);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        // A writer interleaves with the readers.
        shared
            .write()
            .load_trajectories("d", vec![traj(99, 500.0)])
            .unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reads.load(Ordering::Relaxed), 80);
        assert_eq!(
            shared.read().dataset_info("d").unwrap().num_trajectories,
            13
        );
    }
}
