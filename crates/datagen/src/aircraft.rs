//! Terminal-area aircraft traffic generator.
//!
//! Reproduces the structure of the paper's demonstration dataset ("aircrafts
//! approaching airports of the London metropolitan area"):
//!
//! * several **arrival streams** (approach corridors), each entering the
//!   terminal area at its own entry fix and converging on the airport,
//! * flights arrive in **waves**, so flights of the same stream and wave
//!   co-move — the signal S2T-Clustering is designed to pick up,
//! * a configurable fraction of flights performs a **holding pattern**
//!   (racetrack loops) before final approach — the pattern of Fig. 4,
//! * **stragglers** that cross the area on their own (the outliers),
//! * Gaussian GPS noise on every sample.
//!
//! Distances are metres, speeds metres/second, times milliseconds.

use crate::noise::NoiseModel;
use crate::rng::SplitMix64;
use hermes_trajectory::{Point, Timestamp, Trajectory};
use std::f64::consts::PI;

/// Configuration of an aircraft scenario. Build with
/// [`AircraftScenarioBuilder`].
#[derive(Debug, Clone)]
pub struct AircraftScenarioBuilder {
    /// PRNG seed; identical seeds give identical datasets.
    pub seed: u64,
    /// Number of arrival streams (approach corridors).
    pub num_streams: usize,
    /// Number of arrival waves per stream.
    pub waves_per_stream: usize,
    /// Flights per wave.
    pub flights_per_wave: usize,
    /// Number of straggler flights crossing the area independently.
    pub num_stragglers: usize,
    /// Probability that a flight performs a holding pattern.
    pub holding_probability: f64,
    /// Number of racetrack loops flown while holding.
    pub holding_loops: usize,
    /// Radius of the terminal area (entry fixes sit on this circle), metres.
    pub terminal_radius: f64,
    /// Approach ground speed in m/s.
    pub approach_speed: f64,
    /// Sampling period of the simulated surveillance feed.
    pub sample_period_ms: i64,
    /// Start of the scenario.
    pub start: Timestamp,
    /// Temporal spacing between consecutive waves.
    pub wave_spacing_ms: i64,
    /// Temporal jitter of flights within a wave.
    pub intra_wave_jitter_ms: i64,
    /// Lateral corridor spread (how far flights of one stream deviate
    /// laterally from the corridor centreline), metres.
    pub corridor_spread: f64,
    /// GPS noise.
    pub noise: NoiseModel,
}

impl Default for AircraftScenarioBuilder {
    fn default() -> Self {
        AircraftScenarioBuilder {
            seed: 0xA1C,
            num_streams: 4,
            waves_per_stream: 3,
            flights_per_wave: 6,
            num_stragglers: 5,
            holding_probability: 0.25,
            holding_loops: 2,
            terminal_radius: 60_000.0,
            approach_speed: 110.0,
            sample_period_ms: 10_000,
            start: Timestamp(0),
            wave_spacing_ms: 45 * 60_000,
            intra_wave_jitter_ms: 3 * 60_000,
            corridor_spread: 600.0,
            noise: NoiseModel {
                position_sigma: 40.0,
                time_sigma_ms: 0.0,
            },
        }
    }
}

/// A generated aircraft dataset.
#[derive(Debug, Clone)]
pub struct AircraftScenario {
    /// All generated trajectories (stream flights first, stragglers last).
    pub trajectories: Vec<Trajectory>,
    /// Stream index of each stream flight, aligned with `trajectories`
    /// (stragglers have no entry).
    pub stream_of: Vec<usize>,
    /// Ids of flights that performed a holding pattern.
    pub holding_flight_ids: Vec<u64>,
    /// Ids of the straggler (outlier) flights.
    pub straggler_ids: Vec<u64>,
}

impl AircraftScenario {
    /// Total number of flights.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// True when the scenario is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }
}

impl AircraftScenarioBuilder {
    /// Generates the scenario.
    pub fn build(&self) -> AircraftScenario {
        let mut rng = SplitMix64::new(self.seed);
        let mut trajectories = Vec::new();
        let mut stream_of = Vec::new();
        let mut holding_flight_ids = Vec::new();
        let mut straggler_ids = Vec::new();
        let mut next_id: u64 = 0;

        for stream in 0..self.num_streams {
            let entry_angle = 2.0 * PI * stream as f64 / self.num_streams.max(1) as f64;
            for wave in 0..self.waves_per_stream {
                let wave_start = self.start.millis()
                    + (stream as i64 * self.wave_spacing_ms / self.num_streams.max(1) as i64)
                    + wave as i64 * self.wave_spacing_ms;
                for _ in 0..self.flights_per_wave {
                    let depart =
                        wave_start + (rng.next_f64() * self.intra_wave_jitter_ms as f64) as i64;
                    let holds = rng.chance(self.holding_probability);
                    let lateral = rng.gaussian() * self.corridor_spread;
                    let traj = self.flight(next_id, entry_angle, lateral, depart, holds, &mut rng);
                    if holds {
                        holding_flight_ids.push(next_id);
                    }
                    trajectories.push(traj);
                    stream_of.push(stream);
                    next_id += 1;
                }
            }
        }

        for _ in 0..self.num_stragglers {
            let traj = self.straggler(next_id, &mut rng);
            straggler_ids.push(next_id);
            trajectories.push(traj);
            next_id += 1;
        }

        AircraftScenario {
            trajectories,
            stream_of,
            holding_flight_ids,
            straggler_ids,
        }
    }

    /// Generates one arrival flight: entry fix → corridor → (optional
    /// holding racetrack) → final approach → airport.
    fn flight(
        &self,
        id: u64,
        entry_angle: f64,
        lateral: f64,
        depart_ms: i64,
        holds: bool,
        rng: &mut SplitMix64,
    ) -> Trajectory {
        let r = self.terminal_radius;
        // Unit vector pointing from the entry fix towards the airport (origin).
        let dir = (-entry_angle.cos(), -entry_angle.sin());
        // Perpendicular (lateral) unit vector.
        let perp = (-dir.1, dir.0);

        let entry = (
            entry_angle.cos() * r + perp.0 * lateral,
            entry_angle.sin() * r + perp.1 * lateral,
        );
        // Holding fix sits 1/3 of the way in; final approach fix at 1/6.
        let holding_fix = (
            entry.0 + dir.0 * r * (2.0 / 3.0),
            entry.1 + dir.1 * r * (2.0 / 3.0),
        );
        let faf = (
            entry.0 + dir.0 * r * (5.0 / 6.0),
            entry.1 + dir.1 * r * (5.0 / 6.0),
        );
        let airport = (perp.0 * lateral * 0.1, perp.1 * lateral * 0.1);

        // Way-point polyline with per-leg speeds.
        let mut waypoints: Vec<(f64, f64)> = vec![entry, holding_fix];
        if holds {
            // Racetrack: loops of a small circle centred near the holding fix.
            let loop_radius = 3_000.0 + rng.range(0.0, 800.0);
            let steps = 12usize;
            for l in 0..self.holding_loops {
                for s in 0..steps {
                    let a = 2.0 * PI * (l * steps + s) as f64 / steps as f64;
                    waypoints.push((
                        holding_fix.0 + loop_radius * a.cos() - loop_radius,
                        holding_fix.1 + loop_radius * a.sin(),
                    ));
                }
            }
            waypoints.push(holding_fix);
        }
        waypoints.push(faf);
        waypoints.push(airport);

        self.sample_path(id, &waypoints, depart_ms, self.approach_speed, rng)
    }

    /// Generates one straggler crossing the terminal area on a random chord,
    /// far enough from the corridors to stay unclustered.
    fn straggler(&self, id: u64, rng: &mut SplitMix64) -> Trajectory {
        let r = self.terminal_radius * 1.2;
        let a = rng.range(0.0, 2.0 * PI);
        let b = a + PI + rng.range(-0.4, 0.4);
        // Offset the chord so it misses the airport (where corridors converge).
        let offset = self.terminal_radius * 0.45 + rng.range(0.0, self.terminal_radius * 0.2);
        let off_dir = a + PI / 2.0;
        let from = (
            a.cos() * r + off_dir.cos() * offset,
            a.sin() * r + off_dir.sin() * offset,
        );
        let to = (
            b.cos() * r + off_dir.cos() * offset,
            b.sin() * r + off_dir.sin() * offset,
        );
        let depart = self.start.millis()
            + (rng.next_f64() * self.waves_per_stream as f64 * self.wave_spacing_ms as f64) as i64;
        self.sample_path(id, &[from, to], depart, self.approach_speed * 1.6, rng)
    }

    /// Walks a way-point polyline at constant speed, emitting a sample every
    /// `sample_period_ms`, then applies GPS noise.
    fn sample_path(
        &self,
        id: u64,
        waypoints: &[(f64, f64)],
        depart_ms: i64,
        speed: f64,
        rng: &mut SplitMix64,
    ) -> Trajectory {
        let mut pts: Vec<Point> = Vec::new();
        let mut t_ms = depart_ms as f64;
        let mut pos = waypoints[0];
        pts.push(Point::new(pos.0, pos.1, Timestamp(t_ms as i64)));
        let step_s = self.sample_period_ms as f64 / 1_000.0;

        for leg in waypoints.windows(2) {
            let (from, to) = (leg[0], leg[1]);
            let leg_len = ((to.0 - from.0).powi(2) + (to.1 - from.1).powi(2)).sqrt();
            if leg_len == 0.0 {
                continue;
            }
            let mut travelled = ((pos.0 - from.0).powi(2) + (pos.1 - from.1).powi(2)).sqrt();
            while travelled + speed * step_s < leg_len {
                travelled += speed * step_s;
                t_ms += self.sample_period_ms as f64;
                let f = travelled / leg_len;
                pos = (from.0 + (to.0 - from.0) * f, from.1 + (to.1 - from.1) * f);
                pts.push(Point::new(pos.0, pos.1, Timestamp(t_ms as i64)));
            }
            // Jump to the way-point itself so the path does not cut corners.
            let remaining = leg_len - travelled;
            if remaining > 0.0 {
                t_ms += (remaining / speed * 1_000.0).max(1.0);
                pos = to;
                pts.push(Point::new(pos.0, pos.1, Timestamp(t_ms as i64)));
            }
        }

        let raw = Trajectory::new(id, id, pts).expect("generated samples are valid");
        crate::noise::perturb_trajectory(&raw, &self.noise, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::TrajectoryStats;

    fn small() -> AircraftScenarioBuilder {
        AircraftScenarioBuilder {
            seed: 7,
            num_streams: 3,
            waves_per_stream: 2,
            flights_per_wave: 4,
            num_stragglers: 3,
            holding_probability: 0.5,
            ..AircraftScenarioBuilder::default()
        }
    }

    #[test]
    fn scenario_has_the_requested_cardinality() {
        let s = small().build();
        assert_eq!(s.len(), 3 * 2 * 4 + 3);
        assert_eq!(s.stream_of.len(), 24);
        assert_eq!(s.straggler_ids.len(), 3);
        // Ids are unique.
        let mut ids: Vec<u64> = s.trajectories.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), s.len());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small().build();
        let b = small().build();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.trajectories.iter().zip(b.trajectories.iter()) {
            assert_eq!(x.points(), y.points());
        }
        let mut other = small();
        other.seed = 8;
        let c = other.build();
        let identical = a
            .trajectories
            .iter()
            .zip(c.trajectories.iter())
            .filter(|(x, y)| x.points() == y.points())
            .count();
        assert_eq!(identical, 0, "a different seed must change the data");
    }

    #[test]
    fn flights_converge_on_the_airport() {
        let s = small().build();
        for (i, t) in s.trajectories.iter().enumerate() {
            if s.straggler_ids.contains(&t.id) {
                continue;
            }
            let last = t.points().last().unwrap();
            let dist_to_airport = (last.x * last.x + last.y * last.y).sqrt();
            assert!(
                dist_to_airport < 2_000.0,
                "flight {i} ends {dist_to_airport:.0} m from the airport"
            );
        }
    }

    #[test]
    fn holding_flights_have_higher_sinuosity() {
        let mut b = small();
        b.noise = NoiseModel::none();
        let s = b.build();
        assert!(!s.holding_flight_ids.is_empty());
        let sinuosity = |id: u64| {
            let t = s.trajectories.iter().find(|t| t.id == id).unwrap();
            TrajectoryStats::compute(t).sinuosity
        };
        let holding_mean: f64 = s
            .holding_flight_ids
            .iter()
            .map(|&i| sinuosity(i))
            .sum::<f64>()
            / s.holding_flight_ids.len() as f64;
        let normal: Vec<u64> = s
            .trajectories
            .iter()
            .map(|t| t.id)
            .filter(|id| !s.holding_flight_ids.contains(id) && !s.straggler_ids.contains(id))
            .collect();
        let normal_mean: f64 =
            normal.iter().map(|&i| sinuosity(i)).sum::<f64>() / normal.len() as f64;
        assert!(
            holding_mean > normal_mean * 1.1,
            "holding {holding_mean:.3} vs normal {normal_mean:.3}"
        );
    }

    #[test]
    fn flights_in_the_same_wave_overlap_in_time() {
        let s = small().build();
        // First wave of stream 0 = flights 0..4.
        let spans: Vec<_> = (0..4).map(|i| s.trajectories[i].lifespan()).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    spans[i].intersects(&spans[j]),
                    "wave members must temporally co-exist"
                );
            }
        }
    }

    #[test]
    fn stragglers_stay_away_from_the_airport() {
        let s = small().build();
        for id in &s.straggler_ids {
            let t = s.trajectories.iter().find(|t| t.id == *id).unwrap();
            let min_dist = t
                .points()
                .iter()
                .map(|p| (p.x * p.x + p.y * p.y).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_dist > 10_000.0,
                "straggler {id} passes {min_dist:.0} m from the airport"
            );
        }
    }

    #[test]
    fn sampling_period_is_respected() {
        let mut b = small();
        b.noise = NoiseModel::none();
        let s = b.build();
        let t = &s.trajectories[0];
        let mut gaps: Vec<i64> = t
            .points()
            .windows(2)
            .map(|w| (w[1].t - w[0].t).millis())
            .collect();
        gaps.sort_unstable();
        // The most common gap equals the sampling period (way-point snapping
        // introduces a few shorter ones).
        let median = gaps[gaps.len() / 2];
        assert_eq!(median, b.sample_period_ms);
    }
}
