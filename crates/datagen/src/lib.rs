//! # hermes-datagen
//!
//! Synthetic Moving Object Database generators.
//!
//! The demo evaluates on a proprietary MOD of aircraft approaching the London
//! airports (plus maritime and urban examples it mentions in passing). Those
//! datasets are not distributable, so this crate generates seeded, synthetic
//! equivalents that exhibit the structures the experiments rely on:
//!
//! * [`aircraft`] — terminal-area traffic: arrival streams funnelled through
//!   approach corridors, optional **holding patterns** (the racetrack loops of
//!   Fig. 4), a cruise → holding → landing phase structure, and stragglers
//!   that belong to no stream (outliers),
//! * [`maritime`] — vessels following shipping lanes at low speed,
//! * [`urban`] — vehicles moving on a Manhattan grid with stops,
//! * [`noise`] — GPS jitter and outlier-object injection shared by all
//!   generators.
//!
//! Every generator is deterministic for a given seed (a small xorshift PRNG is
//! embedded so the crate does not depend on `rand`'s distribution details for
//! reproducibility across versions; `rand` is still used where a generator
//! benefits from higher-level sampling).
//!
//! **Layer:** test/bench support — seeded, deterministic inputs for the
//! determinism harnesses (`tests/*_determinism.rs`, `tests/persistence.rs`)
//! and the experiments in `crates/bench`. See `docs/ARCHITECTURE.md` for
//! where the workloads are consumed.

pub mod aircraft;
pub mod maritime;
pub mod noise;
pub mod rng;
pub mod urban;

pub use aircraft::{AircraftScenario, AircraftScenarioBuilder};
pub use maritime::{MaritimeScenario, MaritimeScenarioBuilder};
pub use noise::NoiseModel;
pub use rng::SplitMix64;
pub use urban::{UrbanScenario, UrbanScenarioBuilder};
