//! Maritime traffic generator: vessels following shipping lanes.
//!
//! The demo mentions that "it is straightforward to employ datasets from
//! other domains, such as maritime or urban traffic movement"; this generator
//! provides the maritime equivalent used by the `vessel_lanes` example.

use crate::noise::NoiseModel;
use crate::rng::SplitMix64;
use hermes_trajectory::{Point, Timestamp, Trajectory};

/// Configuration of a maritime scenario.
#[derive(Debug, Clone)]
pub struct MaritimeScenarioBuilder {
    /// PRNG seed.
    pub seed: u64,
    /// Number of shipping lanes (straight port-to-port corridors).
    pub num_lanes: usize,
    /// Vessels per lane.
    pub vessels_per_lane: usize,
    /// Number of free-roaming vessels (outliers).
    pub num_rogues: usize,
    /// Length of a lane in metres.
    pub lane_length: f64,
    /// Lateral spread of vessels around the lane centreline, metres.
    pub lane_width: f64,
    /// Vessel speed in m/s.
    pub speed: f64,
    /// Sampling period.
    pub sample_period_ms: i64,
    /// Scenario start.
    pub start: Timestamp,
    /// Departure spread of vessels within one lane, milliseconds. Small
    /// values produce convoys (strong co-movement), large values spread the
    /// vessels out.
    pub departure_spread_ms: i64,
    /// GPS noise.
    pub noise: NoiseModel,
}

impl Default for MaritimeScenarioBuilder {
    fn default() -> Self {
        MaritimeScenarioBuilder {
            seed: 0x5EA,
            num_lanes: 3,
            vessels_per_lane: 8,
            num_rogues: 4,
            lane_length: 80_000.0,
            lane_width: 500.0,
            speed: 8.0,
            sample_period_ms: 60_000,
            start: Timestamp(0),
            departure_spread_ms: 10 * 60_000,
            noise: NoiseModel {
                position_sigma: 20.0,
                time_sigma_ms: 0.0,
            },
        }
    }
}

/// A generated maritime dataset.
#[derive(Debug, Clone)]
pub struct MaritimeScenario {
    /// All vessel trajectories (lane vessels first, rogues last).
    pub trajectories: Vec<Trajectory>,
    /// Lane index per lane vessel.
    pub lane_of: Vec<usize>,
    /// Ids of the rogue vessels.
    pub rogue_ids: Vec<u64>,
}

impl MaritimeScenarioBuilder {
    /// Generates the scenario.
    pub fn build(&self) -> MaritimeScenario {
        let mut rng = SplitMix64::new(self.seed);
        let mut trajectories = Vec::new();
        let mut lane_of = Vec::new();
        let mut rogue_ids = Vec::new();
        let mut id: u64 = 0;

        for lane in 0..self.num_lanes {
            // Lanes run west→east, stacked north of each other.
            let y0 = lane as f64 * self.lane_length / 4.0;
            for _ in 0..self.vessels_per_lane {
                let depart =
                    self.start.millis() + (rng.next_f64() * self.departure_spread_ms as f64) as i64;
                let lateral = rng.gaussian() * self.lane_width;
                let traj = self.sail(
                    id,
                    (0.0, y0 + lateral),
                    (self.lane_length, y0 + lateral),
                    depart,
                    &mut rng,
                );
                trajectories.push(traj);
                lane_of.push(lane);
                id += 1;
            }
        }
        for _ in 0..self.num_rogues {
            let from = (
                rng.range(0.0, self.lane_length),
                -self.lane_length * 0.5 - rng.range(0.0, self.lane_length * 0.3),
            );
            let to = (rng.range(0.0, self.lane_length), -self.lane_length * 1.2);
            let depart =
                self.start.millis() + (rng.next_f64() * self.departure_spread_ms as f64) as i64;
            let traj = self.sail(id, from, to, depart, &mut rng);
            rogue_ids.push(id);
            trajectories.push(traj);
            id += 1;
        }

        MaritimeScenario {
            trajectories,
            lane_of,
            rogue_ids,
        }
    }

    fn sail(
        &self,
        id: u64,
        from: (f64, f64),
        to: (f64, f64),
        depart_ms: i64,
        rng: &mut SplitMix64,
    ) -> Trajectory {
        let len = ((to.0 - from.0).powi(2) + (to.1 - from.1).powi(2)).sqrt();
        let duration_s = len / self.speed;
        let steps = ((duration_s * 1_000.0) / self.sample_period_ms as f64).ceil() as usize;
        let mut pts = Vec::with_capacity(steps + 1);
        for i in 0..=steps.max(1) {
            let f = i as f64 / steps.max(1) as f64;
            pts.push(Point::new(
                from.0 + (to.0 - from.0) * f,
                from.1 + (to.1 - from.1) * f,
                Timestamp(depart_ms + (f * duration_s * 1_000.0) as i64),
            ));
        }
        let raw = Trajectory::new(id, id, pts).expect("generated samples are valid");
        crate::noise::perturb_trajectory(&raw, &self.noise, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_and_determinism() {
        let b = MaritimeScenarioBuilder {
            seed: 3,
            ..MaritimeScenarioBuilder::default()
        };
        let s1 = b.build();
        let s2 = b.build();
        assert_eq!(s1.trajectories.len(), 3 * 8 + 4);
        assert_eq!(s1.lane_of.len(), 24);
        assert_eq!(s1.rogue_ids.len(), 4);
        for (a, b) in s1.trajectories.iter().zip(s2.trajectories.iter()) {
            assert_eq!(a.points(), b.points());
        }
    }

    #[test]
    fn lane_vessels_stay_near_their_lane() {
        let b = MaritimeScenarioBuilder {
            noise: NoiseModel::none(),
            ..MaritimeScenarioBuilder::default()
        };
        let s = b.build();
        for (i, lane) in s.lane_of.iter().enumerate() {
            let expected_y = *lane as f64 * b.lane_length / 4.0;
            let t = &s.trajectories[i];
            for p in t.points() {
                assert!(
                    (p.y - expected_y).abs() < b.lane_width * 6.0,
                    "vessel {i} strays {:.0} m from lane {lane}",
                    (p.y - expected_y).abs()
                );
            }
        }
    }

    #[test]
    fn rogues_are_away_from_the_lanes() {
        let s = MaritimeScenarioBuilder::default().build();
        for id in &s.rogue_ids {
            let t = s.trajectories.iter().find(|t| t.id == *id).unwrap();
            assert!(t.points().iter().all(|p| p.y < -1_000.0));
        }
    }

    #[test]
    fn vessel_speed_matches_configuration() {
        let b = MaritimeScenarioBuilder {
            noise: NoiseModel::none(),
            ..MaritimeScenarioBuilder::default()
        };
        let s = b.build();
        let t = &s.trajectories[0];
        let stats = hermes_trajectory::TrajectoryStats::compute(t);
        assert!((stats.mean_speed - b.speed).abs() < 0.5);
    }
}
