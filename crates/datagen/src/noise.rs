//! Measurement-noise and outlier injection shared by all generators.

use crate::rng::SplitMix64;
use hermes_trajectory::{Point, Timestamp, Trajectory};

/// Gaussian GPS jitter applied to every generated sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the positional jitter, in spatial units.
    pub position_sigma: f64,
    /// Standard deviation of the per-sample timestamp jitter, in
    /// milliseconds (samples stay strictly ordered).
    pub time_sigma_ms: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            position_sigma: 5.0,
            time_sigma_ms: 0.0,
        }
    }
}

impl NoiseModel {
    /// A noiseless model (useful for tests that need exact geometry).
    pub fn none() -> Self {
        NoiseModel {
            position_sigma: 0.0,
            time_sigma_ms: 0.0,
        }
    }

    /// Applies jitter to a point.
    pub fn perturb(&self, p: Point, rng: &mut SplitMix64) -> Point {
        let dx = rng.gaussian() * self.position_sigma;
        let dy = rng.gaussian() * self.position_sigma;
        let dt = (rng.gaussian() * self.time_sigma_ms) as i64;
        Point::new(p.x + dx, p.y + dy, Timestamp(p.t.millis() + dt))
    }
}

/// Applies a noise model to an entire trajectory, preserving strict temporal
/// order by sorting and de-duplicating timestamps afterwards.
pub fn perturb_trajectory(
    traj: &Trajectory,
    noise: &NoiseModel,
    rng: &mut SplitMix64,
) -> Trajectory {
    let mut pts: Vec<Point> = traj
        .points()
        .iter()
        .map(|p| noise.perturb(*p, rng))
        .collect();
    pts.sort_by_key(|p| p.t);
    pts.dedup_by_key(|p| p.t);
    Trajectory::new(traj.id, traj.object_id, pts).unwrap_or_else(|_| traj.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(id: u64) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..20)
                .map(|i| Point::new(i as f64 * 100.0, 0.0, Timestamp(i as i64 * 10_000)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zero_noise_is_identity() {
        let t = straight(1);
        let mut rng = SplitMix64::new(1);
        let n = perturb_trajectory(&t, &NoiseModel::none(), &mut rng);
        assert_eq!(n.points(), t.points());
    }

    #[test]
    fn noise_moves_points_but_preserves_validity() {
        let t = straight(1);
        let mut rng = SplitMix64::new(1);
        let noise = NoiseModel {
            position_sigma: 10.0,
            time_sigma_ms: 500.0,
        };
        let n = perturb_trajectory(&t, &noise, &mut rng);
        assert_eq!(n.id, t.id);
        assert!(n.len() >= 2);
        // Strict temporal order is preserved.
        for w in n.points().windows(2) {
            assert!(w[0].t < w[1].t);
        }
        // At least some points actually moved.
        let moved = n
            .points()
            .iter()
            .zip(t.points())
            .filter(|(a, b)| a.spatial_distance(b) > 0.1)
            .count();
        assert!(moved > 10);
    }

    #[test]
    fn perturbation_magnitude_tracks_sigma() {
        let t = straight(1);
        let mut rng = SplitMix64::new(9);
        let small = NoiseModel {
            position_sigma: 1.0,
            time_sigma_ms: 0.0,
        };
        let large = NoiseModel {
            position_sigma: 50.0,
            time_sigma_ms: 0.0,
        };
        let mean_displacement = |n: &Trajectory| {
            n.points()
                .iter()
                .zip(t.points())
                .map(|(a, b)| a.spatial_distance(b))
                .sum::<f64>()
                / n.len() as f64
        };
        let d_small = mean_displacement(&perturb_trajectory(&t, &small, &mut rng));
        let d_large = mean_displacement(&perturb_trajectory(&t, &large, &mut rng));
        assert!(d_large > d_small * 5.0);
    }
}
