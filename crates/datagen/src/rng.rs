//! A tiny, deterministic PRNG (SplitMix64).
//!
//! The generators must produce identical datasets for identical seeds across
//! platforms and dependency upgrades, because EXPERIMENTS.md records numbers
//! against specific seeds. SplitMix64 is 10 lines, passes BigCrush for this
//! usage, and never changes underneath us.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Approximately standard-normal value (sum of 12 uniforms, shifted).
    pub fn gaussian(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.next_f64();
        }
        s - 6.0
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_values_are_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let w = r.range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&w));
            let i = r.index(10);
            assert!(i < 10);
        }
        assert_eq!(r.index(0), 0);
    }

    #[test]
    fn gaussian_is_roughly_centred() {
        let mut r = SplitMix64::new(123);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gaussian()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "sample mean {mean} too far from 0");
    }

    #[test]
    fn chance_respects_probability() {
        let mut r = SplitMix64::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
