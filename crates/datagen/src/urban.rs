//! Urban traffic generator: vehicles on a Manhattan grid.
//!
//! Provides the "urban traffic movement" variant the demo mentions. Vehicles
//! follow L-shaped routes along grid roads (one horizontal and one vertical
//! leg), with a dwell (stop) at the turn — stops matter because the
//! time-aware distance functions must not erase them.

use crate::noise::NoiseModel;
use crate::rng::SplitMix64;
use hermes_trajectory::{Point, Timestamp, Trajectory};

/// Configuration of an urban scenario.
#[derive(Debug, Clone)]
pub struct UrbanScenarioBuilder {
    /// PRNG seed.
    pub seed: u64,
    /// Number of grid rows/columns.
    pub grid_size: usize,
    /// Spacing between grid roads, metres.
    pub block_size: f64,
    /// Number of popular commute corridors; vehicles on the same corridor
    /// share the same route and co-move.
    pub num_corridors: usize,
    /// Vehicles per corridor.
    pub vehicles_per_corridor: usize,
    /// Number of vehicles on random routes (weak or no co-movement).
    pub num_random_vehicles: usize,
    /// Driving speed in m/s.
    pub speed: f64,
    /// Dwell time at the corner turn, milliseconds.
    pub dwell_ms: i64,
    /// Sampling period.
    pub sample_period_ms: i64,
    /// Scenario start.
    pub start: Timestamp,
    /// Departure spread within a corridor, milliseconds.
    pub departure_spread_ms: i64,
    /// GPS noise.
    pub noise: NoiseModel,
}

impl Default for UrbanScenarioBuilder {
    fn default() -> Self {
        UrbanScenarioBuilder {
            seed: 0xC17,
            grid_size: 10,
            block_size: 400.0,
            num_corridors: 3,
            vehicles_per_corridor: 6,
            num_random_vehicles: 6,
            speed: 12.0,
            dwell_ms: 90_000,
            sample_period_ms: 15_000,
            start: Timestamp(0),
            departure_spread_ms: 5 * 60_000,
            noise: NoiseModel {
                position_sigma: 8.0,
                time_sigma_ms: 0.0,
            },
        }
    }
}

/// A generated urban dataset.
#[derive(Debug, Clone)]
pub struct UrbanScenario {
    /// All vehicle trajectories (corridor vehicles first).
    pub trajectories: Vec<Trajectory>,
    /// Corridor index per corridor vehicle.
    pub corridor_of: Vec<usize>,
    /// Ids of the random-route vehicles.
    pub random_ids: Vec<u64>,
}

impl UrbanScenarioBuilder {
    /// Generates the scenario.
    pub fn build(&self) -> UrbanScenario {
        let mut rng = SplitMix64::new(self.seed);
        let mut trajectories = Vec::new();
        let mut corridor_of = Vec::new();
        let mut random_ids = Vec::new();
        let mut id: u64 = 0;
        let g = self.grid_size.max(2);

        // Pick the corridor routes once so all their vehicles share them.
        let mut corridors = Vec::with_capacity(self.num_corridors);
        for _ in 0..self.num_corridors {
            corridors.push(self.random_route(&mut rng, g));
        }

        for (ci, route) in corridors.iter().enumerate() {
            for _ in 0..self.vehicles_per_corridor {
                let depart =
                    self.start.millis() + (rng.next_f64() * self.departure_spread_ms as f64) as i64;
                trajectories.push(self.drive(id, route, depart, &mut rng));
                corridor_of.push(ci);
                id += 1;
            }
        }
        for _ in 0..self.num_random_vehicles {
            let route = self.random_route(&mut rng, g);
            let depart = self.start.millis()
                + (rng.next_f64() * self.departure_spread_ms as f64 * 4.0) as i64;
            random_ids.push(id);
            trajectories.push(self.drive(id, &route, depart, &mut rng));
            id += 1;
        }

        UrbanScenario {
            trajectories,
            corridor_of,
            random_ids,
        }
    }

    /// An L-shaped route between two random grid intersections.
    fn random_route(&self, rng: &mut SplitMix64, g: usize) -> [(f64, f64); 3] {
        let b = self.block_size;
        let (x0, y0) = (rng.index(g) as f64 * b, rng.index(g) as f64 * b);
        let (mut x1, mut y1) = (rng.index(g) as f64 * b, rng.index(g) as f64 * b);
        // Ensure the route actually moves on both axes.
        if x1 == x0 {
            x1 = (x0 + b).min((g - 1) as f64 * b);
        }
        if y1 == y0 {
            y1 = (y0 + b).min((g - 1) as f64 * b);
        }
        [(x0, y0), (x1, y0), (x1, y1)]
    }

    /// Drives a route with a dwell at the corner.
    fn drive(
        &self,
        id: u64,
        route: &[(f64, f64); 3],
        depart_ms: i64,
        rng: &mut SplitMix64,
    ) -> Trajectory {
        let mut pts: Vec<Point> = Vec::new();
        let mut t_ms = depart_ms as f64;
        for (li, leg) in route.windows(2).enumerate() {
            let (from, to) = (leg[0], leg[1]);
            let len = ((to.0 - from.0).powi(2) + (to.1 - from.1).powi(2)).sqrt();
            let duration_ms = len / self.speed * 1_000.0;
            let steps = (duration_ms / self.sample_period_ms as f64).ceil().max(1.0) as usize;
            for i in 0..=steps {
                let f = i as f64 / steps as f64;
                let t = Timestamp((t_ms + duration_ms * f) as i64);
                // Skip duplicate corner sample at the start of the second leg.
                if li > 0 && i == 0 {
                    continue;
                }
                pts.push(Point::new(
                    from.0 + (to.0 - from.0) * f,
                    from.1 + (to.1 - from.1) * f,
                    t,
                ));
            }
            t_ms += duration_ms;
            if li == 0 {
                // Dwell at the corner: one sample at the same place, later.
                t_ms += self.dwell_ms as f64;
                pts.push(Point::new(to.0, to.1, Timestamp(t_ms as i64)));
            }
        }
        let raw = Trajectory::new(id, id, pts).expect("generated samples are valid");
        crate::noise::perturb_trajectory(&raw, &self.noise, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_and_determinism() {
        let b = UrbanScenarioBuilder::default();
        let s1 = b.build();
        let s2 = b.build();
        assert_eq!(s1.trajectories.len(), 3 * 6 + 6);
        for (a, b) in s1.trajectories.iter().zip(s2.trajectories.iter()) {
            assert_eq!(a.points(), b.points());
        }
    }

    #[test]
    fn corridor_vehicles_share_their_route() {
        let b = UrbanScenarioBuilder {
            noise: NoiseModel::none(),
            ..UrbanScenarioBuilder::default()
        };
        let s = b.build();
        // Vehicles of corridor 0 start and end at the same grid points.
        let first: Vec<&Trajectory> = s
            .trajectories
            .iter()
            .zip(s.corridor_of.iter())
            .filter(|(_, c)| **c == 0)
            .map(|(t, _)| t)
            .collect();
        assert!(first.len() > 1);
        let start0 = first[0].points().first().unwrap();
        let end0 = first[0].points().last().unwrap();
        for t in &first[1..] {
            let s_p = t.points().first().unwrap();
            let e_p = t.points().last().unwrap();
            assert!(start0.spatial_distance(s_p) < 1.0);
            assert!(end0.spatial_distance(e_p) < 1.0);
        }
    }

    #[test]
    fn vehicles_stop_at_the_corner() {
        let b = UrbanScenarioBuilder {
            noise: NoiseModel::none(),
            ..UrbanScenarioBuilder::default()
        };
        let s = b.build();
        let t = &s.trajectories[0];
        // At least one inter-sample gap equals the dwell time.
        let has_dwell = t
            .points()
            .windows(2)
            .any(|w| (w[1].t - w[0].t).millis() >= b.dwell_ms);
        assert!(has_dwell, "expected a dwell gap in the sampled trajectory");
    }

    #[test]
    fn points_stay_on_the_grid_extent() {
        let b = UrbanScenarioBuilder {
            noise: NoiseModel::none(),
            ..UrbanScenarioBuilder::default()
        };
        let s = b.build();
        let max = (b.grid_size - 1) as f64 * b.block_size;
        for t in &s.trajectories {
            for p in t.points() {
                assert!(p.x >= -1.0 && p.x <= max + 1.0);
                assert!(p.y >= -1.0 && p.y <= max + 1.0);
            }
        }
    }
}
