//! # hermes-exec
//!
//! A std-only work scheduler for intra-query parallelism: a fixed
//! [`ThreadPool`] plus the scoped fork-join combinators the compute layers
//! (`hermes-s2t` voting/segmentation, `hermes-retratree` QuT and index
//! build) fan out on.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — [`Executor::map`] returns results in input order,
//!    written into per-index slots, so parallel output is byte-identical to
//!    the serial path no matter how the scheduler interleaves.
//! 2. **Panic propagation** — a panicking task is caught on the worker, the
//!    job drains, and the payload is re-raised on the calling thread, exactly
//!    like `std::thread::scope`.
//! 3. **No dependencies** — `std::thread` + `Mutex`/`Condvar`/atomics only.
//!
//! An [`Executor`] is a cheap, cloneable handle: serial (no pool, closures
//! run inline on the caller) or parallel (shared [`ThreadPool`]). Every
//! `*_with` entry point in the compute crates takes `&Executor`, and the
//! plain entry points pass [`Executor::serial`], so single-threaded callers
//! pay nothing.
//!
//! ```
//! use hermes_exec::{ExecPolicy, Executor};
//!
//! let exec = Executor::new(ExecPolicy { threads: 4 });
//! let squares = exec.map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // input order, always
//! assert_eq!(exec.threads(), 4);
//! ```
//!
//! **Layer:** infrastructure under every compute crate. Key types:
//! [`ExecPolicy`], [`Executor`], [`ThreadPool`]. The pool design, fork-join
//! points and lock interaction are documented in
//! `docs/ARCHITECTURE.md` § "Execution model".

mod pool;

pub use pool::ThreadPool;

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::Arc;

/// How much intra-query parallelism an engine is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Compute threads per fork-join region, counting the calling thread
    /// (so `1` means serial). Never 0 — construct through [`ExecPolicy::new`]
    /// when the value comes from user input.
    pub threads: usize,
}

impl ExecPolicy {
    /// Most threads a policy will accept. Each pool worker is a real OS
    /// thread reserved up front, so an unbounded `SET threads` from a remote
    /// client could exhaust process limits; beyond any plausible core count
    /// the request is a mistake or an attack, not a tuning choice.
    pub const MAX_THREADS: usize = 256;

    /// The serial policy: everything runs inline on the calling thread.
    pub fn serial() -> ExecPolicy {
        ExecPolicy { threads: 1 }
    }

    /// The single validated constructor for user-supplied counts (SQL `SET
    /// threads`, `--threads` flags): `0` and anything above
    /// [`ExecPolicy::MAX_THREADS`] are rejected with a descriptive error.
    pub fn new(threads: usize) -> Result<ExecPolicy, String> {
        if threads == 0 {
            return Err("threads expects a positive thread count, got 0".into());
        }
        if threads > Self::MAX_THREADS {
            return Err(format!(
                "threads expects at most {}, got {threads}",
                Self::MAX_THREADS
            ));
        }
        Ok(ExecPolicy { threads })
    }

    /// The deployment default: `HERMES_THREADS` when set to a valid count,
    /// otherwise the machine's available parallelism. This is what an engine
    /// starts with before any `SET threads` / `--threads` override.
    pub fn from_env() -> ExecPolicy {
        if let Ok(raw) = std::env::var("HERMES_THREADS") {
            if let Some(policy) = raw
                .trim()
                .parse::<usize>()
                .ok()
                .and_then(|n| ExecPolicy::new(n).ok())
            {
                return policy;
            }
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(Self::MAX_THREADS);
        ExecPolicy { threads }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::serial()
    }
}

/// A handle to an execution strategy: inline (serial) or a shared
/// [`ThreadPool`]. Cloning clones the handle; clones share the pool.
#[derive(Clone, Default)]
pub struct Executor {
    pool: Option<Arc<ThreadPool>>,
    threads: usize,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads())
            .finish()
    }
}

/// A per-index result slot. Each index is claimed exactly once by the pool's
/// `fetch_add` cursor, so slot `i` is written by exactly one task; the
/// `Sync` impl is sound because no two tasks ever alias the same slot.
struct Slot<R>(UnsafeCell<Option<R>>);

unsafe impl<R: Send> Sync for Slot<R> {}

impl Executor {
    /// The inline executor: combinators run on the calling thread, in order.
    pub fn serial() -> Executor {
        Executor {
            pool: None,
            threads: 1,
        }
    }

    /// Builds an executor for `policy`. One thread means serial (no pool);
    /// N > 1 spawns a pool of N−1 workers — the calling thread of each
    /// fork-join region is the Nth pair of hands. A hand-built policy is
    /// clamped to `1..=MAX_THREADS` (validation with errors happens in
    /// [`ExecPolicy::new`]).
    pub fn new(policy: ExecPolicy) -> Executor {
        let threads = policy.threads.clamp(1, ExecPolicy::MAX_THREADS);
        if threads == 1 {
            return Executor::serial();
        }
        Executor {
            pool: Some(Arc::new(ThreadPool::new(threads - 1))),
            threads,
        }
    }

    /// Compute threads per fork-join region (1 for the serial executor).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// True when a pool is attached (i.e. `threads() > 1`).
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Fork-join jobs currently queued on the pool (always 0 for the serial
    /// executor). Exported as a gauge by the serving layer's metrics
    /// endpoint.
    pub fn queue_depth(&self) -> usize {
        self.pool.as_ref().map(|p| p.queue_depth()).unwrap_or(0)
    }

    /// Runs `f(0), f(1), …, f(n-1)` and returns the results **in index
    /// order**, regardless of scheduling. This is the primitive the other
    /// combinators build on.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let Some(pool) = &self.pool else {
            return (0..n).map(f).collect();
        };
        if n <= 1 {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
        pool.run_scoped(n, &|i| {
            let value = f(i);
            // Safety: index `i` is claimed exactly once (see `Slot`).
            unsafe { *slots[i].0.get() = Some(value) };
        });
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("every claimed index completed"))
            .collect()
    }

    /// Fork-join map over a slice, results in input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// Fork-join side-effecting sweep over a slice. The closure must make its
    /// own effects independent per index (e.g. write disjoint slots).
    pub fn for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        match &self.pool {
            None => items.iter().enumerate().for_each(|(i, t)| f(i, t)),
            Some(_) if items.len() <= 1 => items.iter().enumerate().for_each(|(i, t)| f(i, t)),
            Some(pool) => pool.run_scoped(items.len(), &|i| f(i, &items[i])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;
    use std::thread;

    #[test]
    fn policy_rejects_zero_and_oversized_thread_counts() {
        let err = ExecPolicy::new(0).unwrap_err();
        assert!(err.contains("positive thread count"), "{err}");
        let err = ExecPolicy::new(ExecPolicy::MAX_THREADS + 1).unwrap_err();
        assert!(err.contains("at most"), "{err}");
        assert_eq!(ExecPolicy::new(3).unwrap().threads, 3);
        assert_eq!(
            ExecPolicy::new(ExecPolicy::MAX_THREADS).unwrap().threads,
            ExecPolicy::MAX_THREADS
        );
        assert_eq!(ExecPolicy::serial().threads, 1);
        let env = ExecPolicy::from_env().threads;
        assert!((1..=ExecPolicy::MAX_THREADS).contains(&env));
        // Hand-built out-of-range policies are clamped, not spawned.
        let huge = Executor::new(ExecPolicy {
            threads: usize::MAX,
        });
        assert_eq!(huge.threads(), ExecPolicy::MAX_THREADS);
        assert_eq!(Executor::new(ExecPolicy { threads: 0 }).threads(), 1);
    }

    #[test]
    fn serial_and_parallel_map_agree_and_preserve_order() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| (i as u64) * 31 + x * x;
        let serial = Executor::serial().map(&items, f);
        for threads in [2usize, 4, 8] {
            let exec = Executor::new(ExecPolicy { threads });
            assert!(exec.is_parallel());
            assert_eq!(exec.threads(), threads);
            assert_eq!(exec.map(&items, f), serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_indices_handles_degenerate_sizes() {
        let exec = Executor::new(ExecPolicy { threads: 4 });
        assert_eq!(exec.map_indices(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map_indices(1, |i| i + 7), vec![7]);
        let empty: Vec<u8> = Vec::new();
        assert_eq!(exec.map(&empty, |_, &b| b), Vec::<u8>::new());
    }

    #[test]
    fn work_actually_spreads_over_pool_threads() {
        let exec = Executor::new(ExecPolicy { threads: 4 });
        let seen: Mutex<HashSet<thread::ThreadId>> = Mutex::new(HashSet::new());
        // Enough items with enough work each that sleeping workers wake up.
        exec.for_each(&[0u8; 64], |_, _| {
            seen.lock().unwrap().insert(thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let seen = seen.lock().unwrap();
        assert!(
            seen.len() > 1,
            "expected more than one thread to participate, got {}",
            seen.len()
        );
    }

    #[test]
    fn a_panicking_task_propagates_and_leaves_the_pool_usable() {
        let exec = Executor::new(ExecPolicy { threads: 4 });
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.map_indices(16, |i| {
                if i == 11 {
                    panic!("task {i} exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("the task panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("exploded"),
            "unexpected payload: {message}"
        );

        // The pool survived: workers caught the panic and keep serving.
        let after = exec.map_indices(8, |i| i * 2);
        assert_eq!(after, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn nested_fork_join_does_not_deadlock() {
        let exec = Executor::new(ExecPolicy { threads: 2 });
        let inner = exec.clone();
        let result = exec.map_indices(4, |i| inner.map_indices(4, |j| i * 10 + j));
        assert_eq!(result[2], vec![20, 21, 22, 23]);
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn concurrent_jobs_share_one_pool() {
        let exec = Executor::new(ExecPolicy { threads: 4 });
        thread::scope(|s| {
            for t in 0..4u64 {
                let exec = exec.clone();
                s.spawn(move || {
                    let out = exec.map_indices(100, |i| i as u64 + t * 1000);
                    assert_eq!(out[99], 99 + t * 1000);
                });
            }
        });
    }

    #[test]
    fn executor_debug_and_default() {
        assert_eq!(
            format!("{:?}", Executor::serial()),
            "Executor { threads: 1 }"
        );
        assert!(!Executor::default().is_parallel());
        assert_eq!(Executor::default().threads(), 1);
    }
}
