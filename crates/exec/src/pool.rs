//! The fixed thread pool behind [`Executor`](crate::Executor).
//!
//! Workers are spawned once and live for the pool's lifetime; each scoped
//! fork-join call publishes one [`Job`] — a borrowed `Fn(usize)` plus an
//! atomic index cursor — to the shared queue. Every worker (and the calling
//! thread, which always participates) claims indices with a `fetch_add` loop
//! until the job is exhausted. The caller blocks until every claimed index
//! has *finished* executing, which is what makes the lifetime erasure below
//! sound: no task can run after `run_scoped` returns.
//!
//! Panics inside a task are caught per index, the first payload is kept, and
//! `run_scoped` re-raises it on the calling thread once the job has fully
//! drained — a panicking task never takes a worker thread down and never
//! leaves sibling tasks running against freed borrows.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A borrowed task with its lifetime erased so the pool's `'static` worker
/// threads can hold it.
///
/// # Safety
///
/// The pointer is dereferenced only for claimed indices `< total`, and
/// [`ThreadPool::run_scoped`] does not return before every claimed index has
/// completed — so every dereference happens while the caller's borrow is
/// still alive. Workers may *hold* the (by then dangling) raw pointer inside
/// an exhausted [`Job`] a little longer, which is fine: raw pointers carry no
/// validity requirement until dereferenced.
struct RawTask(*const (dyn Fn(usize) + Sync));

unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One scoped fork-join batch: `total` independent indices to run through
/// `task`, claimed atomically by whoever has spare cycles.
struct Job {
    task: RawTask,
    total: usize,
    /// Next index to claim (values `>= total` mean "exhausted").
    next: AtomicUsize,
    /// Indices that have finished executing (successfully or by panicking).
    completed: Mutex<usize>,
    finished: Condvar,
    /// First panic payload observed, re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Job {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Claims and runs indices until none are left.
    fn run(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // Safety: `i < total`, so the caller is still parked inside
            // `run_scoped` and the borrow behind the pointer is alive.
            let task = unsafe { &*self.task.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                lock(&self.panic).get_or_insert(payload);
            }
            let mut done = lock(&self.completed);
            *done += 1;
            if *done == self.total {
                self.finished.notify_all();
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A fixed set of worker threads executing scoped fork-join jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// A poisoned pool mutex only means another task panicked mid-section; every
/// section leaves the guarded state consistent, so recover the guard instead
/// of cascading the panic into unrelated jobs.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

impl ThreadPool {
    /// Spawns up to `workers` threads (the calling thread of each job makes
    /// one more pair of hands, so an N-thread [`Executor`](crate::Executor)
    /// builds a pool of N−1 workers). A spawn failure (resource pressure)
    /// degrades to the workers that did start rather than panicking: every
    /// fork-join region is correct with any worker count — including zero,
    /// because callers always participate.
    pub fn new(workers: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("hermes-exec-{i}"))
                .spawn(move || worker_loop(&worker_shared))
            {
                Ok(handle) => handles.push(handle),
                Err(_) => break,
            }
        }
        ThreadPool {
            shared,
            workers: handles,
        }
    }

    /// Runs `task(0..total)` across the pool and the calling thread, returning
    /// once every index has executed. Panics from tasks are re-raised here
    /// after the whole job has drained.
    ///
    /// Nested calls (a task itself forking a job on the same pool) are fine:
    /// the nested caller participates in its own job, so progress never
    /// depends on a free worker.
    pub fn run_scoped(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        // Erase the borrow's lifetime; see `RawTask` for why this is sound.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task: RawTask(task as *const _),
            total,
            next: AtomicUsize::new(0),
            completed: Mutex::new(0),
            finished: Condvar::new(),
            panic: Mutex::new(None),
        });
        lock(&self.shared.queue).push_back(Arc::clone(&job));
        self.shared.available.notify_all();

        // Fork-join: the caller works the job too, then waits for stragglers.
        job.run();
        let mut done = lock(&job.completed);
        while *done < total {
            done = job.finished.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        drop(done);

        let payload = lock(&job.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Jobs currently sitting in the shared queue (claimed-but-unfinished
    /// jobs whose stragglers are still running do not count once popped).
    /// A momentary sample for observability, not a synchronization primitive.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Exhausted jobs are done being *claimed* (stragglers finish
                // on the threads that claimed them); drop them from the front.
                while queue.front().is_some_and(|j| j.exhausted()) {
                    queue.pop_front();
                }
                if let Some(job) = queue.front() {
                    break Arc::clone(job);
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        job.run();
    }
}
