//! A second GiST operator class: 1-D temporal intervals.
//!
//! The point of building the 3D R-tree *on GiST* (rather than ad hoc) is that
//! the same balanced-tree machinery serves any key type that can express
//! `union`/`penalty`/`consistent`/`picksplit`. This operator class indexes
//! plain temporal intervals — a purely temporal access path (find the
//! chunks/sub-chunks or cluster lifespans intersecting a window without
//! touching spatial data) — and doubles as the proof that the framework is
//! genuinely generic beyond the 3D R-tree.

use crate::opclass::OpClass;
use crate::tree::{Gist, MIN_ENTRIES};
use hermes_trajectory::{TimeInterval, Timestamp};

/// Queries understood by the interval operator class.
#[derive(Debug, Clone, Copy)]
pub enum IntervalQuery {
    /// Matches intervals intersecting the given window.
    Overlaps(TimeInterval),
    /// Matches intervals fully contained in the given window.
    ContainedIn(TimeInterval),
    /// Matches intervals containing the given instant.
    Contains(Timestamp),
}

/// GiST operator class over [`TimeInterval`] keys.
pub struct IntervalOpClass;

impl OpClass for IntervalOpClass {
    type Key = TimeInterval;
    type Query = IntervalQuery;

    fn consistent(key: &TimeInterval, query: &IntervalQuery, is_leaf: bool) -> bool {
        match query {
            IntervalQuery::Overlaps(w) => key.intersects(w),
            IntervalQuery::ContainedIn(w) => {
                if is_leaf {
                    w.contains_interval(key)
                } else {
                    key.intersects(w)
                }
            }
            IntervalQuery::Contains(t) => key.contains(*t),
        }
    }

    fn union(keys: &[TimeInterval]) -> TimeInterval {
        keys.iter()
            .copied()
            .reduce(|a, b| a.union(&b))
            .expect("union is never called with an empty key set")
    }

    fn penalty(existing: &TimeInterval, new: &TimeInterval) -> f64 {
        let before = existing.length().millis() as f64;
        let after = existing.union(new).length().millis() as f64;
        after - before
    }

    fn picksplit(keys: &[TimeInterval]) -> (Vec<usize>, Vec<usize>) {
        // Sort by start time and cut in the middle — the classic interval
        // split that keeps the two halves temporally coherent.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i].start);
        let cut = (keys.len() / 2).clamp(MIN_ENTRIES.max(1), keys.len() - MIN_ENTRIES.max(1));
        (order[..cut].to_vec(), order[cut..].to_vec())
    }

    fn distance(key: &TimeInterval, query: &IntervalQuery) -> f64 {
        let target = match query {
            IntervalQuery::Contains(t) => TimeInterval::new(*t, *t),
            IntervalQuery::Overlaps(w) | IntervalQuery::ContainedIn(w) => *w,
        };
        key.gap(&target).millis() as f64
    }
}

/// A temporal-interval index over values of type `V`.
pub type IntervalTree<V> = Gist<IntervalOpClass, V>;

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(Timestamp(a), Timestamp(b))
    }

    fn build(n: i64) -> IntervalTree<i64> {
        let mut t = IntervalTree::new();
        for i in 0..n {
            // Hour-long intervals starting every 30 minutes.
            t.insert(iv(i * 1_800_000, i * 1_800_000 + 3_600_000), i);
        }
        t
    }

    #[test]
    fn overlap_queries_match_a_linear_scan() {
        let n = 200;
        let tree = build(n);
        tree.check_invariants();
        let w = iv(50 * 1_800_000, 60 * 1_800_000);
        let mut hits: Vec<i64> = tree
            .query(&IntervalQuery::Overlaps(w))
            .into_iter()
            .copied()
            .collect();
        hits.sort_unstable();
        let expected: Vec<i64> = (0..n)
            .filter(|&i| iv(i * 1_800_000, i * 1_800_000 + 3_600_000).intersects(&w))
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn containment_and_instant_queries() {
        let tree = build(100);
        let w = iv(10 * 1_800_000, 14 * 1_800_000);
        let contained: Vec<i64> = tree
            .query(&IntervalQuery::ContainedIn(w))
            .into_iter()
            .copied()
            .collect();
        assert!(!contained.is_empty());
        for &i in &contained {
            assert!(w.contains_interval(&iv(i * 1_800_000, i * 1_800_000 + 3_600_000)));
        }
        let instant = Timestamp(25 * 1_800_000 + 10);
        let containing: Vec<i64> = tree
            .query(&IntervalQuery::Contains(instant))
            .into_iter()
            .copied()
            .collect();
        assert!(!containing.is_empty());
        for &i in &containing {
            assert!(iv(i * 1_800_000, i * 1_800_000 + 3_600_000).contains(instant));
        }
    }

    #[test]
    fn nearest_scan_orders_by_temporal_gap() {
        let tree = build(100);
        let probe = IntervalQuery::Contains(Timestamp(-5 * 3_600_000));
        let nearest = tree.nearest(&probe, 3);
        assert_eq!(nearest.len(), 3);
        // The earliest intervals are the closest to a probe in the past.
        let ids: Vec<i64> = nearest.iter().map(|(v, _)| **v).collect();
        assert!(ids.contains(&0));
        for w in nearest.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn removal_keeps_queries_consistent() {
        let mut tree = build(50);
        let w = iv(0, 10 * 1_800_000);
        let removed = tree.remove_where(&IntervalQuery::Overlaps(w), |&v| v < 5);
        assert_eq!(removed, 5);
        let hits: Vec<i64> = tree
            .query(&IntervalQuery::Overlaps(w))
            .into_iter()
            .copied()
            .collect();
        assert!(hits.iter().all(|&v| v >= 5));
    }
}
