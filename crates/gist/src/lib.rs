//! # hermes-gist
//!
//! A from-scratch **Generalized Search Tree (GiST)** framework plus the
//! paper's `pg3D-Rtree` operator class.
//!
//! The ICDE 2018 Hermes@PostgreSQL demo stresses that its 3D R-tree is *not*
//! an ad hoc index: it is "implemented from scratch on top of GiST", i.e. the
//! generic balanced-tree machinery is separated from the domain-specific key
//! operations (`union`, `penalty`, `picksplit`, `consistent`), exactly as in
//! Hellerstein, Naughton & Pfeffer (VLDB 1995). This crate reproduces that
//! layering:
//!
//! * [`OpClass`] — the operator-class trait a key type implements,
//! * [`Gist`] — the generic height-balanced tree parameterized by an
//!   operator class,
//! * [`rtree3d`] — the `pg3D-Rtree` operator class over [`Mbb`]
//!   (spatio-temporal boxes) plus the convenient [`RTree3D`] wrapper used by
//!   the rest of the workspace,
//! * STR bulk loading for building an index over an existing partition in one
//!   pass,
//! * [`packed`] — a static, structure-of-arrays [`PackedRTree`] for
//!   read-mostly hot paths: STR-packed into flat lanes, queried with zero
//!   per-query allocation (the S2T voting index and the packed base of the
//!   ReTraTree's sub-chunk leaf indexes).
//!
//! [`Mbb`]: hermes_trajectory::Mbb
//!
//! **Layer:** index substrate under `hermes-retratree` and the S2T voting
//! hot path. Key types: [`Gist`], [`OpClass`], [`RTree3D`], [`PackedRTree`].
//! Where each index sits in a query's life is mapped in
//! `docs/ARCHITECTURE.md`.

pub mod interval;
pub mod opclass;
pub mod packed;
pub mod rtree3d;
pub mod tree;

pub use interval::{IntervalOpClass, IntervalQuery, IntervalTree};
pub use opclass::OpClass;
pub use packed::{axis_gap, PackedRTree};
pub use rtree3d::{Box3OpClass, RTree3D, RangeQuery};
pub use tree::{Gist, GistStats};
