//! The GiST operator-class contract.
//!
//! A Generalized Search Tree knows nothing about the data it indexes; all
//! domain knowledge is supplied by an *operator class* implementing this
//! trait (PostgreSQL's `CREATE OPERATOR CLASS ... USING gist`). The generic
//! tree calls exactly the four methods defined by Hellerstein et al.:
//! `consistent`, `union`, `penalty` and `picksplit`, plus an optional
//! `distance` used for ordered (nearest-neighbour) scans.

/// Domain-specific key operations for a [`Gist`](crate::tree::Gist) tree.
pub trait OpClass {
    /// The key stored in tree entries (e.g. a 3D bounding box).
    type Key: Clone + std::fmt::Debug;
    /// The query predicate evaluated by `consistent` (e.g. "intersects box").
    type Query;

    /// Returns `false` only when the subtree under `key` can be proven to
    /// contain no entry satisfying `query` (false positives are allowed,
    /// false negatives are not — the classic GiST contract).
    fn consistent(key: &Self::Key, query: &Self::Query, is_leaf: bool) -> bool;

    /// Smallest key covering all of `keys`. `keys` is never empty.
    fn union(keys: &[Self::Key]) -> Self::Key;

    /// Cost of inserting `new` into the subtree whose bounding key is
    /// `existing`; the tree descends into the child with minimum penalty.
    fn penalty(existing: &Self::Key, new: &Self::Key) -> f64;

    /// Splits an overflowing set of keys into two groups, returning the index
    /// sets of each group. Every index in `0..keys.len()` must appear in
    /// exactly one group and both groups must be non-empty.
    fn picksplit(keys: &[Self::Key]) -> (Vec<usize>, Vec<usize>);

    /// Optimistic distance of `key` to the query target, used to order
    /// nearest-neighbour scans. Must be a lower bound of the distance of any
    /// entry stored below `key`. The default makes ordered scans degrade to
    /// plain scans.
    fn distance(_key: &Self::Key, _query: &Self::Query) -> f64 {
        0.0
    }
}
