//! A static, cache-linear 3D R-tree packed into flat arrays.
//!
//! [`PackedRTree`] is the bulk-load-only counterpart of [`RTree3D`]: the same
//! Sort-Tile-Recursive packing, but the result is laid out as parallel
//! structure-of-arrays lanes instead of a graph of per-node entry `Vec`s.
//! Item boxes live in one contiguous slab ordered by STR tile, node boxes in
//! another, and every node addresses its children as a `[start, end)` range —
//! so a range query is a walk over contiguous `f64`/`i64` lanes with **zero
//! heap allocation per query** (traversal recurses to the tree height, which
//! is logarithmic in the item count).
//!
//! This is the query structure behind the S2T voting hot path
//! (`hermes-s2t`'s `SegmentArena` index) and the packed base of the
//! ReTraTree's sub-chunk leaf indexes. It intentionally supports no
//! insertion or deletion: dynamic callers layer a small [`RTree3D`] delta on
//! top and rebuild the packed base on reorganisation.
//!
//! [`RTree3D`]: crate::RTree3D

use hermes_trajectory::{simd_level, Mbb, SimdLevel, TimeInterval, Timestamp};

/// Node fanout of the packed tree. Matches the GiST node capacity so packed
/// and incremental trees have comparable shapes.
const NODE_CAP: usize = 16;

/// Gap between two closed intervals along one axis (0 when they overlap).
///
/// Shared between the tree's ball traversal and the per-segment candidate
/// filter in `hermes-s2t`: the pruning-exactness argument of the voting hot
/// path requires both levels to compute the *same* lower bound, so there is
/// exactly one implementation. Written as two subtractions and two selects
/// (no branches — interval gaps are coin-flip data to a branch predictor):
/// exactly one of `b_min - a_max` / `a_min - b_max` is positive when the
/// intervals are disjoint, both are `<= 0.0` when they overlap, and equal
/// finite operands subtract to `+0.0` — so the selected value is identical
/// to the branchy three-case form, bit for bit. The SIMD leaf scan emits
/// this same max-chain with packed ops.
#[inline]
pub fn axis_gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
    let lo = b_min - a_max;
    let hi = a_min - b_max;
    let g = if lo > hi { lo } else { hi };
    if g > 0.0 {
        g
    } else {
        0.0
    }
}

/// One level-by-level packed node: its bounding lanes live in the `n*` arrays
/// of the tree at the node's index.
#[derive(Debug, Clone, Copy)]
struct NodeRef {
    /// First child (node index for internal nodes, item index for leaves).
    start: u32,
    /// One past the last child.
    end: u32,
    /// True when the children are items, not nodes.
    leaf: bool,
}

/// One ball-candidate query, prepared once per traversal: exact `i64`
/// temporal bounds for node descent and the survivor recheck, outward-
/// rounded `f64` bounds for the packed temporal prefilter, squared radius.
struct BallQuery {
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
    t0: i64,
    t1: i64,
    t0f: f64,
    t1f: f64,
    r2: f64,
}

/// A static 3D R-tree over values of type `V`, keyed by spatio-temporal
/// boxes, stored as flat parallel arrays.
///
/// Bounds are blocked by axis kind: the temporal bounds of item/node `i`
/// live in one `[t_min, t_max]` pair (a single 16-byte read) and the spatial
/// bounds in one `[x_min, x_max, y_min, y_max]` block (32 bytes). Traversals
/// test time first — on trajectory workloads it is the most selective axis —
/// so the common rejected candidate touches exactly one cache line.
#[derive(Clone)]
pub struct PackedRTree<V> {
    // Item slabs, in STR-tile order. `values[i]` is keyed by the box
    // `(ixy[i], it[i])`.
    it: Vec<[i64; 2]>,
    ixy: Vec<[f64; 4]>,
    values: Vec<V>,
    // Transposed item bound lanes for the SIMD leaf scan: one contiguous
    // `f64` lane per bound so a leaf's items are tested four at a time with
    // packed loads. `st0`/`st1` are the temporal bounds widened to `f64`
    // with outward rounding — a conservative prefilter (never rejects a true
    // candidate; the scan rechecks survivors against the exact `i64` lanes).
    sx0: Vec<f64>,
    sx1: Vec<f64>,
    sy0: Vec<f64>,
    sy1: Vec<f64>,
    st0: Vec<f64>,
    st1: Vec<f64>,
    // Node slabs. Leaves come first, then each internal level, root last.
    nt: Vec<[i64; 2]>,
    nxy: Vec<[f64; 4]>,
    // Transposed node bound lanes for the SIMD child scan, mirroring the
    // item slabs: one contiguous `f64` lane per bound (children of a node
    // are contiguous node ids, so a node's children are tested four at a
    // time with packed loads). `nst0`/`nst1` carry the outward-rounded
    // temporal prefilter; survivors are rechecked against the exact `nt`.
    nsx0: Vec<f64>,
    nsx1: Vec<f64>,
    nsy0: Vec<f64>,
    nsy1: Vec<f64>,
    nst0: Vec<f64>,
    nst1: Vec<f64>,
    nodes: Vec<NodeRef>,
    root: usize,
    height: usize,
}

/// `t` as `f64`, rounded toward `-∞` (exact for every `|t| < 2^53`, which
/// covers any millisecond timestamp this engine produces).
fn t_down(t: i64) -> f64 {
    let f = t as f64;
    if f as i128 > t as i128 {
        f.next_down()
    } else {
        f
    }
}

/// `t` as `f64`, rounded toward `+∞`.
fn t_up(t: i64) -> f64 {
    let f = t as f64;
    if (f as i128) < t as i128 {
        f.next_up()
    } else {
        f
    }
}

impl<V> PackedRTree<V> {
    /// An empty tree (no items, no nodes; every query is a no-op).
    pub fn empty() -> Self {
        PackedRTree {
            it: Vec::new(),
            ixy: Vec::new(),
            values: Vec::new(),
            sx0: Vec::new(),
            sx1: Vec::new(),
            sy0: Vec::new(),
            sy1: Vec::new(),
            st0: Vec::new(),
            st1: Vec::new(),
            nt: Vec::new(),
            nxy: Vec::new(),
            nsx0: Vec::new(),
            nsx1: Vec::new(),
            nsy0: Vec::new(),
            nsy1: Vec::new(),
            nst0: Vec::new(),
            nst1: Vec::new(),
            nodes: Vec::new(),
            root: 0,
            height: 0,
        }
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing over the box
    /// centers (x, then y, then t) — the same tiling discipline as
    /// [`RTree3D::bulk_load`](crate::RTree3D::bulk_load), flattened into the
    /// blocked slabs.
    pub fn bulk_load(mut items: Vec<(Mbb, V)>) -> Self {
        if items.is_empty() {
            return Self::empty();
        }

        // Recursive STR tiling over the item slice; leaves are emitted as
        // `[start, end)` ranges over the final (sorted-in-place) order.
        fn tile<V>(
            items: &mut [(Mbb, V)],
            offset: usize,
            dim: usize,
            leaf_cap: usize,
            out: &mut Vec<(usize, usize)>,
        ) {
            if items.len() <= leaf_cap {
                out.push((offset, offset + items.len()));
                return;
            }
            if dim >= 3 {
                let mut at = 0usize;
                while at < items.len() {
                    let end = (at + leaf_cap).min(items.len());
                    out.push((offset + at, offset + end));
                    at = end;
                }
                return;
            }
            let center = |b: &Mbb| -> f64 {
                match dim {
                    0 => (b.x_min + b.x_max) / 2.0,
                    1 => (b.y_min + b.y_max) / 2.0,
                    _ => (b.t_min.as_secs_f64() + b.t_max.as_secs_f64()) / 2.0,
                }
            };
            items.sort_by(|a, b| {
                center(&a.0)
                    .partial_cmp(&center(&b.0))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let leaves_needed = items.len().div_ceil(leaf_cap);
            let slabs = (leaves_needed as f64).powf(1.0 / (3 - dim) as f64).ceil() as usize;
            let slab_size = items.len().div_ceil(slabs.max(1));
            let mut at = 0usize;
            while at < items.len() {
                let end = (at + slab_size).min(items.len());
                tile(&mut items[at..end], offset + at, dim + 1, leaf_cap, out);
                at = end;
            }
        }

        let mut leaf_ranges: Vec<(usize, usize)> = Vec::new();
        tile(&mut items, 0, 0, NODE_CAP, &mut leaf_ranges);

        let n = items.len();
        let mut tree = PackedRTree {
            it: Vec::with_capacity(n),
            ixy: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
            sx0: Vec::with_capacity(n),
            sx1: Vec::with_capacity(n),
            sy0: Vec::with_capacity(n),
            sy1: Vec::with_capacity(n),
            st0: Vec::with_capacity(n),
            st1: Vec::with_capacity(n),
            nt: Vec::new(),
            nxy: Vec::new(),
            nsx0: Vec::new(),
            nsx1: Vec::new(),
            nsy0: Vec::new(),
            nsy1: Vec::new(),
            nst0: Vec::new(),
            nst1: Vec::new(),
            nodes: Vec::new(),
            root: 0,
            height: 1,
        };
        for (mbb, value) in items {
            tree.it.push([mbb.t_min.millis(), mbb.t_max.millis()]);
            tree.ixy.push([mbb.x_min, mbb.x_max, mbb.y_min, mbb.y_max]);
            tree.sx0.push(mbb.x_min);
            tree.sx1.push(mbb.x_max);
            tree.sy0.push(mbb.y_min);
            tree.sy1.push(mbb.y_max);
            tree.st0.push(t_down(mbb.t_min.millis()));
            tree.st1.push(t_up(mbb.t_max.millis()));
            tree.values.push(value);
        }

        // Leaf nodes: bounds of their item ranges.
        let mut level: Vec<usize> = Vec::with_capacity(leaf_ranges.len());
        for (start, end) in leaf_ranges {
            let idx = tree.push_node(NodeRef {
                start: start as u32,
                end: end as u32,
                leaf: true,
            });
            tree.set_node_bounds_from_items(idx, start, end);
            level.push(idx);
        }
        // Internal levels until one root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAP));
            for chunk in level.chunks(NODE_CAP) {
                let idx = tree.push_node(NodeRef {
                    start: chunk[0] as u32,
                    end: (chunk[chunk.len() - 1] + 1) as u32,
                    leaf: false,
                });
                tree.set_node_bounds_from_nodes(idx, chunk[0], chunk[chunk.len() - 1] + 1);
                next.push(idx);
            }
            level = next;
            tree.height += 1;
        }
        tree.root = level[0];
        tree.fill_node_slabs();
        tree
    }

    /// Transposes the node bounds into the SIMD child-scan lanes; called
    /// once after every node's bounds are final.
    fn fill_node_slabs(&mut self) {
        let n = self.nodes.len();
        self.nsx0 = Vec::with_capacity(n);
        self.nsx1 = Vec::with_capacity(n);
        self.nsy0 = Vec::with_capacity(n);
        self.nsy1 = Vec::with_capacity(n);
        self.nst0 = Vec::with_capacity(n);
        self.nst1 = Vec::with_capacity(n);
        for c in 0..n {
            let xy = self.nxy[c];
            let t = self.nt[c];
            self.nsx0.push(xy[0]);
            self.nsx1.push(xy[1]);
            self.nsy0.push(xy[2]);
            self.nsy1.push(xy[3]);
            self.nst0.push(t_down(t[0]));
            self.nst1.push(t_up(t[1]));
        }
    }

    fn push_node(&mut self, node: NodeRef) -> usize {
        self.nodes.push(node);
        self.nt.push([0, 0]);
        self.nxy.push([0.0; 4]);
        self.nodes.len() - 1
    }

    fn set_node_bounds_from_items(&mut self, node: usize, start: usize, end: usize) {
        let mut xy = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let mut t = [i64::MAX, i64::MIN];
        for i in start..end {
            xy[0] = xy[0].min(self.ixy[i][0]);
            xy[1] = xy[1].max(self.ixy[i][1]);
            xy[2] = xy[2].min(self.ixy[i][2]);
            xy[3] = xy[3].max(self.ixy[i][3]);
            t[0] = t[0].min(self.it[i][0]);
            t[1] = t[1].max(self.it[i][1]);
        }
        self.nxy[node] = xy;
        self.nt[node] = t;
    }

    fn set_node_bounds_from_nodes(&mut self, node: usize, start: usize, end: usize) {
        let mut xy = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let mut t = [i64::MAX, i64::MIN];
        for i in start..end {
            xy[0] = xy[0].min(self.nxy[i][0]);
            xy[1] = xy[1].max(self.nxy[i][1]);
            xy[2] = xy[2].min(self.nxy[i][2]);
            xy[3] = xy[3].max(self.nxy[i][3]);
            t[0] = t[0].min(self.nt[i][0]);
            t[1] = t[1].max(self.nt[i][1]);
        }
        self.nxy[node] = xy;
        self.nt[node] = t;
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Height of the packed tree (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.height
        }
    }

    /// Visits every item index whose box intersects the query box. The
    /// visitor receives the *item index* into this tree's lanes — use
    /// [`PackedRTree::value`] and the `item_*` accessors, or the convenience
    /// wrappers below. Allocation-free.
    #[inline]
    pub fn for_each_intersecting_idx(&self, query: &Mbb, mut visit: impl FnMut(usize)) {
        if self.is_empty() {
            return;
        }
        let qx0 = query.x_min;
        let qx1 = query.x_max;
        let qy0 = query.y_min;
        let qy1 = query.y_max;
        let qt0 = query.t_min.millis();
        let qt1 = query.t_max.millis();
        self.visit_box(self.root, qx0, qx1, qy0, qy1, qt0, qt1, &mut visit);
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_box(
        &self,
        node: usize,
        qx0: f64,
        qx1: f64,
        qy0: f64,
        qy1: f64,
        qt0: i64,
        qt1: i64,
        visit: &mut impl FnMut(usize),
    ) {
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            for i in start..end {
                let t = self.it[i];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.ixy[i];
                    if qx0 <= xy[1] && xy[0] <= qx1 && qy0 <= xy[3] && xy[2] <= qy1 {
                        visit(i);
                    }
                }
            }
        } else {
            for c in start..end {
                let t = self.nt[c];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.nxy[c];
                    if qx0 <= xy[1] && xy[0] <= qx1 && qy0 <= xy[3] && xy[2] <= qy1 {
                        self.visit_box(c, qx0, qx1, qy0, qy1, qt0, qt1, visit);
                    }
                }
            }
        }
    }

    /// Visits every value whose box intersects `query` (allocation-free).
    pub fn for_each_intersecting<'a>(&'a self, query: &Mbb, mut visit: impl FnMut(&'a V)) {
        self.for_each_intersecting_idx(query, |i| visit(&self.values[i]));
    }

    /// Visits every item whose lifespan intersects `query`'s lifespan **and**
    /// whose minimum spatial (x/y) distance to `query` is at most `radius`.
    /// The visitor receives the item index plus the **squared spatial gap**
    /// between the item's box and the query box, so distance-kernel callers
    /// can use it as a free lower bound on the true distance.
    ///
    /// This is the candidate query of a distance-cutoff kernel (the S2T
    /// voting ball): it prunes strictly more than intersecting with the
    /// radius-inflated box — a per-axis inflate admits corner candidates up
    /// to `√2·radius` away, the Euclidean gap test here rejects them, at the
    /// node level as well as the item level. Allocation-free.
    ///
    /// Dispatches the leaf-level item scan to the widest SIMD width allowed
    /// by [`simd_level`] (`HERMES_SIMD` overrides, see `hermes-trajectory`).
    /// Every width visits **exactly the same items with bit-identical
    /// `gap2`** as the scalar scan: the packed lanes run the same
    /// correctly-rounded subtract/max/mul/add sequence elementwise, and the
    /// widened-`f64` temporal prefilter is outward-rounded (never rejects a
    /// true candidate) with survivors rechecked against the exact `i64`
    /// bounds.
    #[inline]
    pub fn for_each_ball_candidate_idx(
        &self,
        query: &Mbb,
        radius: f64,
        mut visit: impl FnMut(usize, f64),
    ) {
        self.ball_candidates_at(simd_level(), query, radius, &mut visit);
    }

    /// [`PackedRTree::for_each_ball_candidate_idx`] pinned to the scalar
    /// item scan, independent of `HERMES_SIMD` and CPU features. Kept as the
    /// measured baseline for the SIMD scan and as an equality reference.
    #[inline]
    pub fn for_each_ball_candidate_idx_scalar(
        &self,
        query: &Mbb,
        radius: f64,
        mut visit: impl FnMut(usize, f64),
    ) {
        self.ball_candidates_at(SimdLevel::Scalar, query, radius, &mut visit);
    }

    /// The ball traversal exactly as PR 4 shipped it: the branchy three-case
    /// axis gap and a scalar recursive descent over the blocked `it`/`ixy`
    /// lanes. Kept frozen so `BENCH_e1`'s "arena-pr4" baseline measures
    /// PR 4's code rather than a baseline that silently inherits later
    /// traversal work (the branchless gap form, the SIMD leaf scans). It
    /// visits exactly the same items with bit-identical `gap2` as every
    /// modern width — the branchy and branchless gap forms compute the same
    /// correctly-rounded value — so it doubles as an equality reference.
    pub fn for_each_ball_candidate_idx_frozen(
        &self,
        query: &Mbb,
        radius: f64,
        mut visit: impl FnMut(usize, f64),
    ) {
        if self.is_empty() {
            return;
        }
        let r2 = radius * radius;
        self.visit_ball_frozen(
            self.root,
            query.x_min,
            query.x_max,
            query.y_min,
            query.y_max,
            query.t_min.millis(),
            query.t_max.millis(),
            r2,
            &mut visit,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_ball_frozen(
        &self,
        node: usize,
        qx0: f64,
        qx1: f64,
        qy0: f64,
        qy1: f64,
        qt0: i64,
        qt1: i64,
        r2: f64,
        visit: &mut impl FnMut(usize, f64),
    ) {
        // PR 4's `axis_gap`, verbatim.
        #[inline]
        fn gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
            if a_max < b_min {
                b_min - a_max
            } else if b_max < a_min {
                a_min - b_max
            } else {
                0.0
            }
        }
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            for i in start..end {
                let t = self.it[i];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.ixy[i];
                    let gx = gap(xy[0], xy[1], qx0, qx1);
                    let gy = gap(xy[2], xy[3], qy0, qy1);
                    let gap2 = gx * gx + gy * gy;
                    if gap2 <= r2 {
                        visit(i, gap2);
                    }
                }
            }
        } else {
            for c in start..end {
                let t = self.nt[c];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.nxy[c];
                    let gx = gap(xy[0], xy[1], qx0, qx1);
                    let gy = gap(xy[2], xy[3], qy0, qy1);
                    if gx * gx + gy * gy <= r2 {
                        self.visit_ball_frozen(c, qx0, qx1, qy0, qy1, qt0, qt1, r2, visit);
                    }
                }
            }
        }
    }

    fn ball_candidates_at(
        &self,
        level: SimdLevel,
        query: &Mbb,
        radius: f64,
        visit: &mut impl FnMut(usize, f64),
    ) {
        if self.is_empty() {
            return;
        }
        let q = BallQuery {
            x0: query.x_min,
            x1: query.x_max,
            y0: query.y_min,
            y1: query.y_max,
            t0: query.t_min.millis(),
            t1: query.t_max.millis(),
            t0f: t_down(query.t_min.millis()),
            t1f: t_up(query.t_max.millis()),
            r2: radius * radius,
        };
        self.visit_ball(self.root, &q, level, visit);
    }

    fn visit_ball(
        &self,
        node: usize,
        q: &BallQuery,
        level: SimdLevel,
        visit: &mut impl FnMut(usize, f64),
    ) {
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => unsafe { self.scan_leaf_avx2(start, end, q, visit) },
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Sse2 => unsafe { self.scan_leaf_sse2(start, end, q, visit) },
                _ => self.scan_leaf_scalar(start, end, q, visit),
            }
        } else {
            match level {
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Avx2 => unsafe { self.scan_children_avx2(start, end, q, level, visit) },
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Sse2 => unsafe { self.scan_children_sse2(start, end, q, level, visit) },
                _ => self.scan_children_scalar(start, end, q, level, visit),
            }
        }
    }

    /// Scalar child scan of an internal node: the exact reference the SIMD
    /// variants must match — temporal test on the exact `i64` bounds, then
    /// `axis_gap` vs the ball.
    fn scan_children_scalar(
        &self,
        start: usize,
        end: usize,
        q: &BallQuery,
        level: SimdLevel,
        visit: &mut impl FnMut(usize, f64),
    ) {
        for c in start..end {
            let t = self.nt[c];
            if q.t0 <= t[1] && t[0] <= q.t1 {
                let xy = self.nxy[c];
                let gx = axis_gap(xy[0], xy[1], q.x0, q.x1);
                let gy = axis_gap(xy[2], xy[3], q.y0, q.y1);
                if gx * gx + gy * gy <= q.r2 {
                    self.visit_ball(c, q, level, visit);
                }
            }
        }
    }

    /// AVX2 child scan: four children per iteration over the transposed
    /// node-bound lanes, exactly as [`scan_leaf_avx2`](Self::scan_leaf_avx2)
    /// scans items — outward-rounded temporal prefilter, branchless
    /// `axis_gap` (bit-identical to the scalar three-case form), exact `i64`
    /// recheck on passing lanes before descending. Children are descended in
    /// ascending id order, so the item visit order is exactly the scalar
    /// traversal's.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by dispatching on [`simd_level`], which
    /// clamps to runtime-detected features).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_children_avx2(
        &self,
        start: usize,
        end: usize,
        q: &BallQuery,
        level: SimdLevel,
        visit: &mut impl FnMut(usize, f64),
    ) {
        use std::arch::x86_64::*;
        let zero = _mm256_setzero_pd();
        let qx0 = _mm256_set1_pd(q.x0);
        let qx1 = _mm256_set1_pd(q.x1);
        let qy0 = _mm256_set1_pd(q.y0);
        let qy1 = _mm256_set1_pd(q.y1);
        let qt0 = _mm256_set1_pd(q.t0f);
        let qt1 = _mm256_set1_pd(q.t1f);
        let r2 = _mm256_set1_pd(q.r2);
        let mut c = start;
        while c + 4 <= end {
            let t_lo = _mm256_loadu_pd(self.nst0.as_ptr().add(c));
            let t_hi = _mm256_loadu_pd(self.nst1.as_ptr().add(c));
            let t_pass = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(qt0, t_hi),
                _mm256_cmp_pd::<_CMP_LE_OQ>(t_lo, qt1),
            );
            let x_lo = _mm256_loadu_pd(self.nsx0.as_ptr().add(c));
            let x_hi = _mm256_loadu_pd(self.nsx1.as_ptr().add(c));
            let y_lo = _mm256_loadu_pd(self.nsy0.as_ptr().add(c));
            let y_hi = _mm256_loadu_pd(self.nsy1.as_ptr().add(c));
            let gx = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(qx0, x_hi), _mm256_sub_pd(x_lo, qx1)),
                zero,
            );
            let gy = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(qy0, y_hi), _mm256_sub_pd(y_lo, qy1)),
                zero,
            );
            let gap2 = _mm256_add_pd(_mm256_mul_pd(gx, gx), _mm256_mul_pd(gy, gy));
            let pass = _mm256_and_pd(t_pass, _mm256_cmp_pd::<_CMP_LE_OQ>(gap2, r2));
            let mut mask = _mm256_movemask_pd(pass) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let child = c + lane;
                let t = self.nt[child];
                if q.t0 <= t[1] && t[0] <= q.t1 {
                    self.visit_ball(child, q, level, visit);
                }
            }
            c += 4;
        }
        self.scan_children_scalar(c, end, q, level, visit);
    }

    /// SSE2 child scan: two children per iteration, same contract as
    /// [`scan_children_avx2`](Self::scan_children_avx2).
    ///
    /// # Safety
    ///
    /// SSE2 is part of the x86_64 baseline; kept `unsafe` for symmetry with
    /// the dispatch.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn scan_children_sse2(
        &self,
        start: usize,
        end: usize,
        q: &BallQuery,
        level: SimdLevel,
        visit: &mut impl FnMut(usize, f64),
    ) {
        use std::arch::x86_64::*;
        let zero = _mm_setzero_pd();
        let qx0 = _mm_set1_pd(q.x0);
        let qx1 = _mm_set1_pd(q.x1);
        let qy0 = _mm_set1_pd(q.y0);
        let qy1 = _mm_set1_pd(q.y1);
        let qt0 = _mm_set1_pd(q.t0f);
        let qt1 = _mm_set1_pd(q.t1f);
        let r2 = _mm_set1_pd(q.r2);
        let mut c = start;
        while c + 2 <= end {
            let t_lo = _mm_loadu_pd(self.nst0.as_ptr().add(c));
            let t_hi = _mm_loadu_pd(self.nst1.as_ptr().add(c));
            let t_pass = _mm_and_pd(_mm_cmple_pd(qt0, t_hi), _mm_cmple_pd(t_lo, qt1));
            let x_lo = _mm_loadu_pd(self.nsx0.as_ptr().add(c));
            let x_hi = _mm_loadu_pd(self.nsx1.as_ptr().add(c));
            let y_lo = _mm_loadu_pd(self.nsy0.as_ptr().add(c));
            let y_hi = _mm_loadu_pd(self.nsy1.as_ptr().add(c));
            let gx = _mm_max_pd(
                _mm_max_pd(_mm_sub_pd(qx0, x_hi), _mm_sub_pd(x_lo, qx1)),
                zero,
            );
            let gy = _mm_max_pd(
                _mm_max_pd(_mm_sub_pd(qy0, y_hi), _mm_sub_pd(y_lo, qy1)),
                zero,
            );
            let gap2 = _mm_add_pd(_mm_mul_pd(gx, gx), _mm_mul_pd(gy, gy));
            let pass = _mm_and_pd(t_pass, _mm_cmple_pd(gap2, r2));
            let mut mask = _mm_movemask_pd(pass) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let child = c + lane;
                let t = self.nt[child];
                if q.t0 <= t[1] && t[0] <= q.t1 {
                    self.visit_ball(child, q, level, visit);
                }
            }
            c += 2;
        }
        self.scan_children_scalar(c, end, q, level, visit);
    }

    fn scan_leaf_scalar(
        &self,
        start: usize,
        end: usize,
        q: &BallQuery,
        visit: &mut impl FnMut(usize, f64),
    ) {
        for i in start..end {
            let t = self.it[i];
            if q.t0 <= t[1] && t[0] <= q.t1 {
                let xy = self.ixy[i];
                let gx = axis_gap(xy[0], xy[1], q.x0, q.x1);
                let gy = axis_gap(xy[2], xy[3], q.y0, q.y1);
                let gap2 = gx * gx + gy * gy;
                if gap2 <= q.r2 {
                    visit(i, gap2);
                }
            }
        }
    }

    /// AVX2 leaf scan: four items per iteration over the transposed bound
    /// lanes. Per lane it emits the exact statement sequence of
    /// [`scan_leaf_scalar`](Self::scan_leaf_scalar) — `axis_gap`'s
    /// subtract/max chain, then `gx·gx + gy·gy` — with correctly-rounded
    /// packed ops, so surviving lanes carry bit-identical `gap2`. The packed
    /// temporal test uses the outward-rounded `f64` lanes (a superset
    /// filter); each passing lane is rechecked against the exact `i64`
    /// bounds before `visit`, so the visited set is exactly the scalar one.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by dispatching on [`simd_level`], which
    /// clamps to runtime-detected features).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_leaf_avx2(
        &self,
        start: usize,
        end: usize,
        q: &BallQuery,
        visit: &mut impl FnMut(usize, f64),
    ) {
        use std::arch::x86_64::*;
        let zero = _mm256_setzero_pd();
        let qx0 = _mm256_set1_pd(q.x0);
        let qx1 = _mm256_set1_pd(q.x1);
        let qy0 = _mm256_set1_pd(q.y0);
        let qy1 = _mm256_set1_pd(q.y1);
        let qt0 = _mm256_set1_pd(q.t0f);
        let qt1 = _mm256_set1_pd(q.t1f);
        let r2 = _mm256_set1_pd(q.r2);
        let mut i = start;
        while i + 4 <= end {
            let t_lo = _mm256_loadu_pd(self.st0.as_ptr().add(i));
            let t_hi = _mm256_loadu_pd(self.st1.as_ptr().add(i));
            // qt0 <= t_hi && t_lo <= qt1 (outward-rounded, so never a false
            // reject; false admits are caught by the exact recheck below).
            let t_pass = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(qt0, t_hi),
                _mm256_cmp_pd::<_CMP_LE_OQ>(t_lo, qt1),
            );
            let x_lo = _mm256_loadu_pd(self.sx0.as_ptr().add(i));
            let x_hi = _mm256_loadu_pd(self.sx1.as_ptr().add(i));
            let y_lo = _mm256_loadu_pd(self.sy0.as_ptr().add(i));
            let y_hi = _mm256_loadu_pd(self.sy1.as_ptr().add(i));
            let gx = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(qx0, x_hi), _mm256_sub_pd(x_lo, qx1)),
                zero,
            );
            let gy = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(qy0, y_hi), _mm256_sub_pd(y_lo, qy1)),
                zero,
            );
            let gap2 = _mm256_add_pd(_mm256_mul_pd(gx, gx), _mm256_mul_pd(gy, gy));
            let pass = _mm256_and_pd(t_pass, _mm256_cmp_pd::<_CMP_LE_OQ>(gap2, r2));
            let mut mask = _mm256_movemask_pd(pass) as u32;
            if mask != 0 {
                let mut g = [0.0f64; 4];
                _mm256_storeu_pd(g.as_mut_ptr(), gap2);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let idx = i + lane;
                    let t = self.it[idx];
                    if q.t0 <= t[1] && t[0] <= q.t1 {
                        visit(idx, g[lane]);
                    }
                }
            }
            i += 4;
        }
        self.scan_leaf_scalar(i, end, q, visit);
    }

    /// SSE2 leaf scan: two items per iteration, same statement sequence and
    /// exactness contract as [`scan_leaf_avx2`](Self::scan_leaf_avx2).
    ///
    /// # Safety
    ///
    /// Requires SSE2 (always present on `x86_64`; kept `unsafe` for
    /// symmetry with the dispatch).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn scan_leaf_sse2(
        &self,
        start: usize,
        end: usize,
        q: &BallQuery,
        visit: &mut impl FnMut(usize, f64),
    ) {
        use std::arch::x86_64::*;
        let zero = _mm_setzero_pd();
        let qx0 = _mm_set1_pd(q.x0);
        let qx1 = _mm_set1_pd(q.x1);
        let qy0 = _mm_set1_pd(q.y0);
        let qy1 = _mm_set1_pd(q.y1);
        let qt0 = _mm_set1_pd(q.t0f);
        let qt1 = _mm_set1_pd(q.t1f);
        let r2 = _mm_set1_pd(q.r2);
        let mut i = start;
        while i + 2 <= end {
            let t_lo = _mm_loadu_pd(self.st0.as_ptr().add(i));
            let t_hi = _mm_loadu_pd(self.st1.as_ptr().add(i));
            let t_pass = _mm_and_pd(_mm_cmple_pd(qt0, t_hi), _mm_cmple_pd(t_lo, qt1));
            let x_lo = _mm_loadu_pd(self.sx0.as_ptr().add(i));
            let x_hi = _mm_loadu_pd(self.sx1.as_ptr().add(i));
            let y_lo = _mm_loadu_pd(self.sy0.as_ptr().add(i));
            let y_hi = _mm_loadu_pd(self.sy1.as_ptr().add(i));
            let gx = _mm_max_pd(
                _mm_max_pd(_mm_sub_pd(qx0, x_hi), _mm_sub_pd(x_lo, qx1)),
                zero,
            );
            let gy = _mm_max_pd(
                _mm_max_pd(_mm_sub_pd(qy0, y_hi), _mm_sub_pd(y_lo, qy1)),
                zero,
            );
            let gap2 = _mm_add_pd(_mm_mul_pd(gx, gx), _mm_mul_pd(gy, gy));
            let pass = _mm_and_pd(t_pass, _mm_cmple_pd(gap2, r2));
            let mut mask = _mm_movemask_pd(pass) as u32;
            if mask != 0 {
                let mut g = [0.0f64; 2];
                _mm_storeu_pd(g.as_mut_ptr(), gap2);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let idx = i + lane;
                    let t = self.it[idx];
                    if q.t0 <= t[1] && t[0] <= q.t1 {
                        visit(idx, g[lane]);
                    }
                }
            }
            i += 2;
        }
        self.scan_leaf_scalar(i, end, q, visit);
    }

    /// Visits every value whose lifespan intersects the temporal window
    /// (spatially unbounded) — the packed counterpart of
    /// [`RTree3D::query_temporal`](crate::RTree3D::query_temporal).
    #[inline]
    pub fn for_each_temporal_overlap<'a>(&'a self, w: &TimeInterval, mut visit: impl FnMut(&'a V)) {
        if self.is_empty() {
            return;
        }
        let qt0 = w.start.millis();
        let qt1 = w.end.millis();
        self.visit_temporal(self.root, qt0, qt1, &mut visit);
    }

    fn visit_temporal<'a>(
        &'a self,
        node: usize,
        qt0: i64,
        qt1: i64,
        visit: &mut impl FnMut(&'a V),
    ) {
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            for i in start..end {
                if qt0 <= self.it[i][1] && self.it[i][0] <= qt1 {
                    visit(&self.values[i]);
                }
            }
        } else {
            for c in start..end {
                if qt0 <= self.nt[c][1] && self.nt[c][0] <= qt1 {
                    self.visit_temporal(c, qt0, qt1, visit);
                }
            }
        }
    }

    /// All values whose lifespan intersects `w`, collected (convenience over
    /// [`PackedRTree::for_each_temporal_overlap`]).
    pub fn query_temporal(&self, w: &TimeInterval) -> Vec<&V> {
        let mut out = Vec::new();
        self.for_each_temporal_overlap(w, |v| out.push(v));
        out
    }

    /// All values whose box intersects `mbb`, collected.
    pub fn query_intersecting(&self, mbb: &Mbb) -> Vec<&V> {
        let mut out = Vec::new();
        self.for_each_intersecting(mbb, |v| out.push(v));
        out
    }

    /// The value stored at item index `i` (STR-tile order).
    #[inline]
    pub fn value(&self, i: usize) -> &V {
        &self.values[i]
    }

    /// The box of item `i`, reassembled from the slabs.
    pub fn item_mbb(&self, i: usize) -> Mbb {
        let xy = self.ixy[i];
        Mbb::new(
            xy[0],
            xy[1],
            xy[2],
            xy[3],
            Timestamp(self.it[i][0]),
            Timestamp(self.it[i][1]),
        )
    }

    /// Iterates over `(mbb, value)` in item-lane order.
    pub fn iter(&self) -> impl Iterator<Item = (Mbb, &V)> + '_ {
        (0..self.values.len()).map(move |i| (self.item_mbb(i), &self.values[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTree3D;

    fn boxy(x0: f64, x1: f64, y0: f64, y1: f64, t0: i64, t1: i64) -> Mbb {
        Mbb::new(x0, x1, y0, y1, Timestamp(t0), Timestamp(t1))
    }

    /// A deterministic pseudo-random box cloud (SplitMix64-style mixing so
    /// the shape is irregular without a datagen dependency).
    fn cloud(n: usize, seed: u64) -> Vec<(Mbb, usize)> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|i| {
                let x = next() * 1_000.0;
                let y = next() * 1_000.0;
                let t = (next() * 1_000_000.0) as i64;
                let w = next() * 30.0;
                let h = next() * 30.0;
                let d = (next() * 30_000.0) as i64;
                (boxy(x, x + w, y, y + h, t, t + d), i)
            })
            .collect()
    }

    #[test]
    fn matches_rtree3d_on_box_queries() {
        let items = cloud(500, 0xC0FFEE);
        let packed = PackedRTree::bulk_load(items.clone());
        let reference = RTree3D::bulk_load(items.clone());
        assert_eq!(packed.len(), 500);
        assert!(packed.height() >= 2);

        for q in [
            boxy(0.0, 200.0, 0.0, 200.0, 0, 300_000),
            boxy(400.0, 600.0, 100.0, 900.0, 500_000, 700_000),
            boxy(-50.0, -1.0, 0.0, 1_000.0, 0, 1_000_000),
            boxy(0.0, 1_000.0, 0.0, 1_000.0, 0, 2_000_000),
        ] {
            let mut a: Vec<usize> = packed.query_intersecting(&q).into_iter().copied().collect();
            let mut b: Vec<usize> = reference
                .query_intersecting(&q)
                .into_iter()
                .copied()
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn matches_rtree3d_on_temporal_queries() {
        let items = cloud(300, 42);
        let packed = PackedRTree::bulk_load(items.clone());
        let reference = RTree3D::bulk_load(items.clone());
        for (t0, t1) in [(0i64, 100_000i64), (250_000, 400_000), (999_999, 999_999)] {
            let w = TimeInterval::new(Timestamp(t0), Timestamp(t1));
            let mut a: Vec<usize> = packed.query_temporal(&w).into_iter().copied().collect();
            let mut b: Vec<usize> = reference.query_temporal(&w).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {t0}..{t1}");
        }
    }

    #[test]
    fn brute_force_agreement_on_small_sets() {
        for n in [0usize, 1, 2, 15, 16, 17, 100] {
            let items = cloud(n, n as u64 + 7);
            let packed = PackedRTree::bulk_load(items.clone());
            assert_eq!(packed.len(), n);
            let q = boxy(100.0, 600.0, 100.0, 600.0, 100_000, 600_000);
            let mut got: Vec<usize> = packed.query_intersecting(&q).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn empty_query_box_matches_nothing() {
        let packed = PackedRTree::bulk_load(cloud(64, 3));
        assert_eq!(packed.query_intersecting(&Mbb::empty()).len(), 0);
        let empty: PackedRTree<usize> = PackedRTree::bulk_load(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 0);
        assert_eq!(
            empty
                .query_intersecting(&boxy(0.0, 1.0, 0.0, 1.0, 0, 1))
                .len(),
            0
        );
        assert_eq!(
            empty
                .query_temporal(&TimeInterval::new(Timestamp(0), Timestamp(1)))
                .len(),
            0
        );
    }

    #[test]
    fn ball_candidates_match_brute_force_gap_test() {
        fn gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
            if a_max < b_min {
                b_min - a_max
            } else if b_max < a_min {
                a_min - b_max
            } else {
                0.0
            }
        }
        let items = cloud(400, 0xBA11);
        let packed = PackedRTree::bulk_load(items.clone());
        let q = boxy(300.0, 360.0, 300.0, 360.0, 200_000, 500_000);
        for radius in [0.0, 25.0, 120.0, 2_000.0] {
            let mut got: Vec<usize> = Vec::new();
            packed.for_each_ball_candidate_idx(&q, radius, |i, gap2| {
                assert!(gap2 >= 0.0 && gap2 <= radius * radius + 1e-9);
                got.push(*packed.value(i));
            });
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(b, _)| {
                    let temporal = q.t_min <= b.t_max && b.t_min <= q.t_max;
                    let gx = gap(b.x_min, b.x_max, q.x_min, q.x_max);
                    let gy = gap(b.y_min, b.y_max, q.y_min, q.y_max);
                    temporal && gx * gx + gy * gy <= radius * radius
                })
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
            // And every ball candidate intersects the radius-inflated box.
            let inflated = q.inflate(radius, 0);
            for &v in &got {
                assert!(items[v].0.intersects(&inflated));
            }
        }
    }

    /// Every SIMD width of the ball scan must visit exactly the scalar
    /// item set, in the same order, with bit-identical `gap2` — the
    /// traversal-level half of the voting hot path's exactness contract.
    #[test]
    fn ball_scan_widths_are_bit_identical_to_scalar() {
        use hermes_trajectory::SimdLevel;
        let items = cloud(500, 0x51_5D);
        let packed = PackedRTree::bulk_load(items);
        let queries = [
            boxy(300.0, 360.0, 300.0, 360.0, 200_000, 500_000),
            boxy(0.0, 80.0, 900.0, 1_000.0, 0, 80_000),
            boxy(450.0, 460.0, 450.0, 460.0, 400_000, 410_000),
        ];
        for q in &queries {
            for radius in [0.0, 25.0, 120.0, 2_000.0] {
                let mut reference: Vec<(usize, u64)> = Vec::new();
                packed.for_each_ball_candidate_idx_scalar(q, radius, |i, gap2| {
                    reference.push((i, gap2.to_bits()));
                });
                for level in [SimdLevel::Sse2, SimdLevel::Avx2] {
                    if level > hermes_trajectory::kernel::best_supported() {
                        continue;
                    }
                    let mut got: Vec<(usize, u64)> = Vec::new();
                    packed.ball_candidates_at(level, q, radius, &mut |i, gap2| {
                        got.push((i, gap2.to_bits()));
                    });
                    assert_eq!(got, reference, "{level:?} radius {radius}");
                }
                // The frozen PR 4 traversal sits in the same equality class.
                let mut frozen: Vec<(usize, u64)> = Vec::new();
                packed.for_each_ball_candidate_idx_frozen(q, radius, |i, gap2| {
                    frozen.push((i, gap2.to_bits()));
                });
                assert_eq!(frozen, reference, "frozen radius {radius}");
            }
        }
        // The auto entry dispatches somewhere in the same equality class.
        let mut auto_set: Vec<(usize, u64)> = Vec::new();
        packed.for_each_ball_candidate_idx(&queries[0], 120.0, |i, gap2| {
            auto_set.push((i, gap2.to_bits()));
        });
        let mut scalar_set: Vec<(usize, u64)> = Vec::new();
        packed.for_each_ball_candidate_idx_scalar(&queries[0], 120.0, |i, gap2| {
            scalar_set.push((i, gap2.to_bits()));
        });
        assert_eq!(auto_set, scalar_set);
    }

    #[test]
    fn iter_round_trips_items() {
        let items = cloud(40, 9);
        let packed = PackedRTree::bulk_load(items.clone());
        let mut got: Vec<usize> = packed.iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        for (mbb, &v) in packed.iter() {
            assert_eq!(items[v].0, mbb);
        }
        for i in 0..packed.len() {
            assert_eq!(packed.item_mbb(i), items[*packed.value(i)].0);
        }
    }
}
