//! A static, cache-linear 3D R-tree packed into flat arrays.
//!
//! [`PackedRTree`] is the bulk-load-only counterpart of [`RTree3D`]: the same
//! Sort-Tile-Recursive packing, but the result is laid out as parallel
//! structure-of-arrays lanes instead of a graph of per-node entry `Vec`s.
//! Item boxes live in one contiguous slab ordered by STR tile, node boxes in
//! another, and every node addresses its children as a `[start, end)` range —
//! so a range query is a walk over contiguous `f64`/`i64` lanes with **zero
//! heap allocation per query** (traversal recurses to the tree height, which
//! is logarithmic in the item count).
//!
//! This is the query structure behind the S2T voting hot path
//! (`hermes-s2t`'s `SegmentArena` index) and the packed base of the
//! ReTraTree's sub-chunk leaf indexes. It intentionally supports no
//! insertion or deletion: dynamic callers layer a small [`RTree3D`] delta on
//! top and rebuild the packed base on reorganisation.
//!
//! [`RTree3D`]: crate::RTree3D

use hermes_trajectory::{Mbb, TimeInterval, Timestamp};

/// Node fanout of the packed tree. Matches the GiST node capacity so packed
/// and incremental trees have comparable shapes.
const NODE_CAP: usize = 16;

/// Gap between two closed intervals along one axis (0 when they overlap).
///
/// Shared between the tree's ball traversal and the per-segment candidate
/// filter in `hermes-s2t`: the pruning-exactness argument of the voting hot
/// path requires both levels to compute the *same* lower bound, so there is
/// exactly one implementation.
#[inline]
pub fn axis_gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
    if a_max < b_min {
        b_min - a_max
    } else if b_max < a_min {
        a_min - b_max
    } else {
        0.0
    }
}

/// One level-by-level packed node: its bounding lanes live in the `n*` arrays
/// of the tree at the node's index.
#[derive(Debug, Clone, Copy)]
struct NodeRef {
    /// First child (node index for internal nodes, item index for leaves).
    start: u32,
    /// One past the last child.
    end: u32,
    /// True when the children are items, not nodes.
    leaf: bool,
}

/// A static 3D R-tree over values of type `V`, keyed by spatio-temporal
/// boxes, stored as flat parallel arrays.
///
/// Bounds are blocked by axis kind: the temporal bounds of item/node `i`
/// live in one `[t_min, t_max]` pair (a single 16-byte read) and the spatial
/// bounds in one `[x_min, x_max, y_min, y_max]` block (32 bytes). Traversals
/// test time first — on trajectory workloads it is the most selective axis —
/// so the common rejected candidate touches exactly one cache line.
pub struct PackedRTree<V> {
    // Item slabs, in STR-tile order. `values[i]` is keyed by the box
    // `(ixy[i], it[i])`.
    it: Vec<[i64; 2]>,
    ixy: Vec<[f64; 4]>,
    values: Vec<V>,
    // Node slabs. Leaves come first, then each internal level, root last.
    nt: Vec<[i64; 2]>,
    nxy: Vec<[f64; 4]>,
    nodes: Vec<NodeRef>,
    root: usize,
    height: usize,
}

impl<V> PackedRTree<V> {
    /// An empty tree (no items, no nodes; every query is a no-op).
    pub fn empty() -> Self {
        PackedRTree {
            it: Vec::new(),
            ixy: Vec::new(),
            values: Vec::new(),
            nt: Vec::new(),
            nxy: Vec::new(),
            nodes: Vec::new(),
            root: 0,
            height: 0,
        }
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing over the box
    /// centers (x, then y, then t) — the same tiling discipline as
    /// [`RTree3D::bulk_load`](crate::RTree3D::bulk_load), flattened into the
    /// blocked slabs.
    pub fn bulk_load(mut items: Vec<(Mbb, V)>) -> Self {
        if items.is_empty() {
            return Self::empty();
        }

        // Recursive STR tiling over the item slice; leaves are emitted as
        // `[start, end)` ranges over the final (sorted-in-place) order.
        fn tile<V>(
            items: &mut [(Mbb, V)],
            offset: usize,
            dim: usize,
            leaf_cap: usize,
            out: &mut Vec<(usize, usize)>,
        ) {
            if items.len() <= leaf_cap {
                out.push((offset, offset + items.len()));
                return;
            }
            if dim >= 3 {
                let mut at = 0usize;
                while at < items.len() {
                    let end = (at + leaf_cap).min(items.len());
                    out.push((offset + at, offset + end));
                    at = end;
                }
                return;
            }
            let center = |b: &Mbb| -> f64 {
                match dim {
                    0 => (b.x_min + b.x_max) / 2.0,
                    1 => (b.y_min + b.y_max) / 2.0,
                    _ => (b.t_min.as_secs_f64() + b.t_max.as_secs_f64()) / 2.0,
                }
            };
            items.sort_by(|a, b| {
                center(&a.0)
                    .partial_cmp(&center(&b.0))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let leaves_needed = items.len().div_ceil(leaf_cap);
            let slabs = (leaves_needed as f64).powf(1.0 / (3 - dim) as f64).ceil() as usize;
            let slab_size = items.len().div_ceil(slabs.max(1));
            let mut at = 0usize;
            while at < items.len() {
                let end = (at + slab_size).min(items.len());
                tile(&mut items[at..end], offset + at, dim + 1, leaf_cap, out);
                at = end;
            }
        }

        let mut leaf_ranges: Vec<(usize, usize)> = Vec::new();
        tile(&mut items, 0, 0, NODE_CAP, &mut leaf_ranges);

        let n = items.len();
        let mut tree = PackedRTree {
            it: Vec::with_capacity(n),
            ixy: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
            nt: Vec::new(),
            nxy: Vec::new(),
            nodes: Vec::new(),
            root: 0,
            height: 1,
        };
        for (mbb, value) in items {
            tree.it.push([mbb.t_min.millis(), mbb.t_max.millis()]);
            tree.ixy.push([mbb.x_min, mbb.x_max, mbb.y_min, mbb.y_max]);
            tree.values.push(value);
        }

        // Leaf nodes: bounds of their item ranges.
        let mut level: Vec<usize> = Vec::with_capacity(leaf_ranges.len());
        for (start, end) in leaf_ranges {
            let idx = tree.push_node(NodeRef {
                start: start as u32,
                end: end as u32,
                leaf: true,
            });
            tree.set_node_bounds_from_items(idx, start, end);
            level.push(idx);
        }
        // Internal levels until one root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAP));
            for chunk in level.chunks(NODE_CAP) {
                let idx = tree.push_node(NodeRef {
                    start: chunk[0] as u32,
                    end: (chunk[chunk.len() - 1] + 1) as u32,
                    leaf: false,
                });
                tree.set_node_bounds_from_nodes(idx, chunk[0], chunk[chunk.len() - 1] + 1);
                next.push(idx);
            }
            level = next;
            tree.height += 1;
        }
        tree.root = level[0];
        tree
    }

    fn push_node(&mut self, node: NodeRef) -> usize {
        self.nodes.push(node);
        self.nt.push([0, 0]);
        self.nxy.push([0.0; 4]);
        self.nodes.len() - 1
    }

    fn set_node_bounds_from_items(&mut self, node: usize, start: usize, end: usize) {
        let mut xy = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let mut t = [i64::MAX, i64::MIN];
        for i in start..end {
            xy[0] = xy[0].min(self.ixy[i][0]);
            xy[1] = xy[1].max(self.ixy[i][1]);
            xy[2] = xy[2].min(self.ixy[i][2]);
            xy[3] = xy[3].max(self.ixy[i][3]);
            t[0] = t[0].min(self.it[i][0]);
            t[1] = t[1].max(self.it[i][1]);
        }
        self.nxy[node] = xy;
        self.nt[node] = t;
    }

    fn set_node_bounds_from_nodes(&mut self, node: usize, start: usize, end: usize) {
        let mut xy = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let mut t = [i64::MAX, i64::MIN];
        for i in start..end {
            xy[0] = xy[0].min(self.nxy[i][0]);
            xy[1] = xy[1].max(self.nxy[i][1]);
            xy[2] = xy[2].min(self.nxy[i][2]);
            xy[3] = xy[3].max(self.nxy[i][3]);
            t[0] = t[0].min(self.nt[i][0]);
            t[1] = t[1].max(self.nt[i][1]);
        }
        self.nxy[node] = xy;
        self.nt[node] = t;
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Height of the packed tree (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.height
        }
    }

    /// Visits every item index whose box intersects the query box. The
    /// visitor receives the *item index* into this tree's lanes — use
    /// [`PackedRTree::value`] and the `item_*` accessors, or the convenience
    /// wrappers below. Allocation-free.
    #[inline]
    pub fn for_each_intersecting_idx(&self, query: &Mbb, mut visit: impl FnMut(usize)) {
        if self.is_empty() {
            return;
        }
        let qx0 = query.x_min;
        let qx1 = query.x_max;
        let qy0 = query.y_min;
        let qy1 = query.y_max;
        let qt0 = query.t_min.millis();
        let qt1 = query.t_max.millis();
        self.visit_box(self.root, qx0, qx1, qy0, qy1, qt0, qt1, &mut visit);
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_box(
        &self,
        node: usize,
        qx0: f64,
        qx1: f64,
        qy0: f64,
        qy1: f64,
        qt0: i64,
        qt1: i64,
        visit: &mut impl FnMut(usize),
    ) {
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            for i in start..end {
                let t = self.it[i];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.ixy[i];
                    if qx0 <= xy[1] && xy[0] <= qx1 && qy0 <= xy[3] && xy[2] <= qy1 {
                        visit(i);
                    }
                }
            }
        } else {
            for c in start..end {
                let t = self.nt[c];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.nxy[c];
                    if qx0 <= xy[1] && xy[0] <= qx1 && qy0 <= xy[3] && xy[2] <= qy1 {
                        self.visit_box(c, qx0, qx1, qy0, qy1, qt0, qt1, visit);
                    }
                }
            }
        }
    }

    /// Visits every value whose box intersects `query` (allocation-free).
    pub fn for_each_intersecting<'a>(&'a self, query: &Mbb, mut visit: impl FnMut(&'a V)) {
        self.for_each_intersecting_idx(query, |i| visit(&self.values[i]));
    }

    /// Visits every item whose lifespan intersects `query`'s lifespan **and**
    /// whose minimum spatial (x/y) distance to `query` is at most `radius`.
    /// The visitor receives the item index plus the **squared spatial gap**
    /// between the item's box and the query box, so distance-kernel callers
    /// can use it as a free lower bound on the true distance.
    ///
    /// This is the candidate query of a distance-cutoff kernel (the S2T
    /// voting ball): it prunes strictly more than intersecting with the
    /// radius-inflated box — a per-axis inflate admits corner candidates up
    /// to `√2·radius` away, the Euclidean gap test here rejects them, at the
    /// node level as well as the item level. Allocation-free.
    #[inline]
    pub fn for_each_ball_candidate_idx(
        &self,
        query: &Mbb,
        radius: f64,
        mut visit: impl FnMut(usize, f64),
    ) {
        if self.is_empty() {
            return;
        }
        let r2 = radius * radius;
        self.visit_ball(
            self.root,
            query.x_min,
            query.x_max,
            query.y_min,
            query.y_max,
            query.t_min.millis(),
            query.t_max.millis(),
            r2,
            &mut visit,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_ball(
        &self,
        node: usize,
        qx0: f64,
        qx1: f64,
        qy0: f64,
        qy1: f64,
        qt0: i64,
        qt1: i64,
        r2: f64,
        visit: &mut impl FnMut(usize, f64),
    ) {
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            for i in start..end {
                let t = self.it[i];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.ixy[i];
                    let gx = axis_gap(xy[0], xy[1], qx0, qx1);
                    let gy = axis_gap(xy[2], xy[3], qy0, qy1);
                    let gap2 = gx * gx + gy * gy;
                    if gap2 <= r2 {
                        visit(i, gap2);
                    }
                }
            }
        } else {
            for c in start..end {
                let t = self.nt[c];
                if qt0 <= t[1] && t[0] <= qt1 {
                    let xy = self.nxy[c];
                    let gx = axis_gap(xy[0], xy[1], qx0, qx1);
                    let gy = axis_gap(xy[2], xy[3], qy0, qy1);
                    if gx * gx + gy * gy <= r2 {
                        self.visit_ball(c, qx0, qx1, qy0, qy1, qt0, qt1, r2, visit);
                    }
                }
            }
        }
    }

    /// Visits every value whose lifespan intersects the temporal window
    /// (spatially unbounded) — the packed counterpart of
    /// [`RTree3D::query_temporal`](crate::RTree3D::query_temporal).
    #[inline]
    pub fn for_each_temporal_overlap<'a>(&'a self, w: &TimeInterval, mut visit: impl FnMut(&'a V)) {
        if self.is_empty() {
            return;
        }
        let qt0 = w.start.millis();
        let qt1 = w.end.millis();
        self.visit_temporal(self.root, qt0, qt1, &mut visit);
    }

    fn visit_temporal<'a>(
        &'a self,
        node: usize,
        qt0: i64,
        qt1: i64,
        visit: &mut impl FnMut(&'a V),
    ) {
        let n = self.nodes[node];
        let (start, end) = (n.start as usize, n.end as usize);
        if n.leaf {
            for i in start..end {
                if qt0 <= self.it[i][1] && self.it[i][0] <= qt1 {
                    visit(&self.values[i]);
                }
            }
        } else {
            for c in start..end {
                if qt0 <= self.nt[c][1] && self.nt[c][0] <= qt1 {
                    self.visit_temporal(c, qt0, qt1, visit);
                }
            }
        }
    }

    /// All values whose lifespan intersects `w`, collected (convenience over
    /// [`PackedRTree::for_each_temporal_overlap`]).
    pub fn query_temporal(&self, w: &TimeInterval) -> Vec<&V> {
        let mut out = Vec::new();
        self.for_each_temporal_overlap(w, |v| out.push(v));
        out
    }

    /// All values whose box intersects `mbb`, collected.
    pub fn query_intersecting(&self, mbb: &Mbb) -> Vec<&V> {
        let mut out = Vec::new();
        self.for_each_intersecting(mbb, |v| out.push(v));
        out
    }

    /// The value stored at item index `i` (STR-tile order).
    #[inline]
    pub fn value(&self, i: usize) -> &V {
        &self.values[i]
    }

    /// The box of item `i`, reassembled from the slabs.
    pub fn item_mbb(&self, i: usize) -> Mbb {
        let xy = self.ixy[i];
        Mbb::new(
            xy[0],
            xy[1],
            xy[2],
            xy[3],
            Timestamp(self.it[i][0]),
            Timestamp(self.it[i][1]),
        )
    }

    /// Iterates over `(mbb, value)` in item-lane order.
    pub fn iter(&self) -> impl Iterator<Item = (Mbb, &V)> + '_ {
        (0..self.values.len()).map(move |i| (self.item_mbb(i), &self.values[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTree3D;

    fn boxy(x0: f64, x1: f64, y0: f64, y1: f64, t0: i64, t1: i64) -> Mbb {
        Mbb::new(x0, x1, y0, y1, Timestamp(t0), Timestamp(t1))
    }

    /// A deterministic pseudo-random box cloud (SplitMix64-style mixing so
    /// the shape is irregular without a datagen dependency).
    fn cloud(n: usize, seed: u64) -> Vec<(Mbb, usize)> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|i| {
                let x = next() * 1_000.0;
                let y = next() * 1_000.0;
                let t = (next() * 1_000_000.0) as i64;
                let w = next() * 30.0;
                let h = next() * 30.0;
                let d = (next() * 30_000.0) as i64;
                (boxy(x, x + w, y, y + h, t, t + d), i)
            })
            .collect()
    }

    #[test]
    fn matches_rtree3d_on_box_queries() {
        let items = cloud(500, 0xC0FFEE);
        let packed = PackedRTree::bulk_load(items.clone());
        let reference = RTree3D::bulk_load(items.clone());
        assert_eq!(packed.len(), 500);
        assert!(packed.height() >= 2);

        for q in [
            boxy(0.0, 200.0, 0.0, 200.0, 0, 300_000),
            boxy(400.0, 600.0, 100.0, 900.0, 500_000, 700_000),
            boxy(-50.0, -1.0, 0.0, 1_000.0, 0, 1_000_000),
            boxy(0.0, 1_000.0, 0.0, 1_000.0, 0, 2_000_000),
        ] {
            let mut a: Vec<usize> = packed.query_intersecting(&q).into_iter().copied().collect();
            let mut b: Vec<usize> = reference
                .query_intersecting(&q)
                .into_iter()
                .copied()
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn matches_rtree3d_on_temporal_queries() {
        let items = cloud(300, 42);
        let packed = PackedRTree::bulk_load(items.clone());
        let reference = RTree3D::bulk_load(items.clone());
        for (t0, t1) in [(0i64, 100_000i64), (250_000, 400_000), (999_999, 999_999)] {
            let w = TimeInterval::new(Timestamp(t0), Timestamp(t1));
            let mut a: Vec<usize> = packed.query_temporal(&w).into_iter().copied().collect();
            let mut b: Vec<usize> = reference.query_temporal(&w).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {t0}..{t1}");
        }
    }

    #[test]
    fn brute_force_agreement_on_small_sets() {
        for n in [0usize, 1, 2, 15, 16, 17, 100] {
            let items = cloud(n, n as u64 + 7);
            let packed = PackedRTree::bulk_load(items.clone());
            assert_eq!(packed.len(), n);
            let q = boxy(100.0, 600.0, 100.0, 600.0, 100_000, 600_000);
            let mut got: Vec<usize> = packed.query_intersecting(&q).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn empty_query_box_matches_nothing() {
        let packed = PackedRTree::bulk_load(cloud(64, 3));
        assert_eq!(packed.query_intersecting(&Mbb::empty()).len(), 0);
        let empty: PackedRTree<usize> = PackedRTree::bulk_load(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 0);
        assert_eq!(
            empty
                .query_intersecting(&boxy(0.0, 1.0, 0.0, 1.0, 0, 1))
                .len(),
            0
        );
        assert_eq!(
            empty
                .query_temporal(&TimeInterval::new(Timestamp(0), Timestamp(1)))
                .len(),
            0
        );
    }

    #[test]
    fn ball_candidates_match_brute_force_gap_test() {
        fn gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
            if a_max < b_min {
                b_min - a_max
            } else if b_max < a_min {
                a_min - b_max
            } else {
                0.0
            }
        }
        let items = cloud(400, 0xBA11);
        let packed = PackedRTree::bulk_load(items.clone());
        let q = boxy(300.0, 360.0, 300.0, 360.0, 200_000, 500_000);
        for radius in [0.0, 25.0, 120.0, 2_000.0] {
            let mut got: Vec<usize> = Vec::new();
            packed.for_each_ball_candidate_idx(&q, radius, |i, gap2| {
                assert!(gap2 >= 0.0 && gap2 <= radius * radius + 1e-9);
                got.push(*packed.value(i));
            });
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(b, _)| {
                    let temporal = q.t_min <= b.t_max && b.t_min <= q.t_max;
                    let gx = gap(b.x_min, b.x_max, q.x_min, q.x_max);
                    let gy = gap(b.y_min, b.y_max, q.y_min, q.y_max);
                    temporal && gx * gx + gy * gy <= radius * radius
                })
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
            // And every ball candidate intersects the radius-inflated box.
            let inflated = q.inflate(radius, 0);
            for &v in &got {
                assert!(items[v].0.intersects(&inflated));
            }
        }
    }

    #[test]
    fn iter_round_trips_items() {
        let items = cloud(40, 9);
        let packed = PackedRTree::bulk_load(items.clone());
        let mut got: Vec<usize> = packed.iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        for (mbb, &v) in packed.iter() {
            assert_eq!(items[v].0, mbb);
        }
        for i in 0..packed.len() {
            assert_eq!(packed.item_mbb(i), items[*packed.value(i)].0);
        }
    }
}
