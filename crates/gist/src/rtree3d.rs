//! The `pg3D-Rtree` operator class and a convenience wrapper.
//!
//! This is the paper's trajectory-tailored 3D R-tree "implemented from
//! scratch on top of GiST": the key is a spatio-temporal bounding box
//! ([`Mbb`]), the penalty is volume enlargement, and the split is the classic
//! R*-style axis/margin heuristic. The `RTree3D` wrapper offers the query
//! surface the rest of the workspace needs (range queries over boxes or time
//! windows, and nearest-neighbour scans around a 3D point).

use crate::opclass::OpClass;
use crate::tree::{Gist, GistStats, MIN_ENTRIES};
use hermes_trajectory::{Mbb, Point, TimeInterval};

/// How many spatial units one second of temporal separation is worth in
/// volume/distance computations. The workspace-wide convention is 1 unit/s,
/// roughly the cruise ground-speed scale of the synthetic generators; queries
/// that need different weighting pass an explicit weight.
pub const DEFAULT_TIME_WEIGHT: f64 = 1.0;

/// Query predicate understood by the pg3D-Rtree operator class.
#[derive(Debug, Clone)]
pub enum RangeQuery {
    /// Matches entries whose box intersects the given box.
    Intersects(Mbb),
    /// Matches entries whose box is fully contained in the given box.
    ContainedIn(Mbb),
    /// Matches entries whose lifespan intersects the temporal window
    /// (spatially unbounded) — the access path behind `QUT(D, Wi, We, …)`.
    TemporalOverlap(TimeInterval),
    /// Matches everything; ordering queries use the target point.
    NearestTo(Point),
}

/// GiST operator class for 3D (space + time) bounding boxes.
pub struct Box3OpClass;

impl OpClass for Box3OpClass {
    type Key = Mbb;
    type Query = RangeQuery;

    fn consistent(key: &Mbb, query: &RangeQuery, is_leaf: bool) -> bool {
        match query {
            RangeQuery::Intersects(b) => key.intersects(b),
            RangeQuery::ContainedIn(b) => {
                if is_leaf {
                    b.contains(key)
                } else {
                    // An internal key only needs to *intersect*: a contained
                    // entry may exist below even if the union is not contained.
                    key.intersects(b)
                }
            }
            RangeQuery::TemporalOverlap(w) => key.time_interval().intersects(w),
            RangeQuery::NearestTo(_) => true,
        }
    }

    fn union(keys: &[Mbb]) -> Mbb {
        let mut u = Mbb::empty();
        for k in keys {
            u.expand(k);
        }
        u
    }

    fn penalty(existing: &Mbb, new: &Mbb) -> f64 {
        let before = existing.volume(DEFAULT_TIME_WEIGHT);
        let after = existing.union(new).volume(DEFAULT_TIME_WEIGHT);
        after - before
    }

    fn picksplit(keys: &[Mbb]) -> (Vec<usize>, Vec<usize>) {
        // R*-style split: choose the axis with the smallest total margin over
        // all candidate distributions, then the distribution with minimal
        // overlap (ties broken by total volume).
        #[derive(Clone, Copy)]
        enum Axis {
            X,
            Y,
            T,
        }
        let axes = [Axis::X, Axis::Y, Axis::T];
        let center = |b: &Mbb, axis: Axis| -> f64 {
            match axis {
                Axis::X => (b.x_min + b.x_max) / 2.0,
                Axis::Y => (b.y_min + b.y_max) / 2.0,
                Axis::T => (b.t_min.as_secs_f64() + b.t_max.as_secs_f64()) / 2.0,
            }
        };

        // (overlap, volume, axis index, split position) — the winning order
        // is re-derived once at the end, so no candidate ever clones a Vec.
        let mut best: Option<(f64, f64, usize, usize)> = None;
        let mut prefix: Vec<Mbb> = Vec::with_capacity(keys.len());
        let mut suffix: Vec<Mbb> = Vec::with_capacity(keys.len());
        for (axis_idx, axis) in axes.into_iter().enumerate() {
            let mut order: Vec<usize> = (0..keys.len()).collect();
            order.sort_by(|&a, &b| {
                center(&keys[a], axis)
                    .partial_cmp(&center(&keys[b], axis))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Running unions over `keys` indexed through `order` directly:
            // prefix[i] covers order[..=i], suffix[i] covers order[i..]. Box
            // union is a pure min/max fold, so these incremental unions are
            // bit-identical to re-folding each candidate side from scratch —
            // at O(n) per axis instead of the old O(n²) `collect` per split.
            prefix.clear();
            let mut acc = Mbb::empty();
            for &i in &order {
                acc.expand(&keys[i]);
                prefix.push(acc);
            }
            suffix.clear();
            suffix.resize(keys.len(), Mbb::empty());
            let mut acc = Mbb::empty();
            for (slot, &i) in order.iter().enumerate().rev() {
                acc.expand(&keys[i]);
                suffix[slot] = acc;
            }
            let min_fill = MIN_ENTRIES.max(1);
            for split_at in min_fill..=(keys.len() - min_fill) {
                let lu = &prefix[split_at - 1];
                let ru = &suffix[split_at];
                let overlap = lu.overlap_volume(ru, DEFAULT_TIME_WEIGHT);
                let volume = lu.volume(DEFAULT_TIME_WEIGHT) + ru.volume(DEFAULT_TIME_WEIGHT);
                let better = match &best {
                    None => true,
                    Some((bo, bv, _, _)) => overlap < *bo || (overlap == *bo && volume < *bv),
                };
                if better {
                    best = Some((overlap, volume, axis_idx, split_at));
                }
            }
        }
        let (_, _, axis_idx, split_at) = best.expect("picksplit called with enough keys to split");
        // Re-derive the winning axis order once (the sort is deterministic,
        // so this reproduces exactly the order the winner was scored on).
        let axis = axes[axis_idx];
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by(|&a, &b| {
            center(&keys[a], axis)
                .partial_cmp(&center(&keys[b], axis))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let right = order[split_at..].to_vec();
        let mut left = order;
        left.truncate(split_at);
        (left, right)
    }

    fn distance(key: &Mbb, query: &RangeQuery) -> f64 {
        match query {
            RangeQuery::NearestTo(p) => key.min_distance(&Mbb::from_point(p), DEFAULT_TIME_WEIGHT),
            // Range queries are unordered; any constant keeps the scan valid.
            _ => 0.0,
        }
    }
}

/// A 3D R-tree over values of type `V`, keyed by spatio-temporal boxes.
///
/// Thin wrapper around [`Gist<Box3OpClass, V>`] providing the query surface
/// used by the voting, ReTraTree and storage layers.
#[derive(Clone)]
pub struct RTree3D<V> {
    tree: Gist<Box3OpClass, V>,
}

impl<V> Default for RTree3D<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RTree3D<V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        RTree3D { tree: Gist::new() }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a value under its bounding box.
    pub fn insert(&mut self, mbb: Mbb, value: V) {
        self.tree.insert(mbb, value);
    }

    /// All values whose box intersects `mbb`.
    pub fn query_intersecting(&self, mbb: &Mbb) -> Vec<&V> {
        self.tree.query(&RangeQuery::Intersects(*mbb))
    }

    /// All values whose box is fully contained in `mbb`.
    pub fn query_contained(&self, mbb: &Mbb) -> Vec<&V> {
        self.tree.query(&RangeQuery::ContainedIn(*mbb))
    }

    /// All values whose lifespan intersects the temporal window `w`.
    pub fn query_temporal(&self, w: &TimeInterval) -> Vec<&V> {
        self.tree.query(&RangeQuery::TemporalOverlap(*w))
    }

    /// Visits `(mbb, value)` pairs intersecting `mbb` without materializing a
    /// vector; used by the voting inner loop.
    pub fn for_each_intersecting<'a>(&'a self, mbb: &Mbb, visit: impl FnMut(&'a Mbb, &'a V)) {
        self.tree.search(&RangeQuery::Intersects(*mbb), visit);
    }

    /// Up to `k` values nearest to the spatio-temporal point `p`
    /// (box-to-point distance, nearest first).
    pub fn nearest(&self, p: &Point, k: usize) -> Vec<(&V, f64)> {
        self.tree.nearest(&RangeQuery::NearestTo(*p), k)
    }

    /// Removes entries intersecting `mbb` for which `pred` holds; returns the
    /// number removed.
    pub fn remove_where(&mut self, mbb: &Mbb, pred: impl FnMut(&V) -> bool) -> usize {
        self.tree.remove_where(&RangeQuery::Intersects(*mbb), pred)
    }

    /// Iterates over all `(mbb, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Mbb, &V)> {
        self.tree.iter()
    }

    /// Structural statistics of the underlying GiST.
    pub fn stats(&self) -> GistStats {
        self.tree.stats()
    }

    /// Verifies GiST invariants (tests only).
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
    }
}

impl<V: Clone> RTree3D<V> {
    /// Bulk-loads an index with Sort-Tile-Recursive packing over the box
    /// centers (x, then y, then t).
    pub fn bulk_load(items: Vec<(Mbb, V)>) -> Self {
        let tree = Gist::bulk_load(items, |b: &Mbb| {
            let (cx, cy, ct) = b.center();
            [cx, cy, ct]
        });
        RTree3D { tree }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Timestamp;

    fn boxy(x0: f64, x1: f64, y0: f64, y1: f64, t0: i64, t1: i64) -> Mbb {
        Mbb::new(x0, x1, y0, y1, Timestamp(t0), Timestamp(t1))
    }

    fn unit_box_at(i: usize) -> Mbb {
        let f = i as f64;
        boxy(
            f,
            f + 1.0,
            f * 2.0,
            f * 2.0 + 1.0,
            i as i64 * 1000,
            i as i64 * 1000 + 1000,
        )
    }

    #[test]
    fn insert_and_range_query() {
        let mut t = RTree3D::new();
        for i in 0..200 {
            t.insert(unit_box_at(i), i);
        }
        assert_eq!(t.len(), 200);
        t.check_invariants();

        let q = boxy(10.0, 20.0, 0.0, 1000.0, 0, 1_000_000);
        let mut hits: Vec<usize> = t.query_intersecting(&q).into_iter().copied().collect();
        hits.sort_unstable();
        let expected: Vec<usize> = (0..200)
            .filter(|&i| unit_box_at(i).intersects(&q))
            .collect();
        assert_eq!(hits, expected);
        assert!(!hits.is_empty());
    }

    #[test]
    fn containment_query_filters_partially_overlapping() {
        let mut t = RTree3D::new();
        t.insert(boxy(0.0, 1.0, 0.0, 1.0, 0, 1_000), "inside");
        t.insert(boxy(0.0, 20.0, 0.0, 20.0, 0, 1_000), "straddles");
        let q = boxy(-1.0, 2.0, -1.0, 2.0, -1, 2_000);
        let contained: Vec<&str> = t.query_contained(&q).into_iter().copied().collect();
        assert_eq!(contained, vec!["inside"]);
        let intersecting = t.query_intersecting(&q);
        assert_eq!(intersecting.len(), 2);
    }

    #[test]
    fn temporal_query_uses_time_axis_only() {
        let mut t = RTree3D::new();
        for i in 0..50 {
            t.insert(unit_box_at(i), i);
        }
        let w = TimeInterval::new(Timestamp(10_000), Timestamp(20_000));
        let mut hits: Vec<usize> = t.query_temporal(&w).into_iter().copied().collect();
        hits.sort_unstable();
        let expected: Vec<usize> = (0..50)
            .filter(|&i| unit_box_at(i).time_interval().intersects(&w))
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn nearest_returns_sorted_distances() {
        let mut t = RTree3D::new();
        for i in 0..100 {
            t.insert(unit_box_at(i), i);
        }
        let p = Point::new(50.0, 100.0, Timestamp(50_000));
        let res = t.nearest(&p, 5);
        assert_eq!(res.len(), 5);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1, "distances must be non-decreasing");
        }
        // The box generated for i=49..50 should be among the closest.
        let ids: Vec<usize> = res.iter().map(|(v, _)| **v).collect();
        assert!(ids.contains(&49) || ids.contains(&50));
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut t = RTree3D::new();
        let boxes: Vec<Mbb> = (0..150).map(unit_box_at).collect();
        for (i, b) in boxes.iter().enumerate() {
            t.insert(*b, i);
        }
        let p = Point::new(30.0, 61.0, Timestamp(31_000));
        let knn = t.nearest(&p, 10);
        let mut linear: Vec<(usize, f64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.min_distance(&Mbb::from_point(&p), DEFAULT_TIME_WEIGHT)))
            .collect();
        linear.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let knn_dists: Vec<f64> = knn.iter().map(|(_, d)| *d).collect();
        let lin_dists: Vec<f64> = linear.iter().take(10).map(|(_, d)| *d).collect();
        for (a, b) in knn_dists.iter().zip(lin_dists.iter()) {
            assert!((a - b).abs() < 1e-9, "kNN distance mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn remove_where_deletes_matching_entries() {
        let mut t = RTree3D::new();
        for i in 0..100 {
            t.insert(unit_box_at(i), i);
        }
        let region = boxy(0.0, 10.0, 0.0, 30.0, 0, 20_000);
        let before = t.query_intersecting(&region).len();
        assert!(before > 0);
        let removed = t.remove_where(&region, |v| *v % 2 == 0);
        assert!(removed > 0);
        assert_eq!(t.len(), 100 - removed);
        let remaining: Vec<usize> = t.query_intersecting(&region).into_iter().copied().collect();
        assert!(remaining.iter().all(|v| v % 2 == 1));
    }

    #[test]
    fn bulk_load_equals_incremental_queries() {
        let items: Vec<(Mbb, usize)> = (0..300).map(|i| (unit_box_at(i), i)).collect();
        let bulk = RTree3D::bulk_load(items.clone());
        assert_eq!(bulk.len(), 300);
        bulk.check_invariants();

        let mut incr = RTree3D::new();
        for (b, v) in items {
            incr.insert(b, v);
        }
        for q in [
            boxy(5.0, 25.0, 0.0, 100.0, 0, 100_000),
            boxy(100.0, 150.0, 200.0, 260.0, 120_000, 160_000),
            boxy(-10.0, -1.0, -10.0, -1.0, -10_000, -1_000),
        ] {
            let mut a: Vec<usize> = bulk.query_intersecting(&q).into_iter().copied().collect();
            let mut b: Vec<usize> = incr.query_intersecting(&q).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_is_shallower_than_incremental_for_same_data() {
        let items: Vec<(Mbb, usize)> = (0..2000).map(|i| (unit_box_at(i), i)).collect();
        let bulk = RTree3D::bulk_load(items.clone());
        let mut incr = RTree3D::new();
        for (b, v) in items {
            incr.insert(b, v);
        }
        assert!(bulk.stats().height <= incr.stats().height);
        assert_eq!(bulk.len(), incr.len());
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RTree3D<u32> = RTree3D::new();
        assert!(t.is_empty());
        assert!(t
            .query_intersecting(&boxy(0.0, 1.0, 0.0, 1.0, 0, 1))
            .is_empty());
        assert!(t.nearest(&Point::new(0.0, 0.0, Timestamp(0)), 3).is_empty());
        let empty_bulk: RTree3D<u32> = RTree3D::bulk_load(Vec::new());
        assert!(empty_bulk.is_empty());
    }

    #[test]
    fn stats_reflect_structure() {
        let mut t = RTree3D::new();
        for i in 0..500 {
            t.insert(unit_box_at(i), i);
        }
        let s = t.stats();
        assert_eq!(s.len, 500);
        assert!(s.height >= 2);
        assert!(s.leaf_nodes > 1);
        assert!(s.internal_nodes >= 1);
    }
}
