//! The generic, height-balanced Generalized Search Tree.
//!
//! The tree stores `(Key, Value)` pairs in its leaves and maintains, for every
//! internal entry, the operator-class `union` of the keys below it. All
//! structural decisions (which child to descend, how to split an overflowing
//! node) are delegated to the [`OpClass`].

use crate::opclass::OpClass;
use std::collections::BinaryHeap;

/// Maximum number of entries in a node before it is split.
const MAX_ENTRIES: usize = 16;
/// Minimum number of entries produced on each side of a split.
pub(crate) const MIN_ENTRIES: usize = MAX_ENTRIES / 4;

/// A generic GiST over operator class `O`, storing values of type `V`.
pub struct Gist<O: OpClass, V> {
    nodes: Vec<Node<O::Key, V>>,
    root: usize,
    len: usize,
    height: usize,
    free: Vec<usize>,
}

#[derive(Clone)]
enum Node<K, V> {
    Internal { entries: Vec<(K, usize)> },
    Leaf { entries: Vec<(K, V)> },
}

// Manual impl: `O` itself is phantom-like (only `O::Key` is stored), so the
// derive's `O: Clone` bound would be both unnecessary and unsatisfiable for
// unit-less operator classes.
impl<O: OpClass, V: Clone> Clone for Gist<O, V> {
    fn clone(&self) -> Self {
        Gist {
            nodes: self.nodes.clone(),
            root: self.root,
            len: self.len,
            height: self.height,
            free: self.free.clone(),
        }
    }
}

/// Structural statistics of a tree, used by the benchmarks and by tests that
/// verify balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GistStats {
    /// Number of stored values.
    pub len: usize,
    /// Height of the tree (a single leaf has height 1).
    pub height: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Number of internal nodes.
    pub internal_nodes: usize,
}

impl<O: OpClass, V> Default for Gist<O, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: OpClass, V> Gist<O, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Gist {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            len: 0,
            height: 1,
            free: Vec::new(),
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    fn alloc(&mut self, node: Node<O::Key, V>) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Inserts a `(key, value)` pair.
    pub fn insert(&mut self, key: O::Key, value: V) {
        self.len += 1;
        if let Some((k1, n1, k2, n2)) = self.insert_at(self.root, key, value, self.height) {
            // Root split: grow the tree by one level.
            let new_root = self.alloc(Node::Internal {
                entries: vec![(k1, n1), (k2, n2)],
            });
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Recursive insert. Returns `Some((left_key, left_idx, right_key,
    /// right_idx))` when the visited node split.
    #[allow(clippy::type_complexity)]
    fn insert_at(
        &mut self,
        node_idx: usize,
        key: O::Key,
        value: V,
        level: usize,
    ) -> Option<(O::Key, usize, O::Key, usize)> {
        if level == 1 {
            // Leaf level.
            let Node::Leaf { entries } = &mut self.nodes[node_idx] else {
                unreachable!("level-1 node must be a leaf");
            };
            entries.push((key, value));
            if entries.len() <= MAX_ENTRIES {
                return None;
            }
            return Some(self.split_leaf(node_idx));
        }

        // Internal node: choose the child with minimum penalty.
        let child_slot = {
            let Node::Internal { entries } = &self.nodes[node_idx] else {
                unreachable!("non-leaf level must be an internal node");
            };
            let mut best = 0usize;
            let mut best_penalty = f64::INFINITY;
            for (i, (k, _)) in entries.iter().enumerate() {
                let p = O::penalty(k, &key);
                if p < best_penalty {
                    best_penalty = p;
                    best = i;
                }
            }
            best
        };
        let child_idx = match &self.nodes[node_idx] {
            Node::Internal { entries } => entries[child_slot].1,
            Node::Leaf { .. } => unreachable!(),
        };

        let split = self.insert_at(child_idx, key.clone(), value, level - 1);

        // Refresh the child's bounding key (and apply a split if one happened).
        let child_key = self.node_union(child_idx);
        let Node::Internal { entries } = &mut self.nodes[node_idx] else {
            unreachable!();
        };
        entries[child_slot].0 = child_key;
        if let Some((k1, n1, k2, n2)) = split {
            entries[child_slot] = (k1, n1);
            entries.push((k2, n2));
        }
        if entries.len() <= MAX_ENTRIES {
            return None;
        }
        Some(self.split_internal(node_idx))
    }

    fn node_union(&self, node_idx: usize) -> O::Key {
        match &self.nodes[node_idx] {
            Node::Internal { entries } => {
                let keys: Vec<O::Key> = entries.iter().map(|(k, _)| k.clone()).collect();
                O::union(&keys)
            }
            Node::Leaf { entries } => {
                let keys: Vec<O::Key> = entries.iter().map(|(k, _)| k.clone()).collect();
                O::union(&keys)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn split_leaf(&mut self, node_idx: usize) -> (O::Key, usize, O::Key, usize) {
        let Node::Leaf { entries } = &mut self.nodes[node_idx] else {
            unreachable!();
        };
        let moved = std::mem::take(entries);
        let keys: Vec<O::Key> = moved.iter().map(|(k, _)| k.clone()).collect();
        let (left_ids, right_ids) = O::picksplit(&keys);
        debug_assert!(!left_ids.is_empty() && !right_ids.is_empty());

        let mut left = Vec::with_capacity(left_ids.len());
        let mut right = Vec::with_capacity(right_ids.len());
        let mut moved: Vec<Option<(O::Key, V)>> = moved.into_iter().map(Some).collect();
        for i in left_ids {
            left.push(moved[i].take().expect("picksplit indices must be unique"));
        }
        for i in right_ids {
            right.push(moved[i].take().expect("picksplit indices must be unique"));
        }

        let left_key = O::union(&left.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
        let right_key = O::union(&right.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
        self.nodes[node_idx] = Node::Leaf { entries: left };
        let right_idx = self.alloc(Node::Leaf { entries: right });
        (left_key, node_idx, right_key, right_idx)
    }

    #[allow(clippy::type_complexity)]
    fn split_internal(&mut self, node_idx: usize) -> (O::Key, usize, O::Key, usize) {
        let Node::Internal { entries } = &mut self.nodes[node_idx] else {
            unreachable!();
        };
        let moved = std::mem::take(entries);
        let keys: Vec<O::Key> = moved.iter().map(|(k, _)| k.clone()).collect();
        let (left_ids, right_ids) = O::picksplit(&keys);
        debug_assert!(!left_ids.is_empty() && !right_ids.is_empty());

        let mut left = Vec::with_capacity(left_ids.len());
        let mut right = Vec::with_capacity(right_ids.len());
        for i in left_ids {
            left.push(moved[i].clone());
        }
        for i in right_ids {
            right.push(moved[i].clone());
        }

        let left_key = O::union(&left.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
        let right_key = O::union(&right.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
        self.nodes[node_idx] = Node::Internal { entries: left };
        let right_idx = self.alloc(Node::Internal { entries: right });
        (left_key, node_idx, right_key, right_idx)
    }

    /// Visits every stored `(key, value)` whose key is consistent with
    /// `query`, in unspecified order.
    pub fn search<'a>(&'a self, query: &O::Query, mut visit: impl FnMut(&'a O::Key, &'a V)) {
        let mut stack = vec![(self.root, self.height)];
        while let Some((node_idx, level)) = stack.pop() {
            match &self.nodes[node_idx] {
                Node::Internal { entries } => {
                    for (k, child) in entries {
                        if O::consistent(k, query, false) {
                            stack.push((*child, level - 1));
                        }
                    }
                }
                Node::Leaf { entries } => {
                    for (k, v) in entries {
                        if O::consistent(k, query, true) {
                            visit(k, v);
                        }
                    }
                }
            }
        }
    }

    /// Collects matching values into a vector (convenience over
    /// [`Gist::search`]).
    pub fn query(&self, query: &O::Query) -> Vec<&V> {
        let mut out = Vec::new();
        self.search(query, |_, v| out.push(v));
        out
    }

    /// Ordered (nearest-first) scan: returns up to `k` values in increasing
    /// [`OpClass::distance`] order from the query. This is the standard GiST
    /// priority-queue traversal used for kNN over the pg3D-Rtree.
    pub fn nearest(&self, query: &O::Query, k: usize) -> Vec<(&V, f64)> {
        #[derive(PartialEq)]
        struct HeapItem {
            dist: f64,
            node: usize,
            level: usize,
            leaf_entry: Option<usize>,
        }
        impl Eq for HeapItem {}
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapItem {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse: BinaryHeap is a max-heap, we need smallest distance first.
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut out = Vec::new();
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: 0.0,
            node: self.root,
            level: self.height,
            leaf_entry: None,
        });
        while let Some(item) = heap.pop() {
            if let Some(entry_idx) = item.leaf_entry {
                let Node::Leaf { entries } = &self.nodes[item.node] else {
                    unreachable!();
                };
                out.push((&entries[entry_idx].1, item.dist));
                if out.len() >= k {
                    break;
                }
                continue;
            }
            match &self.nodes[item.node] {
                Node::Internal { entries } => {
                    for (key, child) in entries {
                        heap.push(HeapItem {
                            dist: O::distance(key, query),
                            node: *child,
                            level: item.level - 1,
                            leaf_entry: None,
                        });
                    }
                }
                Node::Leaf { entries } => {
                    for (i, (key, _)) in entries.iter().enumerate() {
                        heap.push(HeapItem {
                            dist: O::distance(key, query),
                            node: item.node,
                            level: item.level,
                            leaf_entry: Some(i),
                        });
                    }
                }
            }
        }
        out
    }

    /// Removes all values for which `pred` returns true among entries whose
    /// key is consistent with `query`. Returns the number removed.
    ///
    /// Underfull nodes are tolerated (keys shrink lazily on the next insert
    /// that touches them); this matches the lazy-deletion behaviour of the
    /// PostgreSQL GiST access method, which never merges pages eagerly.
    pub fn remove_where(&mut self, query: &O::Query, mut pred: impl FnMut(&V) -> bool) -> usize {
        let mut removed = 0usize;
        let mut stack = vec![self.root];
        let mut leaves = Vec::new();
        while let Some(node_idx) = stack.pop() {
            match &self.nodes[node_idx] {
                Node::Internal { entries } => {
                    for (k, child) in entries {
                        if O::consistent(k, query, false) {
                            stack.push(*child);
                        }
                    }
                }
                Node::Leaf { .. } => leaves.push(node_idx),
            }
        }
        for leaf in leaves {
            let Node::Leaf { entries } = &mut self.nodes[leaf] else {
                unreachable!();
            };
            let before = entries.len();
            entries.retain(|(k, v)| !(O::consistent(k, query, true) && pred(v)));
            removed += before - entries.len();
        }
        self.len -= removed;
        removed
    }

    /// Iterates over every stored value (full scan).
    pub fn iter(&self) -> impl Iterator<Item = (&O::Key, &V)> {
        self.nodes.iter().enumerate().flat_map(move |(i, n)| {
            let reachable = self.is_reachable(i);
            let entries: &[(O::Key, V)] = match n {
                Node::Leaf { entries } if reachable => entries,
                _ => &[],
            };
            entries.iter().map(|(k, v)| (k, v))
        })
    }

    fn is_reachable(&self, target: usize) -> bool {
        // Free-listed nodes are never reachable from the root.
        if self.free.contains(&target) {
            return false;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if let Node::Internal { entries } = &self.nodes[n] {
                for (_, c) in entries {
                    stack.push(*c);
                }
            }
        }
        false
    }

    /// Structural statistics (node counts, height).
    pub fn stats(&self) -> GistStats {
        let mut leaf_nodes = 0usize;
        let mut internal_nodes = 0usize;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n] {
                Node::Internal { entries } => {
                    internal_nodes += 1;
                    for (_, c) in entries {
                        stack.push(*c);
                    }
                }
                Node::Leaf { .. } => leaf_nodes += 1,
            }
        }
        GistStats {
            len: self.len,
            height: self.height,
            leaf_nodes,
            internal_nodes,
        }
    }

    /// Verifies the GiST structural invariants, panicking with a description
    /// of the first violation. Intended for tests.
    ///
    /// Checked invariants:
    /// * every internal entry's key is consistent with (covers) the union of
    ///   its child's keys — verified through the penalty being zero for the
    ///   child union against the parent key,
    /// * all leaves are at the same depth,
    /// * node occupancy never exceeds the maximum.
    pub fn check_invariants(&self)
    where
        O::Key: PartialEq,
    {
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, 1, &mut leaf_depths);
        if let Some(&first) = leaf_depths.first() {
            assert!(
                leaf_depths.iter().all(|&d| d == first),
                "all leaves must be at the same depth: {leaf_depths:?}"
            );
            assert_eq!(first, self.height, "recorded height must match leaf depth");
        }
    }

    fn check_node(&self, node_idx: usize, depth: usize, leaf_depths: &mut Vec<usize>)
    where
        O::Key: PartialEq,
    {
        match &self.nodes[node_idx] {
            Node::Internal { entries } => {
                assert!(
                    entries.len() <= MAX_ENTRIES,
                    "internal node exceeds max occupancy"
                );
                assert!(!entries.is_empty(), "internal node must not be empty");
                for (key, child) in entries {
                    let child_union = self.node_union(*child);
                    assert!(
                        O::penalty(key, &child_union) == 0.0,
                        "parent key must cover child union (penalty 0), got {}",
                        O::penalty(key, &child_union)
                    );
                    self.check_node(*child, depth + 1, leaf_depths);
                }
            }
            Node::Leaf { entries } => {
                assert!(entries.len() <= MAX_ENTRIES, "leaf exceeds max occupancy");
                leaf_depths.push(depth);
            }
        }
    }
}

impl<O: OpClass, V: Clone> Gist<O, V> {
    /// Bulk-loads a tree from `(key, value)` pairs using Sort-Tile-Recursive
    /// packing driven by a caller-provided sort key extractor (the pg3D-Rtree
    /// operator class supplies center-coordinate extractors).
    ///
    /// `sort_dims` maps a key to the coordinates used for tiling, one value
    /// per dimension in tiling order.
    pub fn bulk_load<const D: usize>(
        mut items: Vec<(O::Key, V)>,
        sort_dims: impl Fn(&O::Key) -> [f64; D],
    ) -> Self {
        if items.is_empty() {
            return Self::new();
        }
        // Recursive STR tiling: sort by dim 0, cut into slabs, recurse.
        fn tile<K: Clone, V: Clone, const D: usize>(
            items: &mut [(K, V)],
            dims: &impl Fn(&K) -> [f64; D],
            dim: usize,
            leaf_cap: usize,
            out: &mut Vec<Vec<(K, V)>>,
        ) {
            if items.len() <= leaf_cap {
                out.push(items.to_vec());
                return;
            }
            if dim >= D {
                for chunk in items.chunks(leaf_cap) {
                    out.push(chunk.to_vec());
                }
                return;
            }
            items.sort_by(|a, b| {
                dims(&a.0)[dim]
                    .partial_cmp(&dims(&b.0)[dim])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let leaves_needed = items.len().div_ceil(leaf_cap);
            let slabs = (leaves_needed as f64).powf(1.0 / (D - dim) as f64).ceil() as usize;
            let slab_size = items.len().div_ceil(slabs.max(1));
            let mut rest = items;
            while !rest.is_empty() {
                let take = slab_size.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                tile(head, dims, dim + 1, leaf_cap, out);
                rest = tail;
            }
        }

        // Target ~70% occupancy so later inserts do not immediately split.
        let leaf_cap = (MAX_ENTRIES * 7 / 10).max(2);
        let mut leaves_data = Vec::new();
        tile(&mut items, &sort_dims, 0, leaf_cap, &mut leaves_data);

        let mut tree = Self::new();
        tree.nodes.clear();
        tree.free.clear();
        tree.len = leaves_data.iter().map(|l| l.len()).sum();

        // Build leaf level.
        let mut level: Vec<(O::Key, usize)> = Vec::with_capacity(leaves_data.len());
        for leaf in leaves_data {
            let key = O::union(&leaf.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
            let idx = tree.alloc(Node::Leaf { entries: leaf });
            level.push((key, idx));
        }
        let mut height = 1usize;
        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(leaf_cap));
            for chunk in level.chunks(leaf_cap) {
                let key = O::union(&chunk.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
                let idx = tree.alloc(Node::Internal {
                    entries: chunk.to_vec(),
                });
                next.push((key, idx));
            }
            level = next;
            height += 1;
        }
        tree.root = level[0].1;
        tree.height = height;
        tree
    }
}
