//! Minimal HTTP/1.1 responder serving `GET /metrics` in Prometheus text
//! exposition format. Std-only: a blocking accept loop on a background
//! thread, one short-lived connection per scrape.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::Registry;

/// Handle to a running metrics endpoint; shuts the listener down on drop.
#[derive(Debug)]
pub struct MetricsHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so the blocking accept returns.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

/// Bind `addr` and serve `GET /metrics` from `registry` on a background
/// thread. Any other path returns 404; any other method returns 405.
pub fn serve_metrics(
    addr: impl ToSocketAddrs,
    registry: Arc<Registry>,
) -> std::io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let thread = std::thread::Builder::new()
        .name("hermes-obs-http".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    let _ = serve_one(stream, &registry);
                }
            }
        })?;
    Ok(MetricsHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; cap total header bytes.
    let mut drained = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        drained += n;
        if n == 0 || line == "\r\n" || line == "\n" || drained > 8192 {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = stream;
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path != "/metrics" {
        ("404 Not Found", "not found\n".to_string())
    } else {
        ("200 OK", registry.render_prometheus())
    };
    let content_type = if status.starts_with("200") {
        "text/plain; version=0.0.4; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn http_get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_and_rejects_other_paths() {
        let registry = Arc::new(Registry::new());
        registry.counter("t_served_total", "served").add(3);
        let handle = serve_metrics("127.0.0.1:0", registry).unwrap();
        let addr = handle.addr();

        let ok = http_get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("t_served_total 3"));

        let missing = http_get(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let bad_method = http_get(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(bad_method.starts_with("HTTP/1.1 405"), "{bad_method}");

        handle.shutdown();
    }
}
