//! # hermes-obs — unified observability layer
//!
//! One process-wide [`Registry`] holds every metric a hermes process exposes:
//! typed lock-free [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s,
//! optionally labelled. The registry renders itself in Prometheus text
//! exposition format (histograms in cumulative `le` form) and can be served
//! over a minimal HTTP/1.1 responder ([`http::serve_metrics`]).
//!
//! The crate also provides the distributed tracing primitives used by the
//! wire protocol and the coordinator fan-out: a [`TraceContext`] (trace id +
//! parent span id) propagated per statement, [`Span`]s recorded into a
//! ring-buffered in-process [`SpanStore`], and a [`QueryTrace`] helper that
//! allocates child spans for per-shard calls so a spanning query yields a
//! span tree covering fan-out, per-shard execution, and border-merge.
//!
//! Everything here is `std`-only and safe to call from hot paths: counters
//! and gauges are single relaxed atomic ops, histogram observation is two
//! atomic adds plus one bucket increment, and span recording takes one short
//! mutex on the ring buffer only after the timed section has finished.

pub mod http;
pub mod metrics;
pub mod trace;

pub use http::{serve_metrics, MetricsHandle};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry, Sample, SampleValue,
};
pub use trace::{
    next_id, slow_query_line, QueryTrace, Span, SpanStore, TraceContext, TraceSummary,
};
