//! Metrics registry: typed lock-free counters, gauges, and fixed-bucket
//! histograms with label support, plus Prometheus text-format rendering.
//!
//! A [`Registry`] is a get-or-create map from metric family name to labelled
//! instruments. Instruments are handed out as `Arc`s so hot paths hold a
//! direct pointer to the atomic and never touch the registry lock again.
//! Pull-based sources (the engine's aggregated stats, the coordinator's
//! shard table) register a *collector* closure that contributes samples at
//! scrape time instead of maintaining live instruments.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter backed by a relaxed `AtomicU64`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a standalone counter (not attached to any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge over a non-negative integer quantity (queue depth, active
/// connections, resident bytes). Decrements saturate at zero.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Create a standalone gauge (not attached to any registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Set to an absolute value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (microseconds, bytes).
///
/// Internally each bucket counts its **own interval** (non-cumulative); the
/// cumulative `le` form required by the Prometheus exposition format is
/// produced at render time via [`HistogramSnapshot::cumulative`].
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// One slot per bound plus a final overflow slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Create a histogram with the given inclusive upper bounds, which must
    /// be strictly increasing.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&bound| v <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The configured inclusive upper bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Total of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of the current state (individual loads are
    /// relaxed; exact cross-field consistency is not guaranteed under
    /// concurrent writes, which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], in non-cumulative interval form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, one per interval bucket.
    pub bounds: &'static [u64],
    /// Interval counts: `buckets[i]` counts observations in
    /// `(bounds[i-1], bounds[i]]`; the final slot counts overflow.
    pub buckets: Vec<u64>,
    /// Total of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Convert the interval buckets to cumulative Prometheus `le` form.
    ///
    /// Returns `(bound, cumulative_count)` pairs, one per configured bound,
    /// followed by the implicit `+Inf` bucket equal to `count`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            running += c;
            let bound = match self.bounds.get(i) {
                Some(&b) => b as f64,
                None => f64::INFINITY,
            };
            out.push((bound, running));
        }
        out
    }
}

/// The instrument kind of a metric family, used for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The value of one exported sample.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Full histogram snapshot (rendered as `_bucket`/`_sum`/`_count`).
    Histogram(HistogramSnapshot),
}

/// One exported sample: a metric family name, its labels, and a value.
///
/// Collectors push these at scrape time; registered instruments are turned
/// into samples automatically.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric family name (e.g. `hermes_server_queries_total`).
    pub name: &'static str,
    /// One-line help text for the `# HELP` line.
    pub help: &'static str,
    /// Label key/value pairs, may be empty.
    pub labels: Vec<(&'static str, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

impl Sample {
    /// Kind of this sample, derived from its value.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One registered instrument with the label set it was created under.
type LabeledInstrument = (Vec<(&'static str, String)>, Instrument);

struct Family {
    help: &'static str,
    /// Keyed by the rendered label string for deterministic iteration.
    instruments: BTreeMap<String, LabeledInstrument>,
}

type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// Process-wide metrics registry.
///
/// Get-or-create accessors return `Arc` handles so instruments outlive the
/// call and can be stored in hot-path structs. Creating the same
/// `(name, labels)` twice returns the same instrument; re-registering a name
/// with a different instrument kind panics (a programming error).
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
    collectors: Mutex<Vec<Collector>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or create a labelled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.instrument(name, help, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a labelled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.instrument(name, help, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create an unlabelled histogram with the given bounds.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &'static [u64],
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Get or create a labelled histogram with the given bounds.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &'static [u64],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    fn instrument(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let owned: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let key = render_labels(&owned);
        let mut families = lock(&self.families);
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            instruments: BTreeMap::new(),
        });
        let entry = family
            .instruments
            .entry(key)
            .or_insert_with(|| (owned, make()));
        match &entry.1 {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
        }
    }

    /// Register a pull-based collector invoked at every scrape. The closure
    /// appends [`Sample`]s for state it derives on demand (aggregated engine
    /// stats, per-shard counters).
    pub fn register_collector<F>(&self, f: F)
    where
        F: Fn(&mut Vec<Sample>) + Send + Sync + 'static,
    {
        lock(&self.collectors).push(Box::new(f));
    }

    /// Snapshot every registered instrument and collector into a flat,
    /// deterministically ordered (name, then label key) sample list.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        {
            let families = lock(&self.families);
            for (name, family) in families.iter() {
                for (labels, instrument) in family.instruments.values() {
                    let value = match instrument {
                        Instrument::Counter(c) => SampleValue::Counter(c.get()),
                        Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                        Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    };
                    out.push(Sample {
                        name,
                        help: family.help,
                        labels: labels.clone(),
                        value,
                    });
                }
            }
        }
        for collector in lock(&self.collectors).iter() {
            collector(&mut out);
        }
        out.sort_by(|a, b| {
            (a.name, render_labels(&a.labels)).cmp(&(b.name, render_labels(&b.labels)))
        });
        out
    }

    /// Render the full registry in Prometheus text exposition format 0.0.4.
    ///
    /// Families are sorted by name, instruments by label key; histograms are
    /// exported as cumulative `le` buckets (including `+Inf`) plus `_sum`
    /// and `_count` series. Output is deterministic for a fixed state.
    pub fn render_prometheus(&self) -> String {
        let samples = self.samples();
        let mut out = String::new();
        let mut last_name: Option<&'static str> = None;
        for s in &samples {
            if last_name != Some(s.name) {
                let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
                let _ = writeln!(out, "# TYPE {} {}", s.name, s.kind().as_str());
                last_name = Some(s.name);
            }
            match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, brace_labels(&s.labels), v);
                }
                SampleValue::Histogram(snap) => {
                    for (bound, cumulative) in snap.cumulative() {
                        let mut labels = s.labels.clone();
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format!("{}", bound as u64)
                        };
                        labels.push(("le", le));
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            brace_labels(&labels),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        brace_labels(&s.labels),
                        snap.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        brace_labels(&s.labels),
                        snap.count
                    );
                }
            }
        }
        out
    }
}

/// Lock a mutex, recovering the guard if a panicking thread poisoned it —
/// metrics must never take a process down.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn render_labels(labels: &[(&'static str, String)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    parts.sort();
    parts.join(",")
}

fn brace_labels(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", render_labels(labels))
    }
}

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[u64] = &[10, 100, 1000];

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying instrument.
        assert_eq!(reg.counter("t_total", "test counter").get(), 5);

        let g = reg.gauge("t_depth", "test gauge");
        g.set(3);
        g.dec();
        g.dec();
        g.dec();
        g.dec(); // saturates at zero
        assert_eq!(g.get(), 0);
        g.inc();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn labelled_instruments_are_distinct() {
        let reg = Registry::new();
        let a = reg.counter_with("t_shard_total", "per shard", &[("shard", "a")]);
        let b = reg.counter_with("t_shard_total", "per shard", &[("shard", "b")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn histogram_interval_buckets_convert_to_cumulative_le() {
        // Satellite 1: internal buckets stay non-cumulative; the exported
        // form is a cumulative prefix sum ending in +Inf == count.
        let h = Histogram::new(BOUNDS);
        h.observe(5); // le 10
        h.observe(10); // le 10 (inclusive bound)
        h.observe(50); // le 100
        h.observe(1000); // le 1000 (inclusive bound)
        h.observe(5000); // overflow
        let snap = h.snapshot();
        assert_eq!(
            snap.buckets,
            vec![2, 1, 1, 1],
            "internal form is per-interval"
        );
        assert_eq!(snap.sum, 5 + 10 + 50 + 1000 + 5000);
        assert_eq!(snap.count, 5);
        let cumulative = snap.cumulative();
        assert_eq!(cumulative.len(), 4);
        assert_eq!(cumulative[0], (10.0, 2));
        assert_eq!(cumulative[1], (100.0, 3));
        assert_eq!(cumulative[2], (1000.0, 4));
        assert!(cumulative[3].0.is_infinite());
        assert_eq!(cumulative[3].1, snap.count, "+Inf bucket equals count");
    }

    #[test]
    fn prometheus_render_is_deterministic_and_well_formed() {
        let reg = Registry::new();
        reg.counter("zz_total", "last family").inc();
        reg.gauge("aa_depth", "first family").set(7);
        let h = reg.histogram("mm_us", "histogram family", BOUNDS);
        h.observe(50);
        reg.register_collector(|out| {
            out.push(Sample {
                name: "cc_collected",
                help: "from a collector",
                labels: vec![("shard", "early".to_string())],
                value: SampleValue::Gauge(1),
            });
        });

        let text = reg.render_prometheus();
        assert_eq!(text, reg.render_prometheus(), "render is deterministic");

        // Families appear sorted by name.
        let aa = text.find("aa_depth").unwrap();
        let cc = text.find("cc_collected").unwrap();
        let mm = text.find("mm_us").unwrap();
        let zz = text.find("zz_total").unwrap();
        assert!(aa < cc && cc < mm && mm < zz);

        assert!(text.contains("# TYPE mm_us histogram"));
        assert!(text.contains("mm_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("mm_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mm_us_sum 50"));
        assert!(text.contains("mm_us_count 1"));
        assert!(text.contains("cc_collected{shard=\"early\"} 1"));

        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
            let name_part = series.split('{').next().unwrap();
            assert!(
                name_part
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line}"
            );
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let labels = vec![("q", "a\"b\\c\nd".to_string())];
        assert_eq!(render_labels(&labels), "q=\"a\\\"b\\\\c\\nd\"");
    }
}
