//! Distributed per-query tracing: trace contexts propagated over the wire,
//! spans recorded into a ring-buffered in-process store, and a structured
//! slow-query log line.
//!
//! The model is deliberately small. Every traced statement gets a 63-bit
//! `trace_id`; every timed section inside it gets a `span_id` with a
//! `parent_span_id` (0 marks the root). The coordinator allocates one child
//! span per contacted shard and sends the shard a [`TraceContext`] naming
//! that child as the parent, so the shard's locally recorded span slots into
//! the coordinator's tree under the same trace id. Each process keeps its own
//! [`SpanStore`]; `SHOW TRACE <id>` against any node returns the spans that
//! node recorded for the trace.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Trace identity propagated over the wire with a request: which trace the
/// work belongs to and which span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 63-bit id of the distributed trace.
    pub trace_id: u64,
    /// Span id of the parent on the sending side (never 0 on the wire).
    pub parent_span_id: u64,
}

/// Allocate a process-unique, non-zero 63-bit id.
///
/// Ids mix a per-process random-ish seed (boot time in nanoseconds xor'd
/// with ASLR address entropy) with an atomic sequence through a splitmix64
/// finalizer, so concurrent processes on one host produce disjoint ids
/// without coordination.
pub fn next_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ ((&SEQ as *const AtomicU64 as u64) << 16)
    });
    let n = SEQ.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    let mut x = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let id = x & (i64::MAX as u64);
    if id == 0 {
        1
    } else {
        id
    }
}

/// One recorded timed section of a trace.
#[derive(Debug, Clone)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id; 0 marks a root span.
    pub parent_span_id: u64,
    /// Human-readable name (`query`, `shard:early`, `merge`, `qut_partial`).
    pub name: String,
    /// Start offset in microseconds from the local trace origin (0 when the
    /// origin is remote — wall clocks are not assumed synchronized).
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Attribute key/value pairs (statement text, per-phase timings, status).
    pub attrs: Vec<(&'static str, String)>,
}

/// Summary of one trace held in a [`SpanStore`].
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The trace id.
    pub trace_id: u64,
    /// Name of the root span, or of the first recorded span if no root was
    /// captured locally.
    pub root: String,
    /// Number of spans recorded locally for this trace.
    pub spans: usize,
    /// Duration of the root span, or the longest local span as a fallback.
    pub duration_us: u64,
}

/// Fixed-capacity ring buffer of recorded spans, oldest evicted first.
#[derive(Debug)]
pub struct SpanStore {
    spans: Mutex<VecDeque<Span>>,
    capacity: usize,
}

/// Default ring capacity: enough for a few thousand statements of history
/// without unbounded growth.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

impl Default for SpanStore {
    fn default() -> Self {
        SpanStore::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanStore {
    /// Create a store holding at most `capacity` spans.
    pub fn new(capacity: usize) -> SpanStore {
        SpanStore {
            spans: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Record one finished span, evicting the oldest if at capacity.
    pub fn record(&self, span: Span) {
        let mut spans = lock(&self.spans);
        if spans.len() == self.capacity {
            spans.pop_front();
        }
        spans.push_back(span);
    }

    /// All locally recorded spans of one trace, ordered by start offset then
    /// span id (deterministic for a fixed store state).
    pub fn trace(&self, trace_id: u64) -> Vec<Span> {
        let spans = lock(&self.spans);
        let mut out: Vec<Span> = spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect();
        out.sort_by_key(|s| (s.start_us, s.span_id));
        out
    }

    /// Summaries of the traces currently held, newest first (by most recent
    /// recorded span).
    pub fn recent(&self) -> Vec<TraceSummary> {
        let spans = lock(&self.spans);
        let mut order: Vec<u64> = Vec::new();
        let mut by_trace: HashMap<u64, TraceSummary> = HashMap::new();
        // Walk newest to oldest so `order` lists traces by recency.
        for s in spans.iter().rev() {
            let entry = by_trace.entry(s.trace_id).or_insert_with(|| {
                order.push(s.trace_id);
                TraceSummary {
                    trace_id: s.trace_id,
                    root: String::new(),
                    spans: 0,
                    duration_us: 0,
                }
            });
            entry.spans += 1;
            if s.parent_span_id == 0 {
                entry.root = s.name.clone();
                entry.duration_us = s.duration_us;
            } else {
                if entry.root.is_empty() {
                    entry.root = s.name.clone();
                }
                if entry.duration_us == 0 {
                    entry.duration_us = entry.duration_us.max(s.duration_us);
                }
            }
        }
        order
            .into_iter()
            .filter_map(|id| by_trace.remove(&id))
            .collect()
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        lock(&self.spans).len()
    }

    /// True when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-statement tracing handle used by a serving edge (server or
/// coordinator): owns the trace id and root span id, and hands out child
/// spans for fan-out work. `Sync`, so it can be shared with the exec-pool
/// closures that contact shards in parallel.
#[derive(Debug)]
pub struct QueryTrace {
    store: Arc<SpanStore>,
    trace_id: u64,
    root_span_id: u64,
    origin: Instant,
}

impl QueryTrace {
    /// Start a new root trace recording into `store`.
    pub fn root(store: Arc<SpanStore>) -> QueryTrace {
        QueryTrace {
            store,
            trace_id: next_id(),
            root_span_id: next_id(),
            origin: Instant::now(),
        }
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The pre-allocated root span id.
    pub fn root_span_id(&self) -> u64 {
        self.root_span_id
    }

    /// Allocate a child span id and the [`TraceContext`] to propagate to the
    /// remote side so its spans parent under that child.
    pub fn child_ctx(&self) -> (u64, TraceContext) {
        let span_id = next_id();
        (
            span_id,
            TraceContext {
                trace_id: self.trace_id,
                parent_span_id: span_id,
            },
        )
    }

    /// Record a finished child span of the root. `started` must come from
    /// the same process (offsets are computed against the trace origin).
    pub fn record_child(
        &self,
        span_id: u64,
        name: String,
        started: Instant,
        duration: Duration,
        attrs: Vec<(&'static str, String)>,
    ) {
        self.store.record(Span {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: self.root_span_id,
            name,
            start_us: started.saturating_duration_since(self.origin).as_micros() as u64,
            duration_us: duration.as_micros() as u64,
            attrs,
        });
    }

    /// Record the root span itself once the statement has finished.
    pub fn finish_root(
        &self,
        name: String,
        duration: Duration,
        attrs: Vec<(&'static str, String)>,
    ) {
        self.store.record(Span {
            trace_id: self.trace_id,
            span_id: self.root_span_id,
            parent_span_id: 0,
            name,
            start_us: 0,
            duration_us: duration.as_micros() as u64,
            attrs,
        });
    }
}

/// Render the structured slow-query log line: one JSON object per offending
/// statement, written to stderr by the serving edge.
pub fn slow_query_line(elapsed_ms: f64, trace_id: u64, statement: &str) -> String {
    let escaped: String = statement
        .chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\r' => "\\r".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!(
        "{{\"event\":\"slow_query\",\"ms\":{:.3},\"trace_id\":{},\"statement\":\"{}\"}}",
        elapsed_ms, trace_id, escaped
    )
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_unique_and_63_bit() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert!(id != 0);
            assert!(id <= i64::MAX as u64);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let store = SpanStore::new(3);
        for i in 0..5u64 {
            store.record(Span {
                trace_id: 1,
                span_id: i + 10,
                parent_span_id: 0,
                name: format!("s{i}"),
                start_us: i,
                duration_us: 1,
                attrs: vec![],
            });
        }
        assert_eq!(store.len(), 3);
        let spans = store.trace(1);
        assert_eq!(
            spans.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            vec![12, 13, 14]
        );
    }

    #[test]
    fn query_trace_builds_a_tree() {
        let store = Arc::new(SpanStore::default());
        let qt = QueryTrace::root(store.clone());
        let (child_id, ctx) = qt.child_ctx();
        assert_eq!(ctx.trace_id, qt.trace_id());
        assert_eq!(ctx.parent_span_id, child_id);
        let t = Instant::now();
        qt.record_child(
            child_id,
            "shard:early".to_string(),
            t,
            Duration::from_micros(250),
            vec![("voting_ms", "1.5".to_string())],
        );
        qt.finish_root(
            "query".to_string(),
            Duration::from_micros(400),
            vec![("status", "ok".to_string())],
        );

        let spans = store.trace(qt.trace_id());
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.parent_span_id == 0).unwrap();
        assert_eq!(root.name, "query");
        assert_eq!(root.span_id, qt.root_span_id());
        let child = spans.iter().find(|s| s.span_id == child_id).unwrap();
        assert_eq!(child.parent_span_id, root.span_id);
        assert_eq!(child.attrs[0].0, "voting_ms");

        let recent = store.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].root, "query");
        assert_eq!(recent[0].spans, 2);
        assert_eq!(recent[0].duration_us, 400);
    }

    #[test]
    fn recent_lists_newest_trace_first() {
        let store = SpanStore::default();
        for trace_id in [7u64, 8, 9] {
            store.record(Span {
                trace_id,
                span_id: next_id(),
                parent_span_id: 0,
                name: format!("q{trace_id}"),
                start_us: 0,
                duration_us: trace_id,
                attrs: vec![],
            });
        }
        let recent = store.recent();
        assert_eq!(
            recent.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![9, 8, 7]
        );
    }

    #[test]
    fn slow_query_line_is_valid_json_shape() {
        let line = slow_query_line(12.3456, 42, "SELECT \"x\"\nFROM t;");
        assert!(line.starts_with("{\"event\":\"slow_query\",\"ms\":12.346,"));
        assert!(line.contains("\"trace_id\":42"));
        assert!(line.contains("SELECT \\\"x\\\"\\nFROM t;"));
        assert!(line.ends_with("\"}"));
        // Balanced quoting: an even number of unescaped double quotes.
        let unescaped = line.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }
}
