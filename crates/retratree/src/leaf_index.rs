//! The sub-chunk leaf index: a packed base plus a dynamic delta.
//!
//! Every ReTraTree sub-chunk keeps a pg3D-Rtree over the sub-trajectories it
//! stores, scanned by QuT border re-clustering and by temporal range
//! queries. Its access pattern is read-mostly with bulk rewrites: the whole
//! index is rebuilt on every reorganisation, and only the trickle of
//! insertions between reorganisations mutates it.
//!
//! [`LeafIndex`] exploits that shape with the classic *packed base + delta*
//! layout: reorganisation STR-packs everything into a flat
//! [`PackedRTree`] (contiguous lanes, allocation-free scans — the same
//! structure the S2T voting hot path queries), while insertions land in a
//! small incremental [`RTree3D`] delta that the next rebuild folds back into
//! the base. Queries visit the base first, then the delta, in deterministic
//! order.

use hermes_gist::{PackedRTree, RTree3D};
use hermes_storage::RecordLocator;
use hermes_trajectory::{Mbb, TimeInterval};

/// An ordered list of `(bounding box, record locator)` index entries — the
/// exchange format of [`LeafIndex::export_entries`] /
/// [`LeafIndex::import_entries`].
pub type IndexEntries = Vec<(Mbb, RecordLocator)>;

/// Hybrid packed/dynamic index over a sub-chunk's stored records.
#[derive(Clone)]
pub struct LeafIndex {
    /// STR-packed base, rebuilt wholesale on reorganisation.
    packed: PackedRTree<RecordLocator>,
    /// Incremental overlay for records inserted since the last rebuild.
    delta: RTree3D<RecordLocator>,
    /// The delta entries in insertion order — the trickle between rebuilds is
    /// small, and remembering it makes the index state exportable: a snapshot
    /// replays exactly these insertions on load, reproducing the delta tree
    /// bit for bit (see [`LeafIndex::export_entries`]).
    delta_log: Vec<(Mbb, RecordLocator)>,
}

impl Default for LeafIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl LeafIndex {
    /// An empty index.
    pub fn new() -> Self {
        LeafIndex {
            packed: PackedRTree::bulk_load(Vec::new()),
            delta: RTree3D::new(),
            delta_log: Vec::new(),
        }
    }

    /// Number of indexed records (base + delta).
    pub fn len(&self) -> usize {
        self.packed.len() + self.delta.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records in the packed base (observability/tests).
    pub fn packed_len(&self) -> usize {
        self.packed.len()
    }

    /// Records in the dynamic delta (observability/tests).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Inserts one record into the delta overlay.
    pub fn insert(&mut self, mbb: Mbb, loc: RecordLocator) {
        self.delta.insert(mbb, loc);
        self.delta_log.push((mbb, loc));
    }

    /// Replaces the whole index with an STR-packed base over `entries`
    /// (clearing the delta) — called by sub-chunk reorganisation, which
    /// rewrites every locator anyway.
    ///
    /// The entries are first put in a canonical order (ascending locator —
    /// a unique key), which makes the packed layout, and therefore every
    /// query's visit order, a pure function of the entry *set*. That is what
    /// lets a snapshot restore the base from any enumeration of its entries
    /// and still reproduce bit-identical downstream results.
    pub fn rebuild(&mut self, mut entries: Vec<(Mbb, RecordLocator)>) {
        entries.sort_by_key(|(_, loc)| (loc.partition, loc.page, loc.slot));
        self.packed = PackedRTree::bulk_load(entries);
        self.delta = RTree3D::new();
        self.delta_log = Vec::new();
    }

    /// The index state as `(base entries, delta entries)`: the packed base in
    /// lane order (any order round-trips — [`LeafIndex::rebuild`]
    /// canonicalizes) and the delta in insertion order. Feeding both to
    /// [`LeafIndex::import_entries`] reproduces an index whose every query
    /// answers in the same order as this one.
    pub fn export_entries(&self) -> (IndexEntries, IndexEntries) {
        let base = self.packed.iter().map(|(mbb, loc)| (mbb, *loc)).collect();
        (base, self.delta_log.clone())
    }

    /// Rebuilds the index from an [`LeafIndex::export_entries`] pair.
    pub fn import_entries(base: IndexEntries, delta: IndexEntries) -> Self {
        let mut index = LeafIndex::new();
        index.rebuild(base);
        for (mbb, loc) in delta {
            index.insert(mbb, loc);
        }
        index
    }

    /// Every record whose lifespan intersects the temporal window, packed
    /// base first (lane order), then delta.
    ///
    /// The order is deterministic for a given index state but differs from
    /// the retired single-`RTree3D` layout (records inserted since the last
    /// rebuild now come last instead of interleaved at tree positions).
    /// Downstream consumers — QuT border re-clustering, the rebuild
    /// baseline — are order-deterministic over whatever order this returns,
    /// so answers stay reproducible; they are simply keyed to this layout's
    /// order, as they previously were to the old tree's.
    pub fn query_temporal(&self, w: &TimeInterval) -> Vec<&RecordLocator> {
        let mut out = Vec::new();
        self.packed
            .for_each_temporal_overlap(w, |loc| out.push(loc));
        out.extend(self.delta.query_temporal(w));
        out
    }

    /// Every record whose box intersects `mbb`, packed base first.
    pub fn query_intersecting(&self, mbb: &Mbb) -> Vec<&RecordLocator> {
        let mut out = Vec::new();
        self.packed.for_each_intersecting(mbb, |loc| out.push(loc));
        out.extend(self.delta.query_intersecting(mbb));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Timestamp;

    fn boxy(x0: f64, x1: f64, t0: i64, t1: i64) -> Mbb {
        Mbb::new(x0, x1, 0.0, 1.0, Timestamp(t0), Timestamp(t1))
    }

    fn loc(i: u64) -> RecordLocator {
        RecordLocator {
            partition: i / 100,
            page: i % 100,
            slot: i as u16,
        }
    }

    #[test]
    fn rebuild_packs_and_clears_the_delta() {
        let mut idx = LeafIndex::new();
        assert!(idx.is_empty());
        for i in 0..20 {
            idx.insert(
                boxy(i as f64, i as f64 + 1.0, i * 1_000, i * 1_000 + 500),
                loc(i as u64),
            );
        }
        assert_eq!(idx.delta_len(), 20);
        assert_eq!(idx.packed_len(), 0);

        let entries: Vec<(Mbb, RecordLocator)> = (0..20)
            .map(|i| {
                (
                    boxy(i as f64, i as f64 + 1.0, i * 1_000, i * 1_000 + 500),
                    loc(i as u64),
                )
            })
            .collect();
        idx.rebuild(entries);
        assert_eq!(idx.packed_len(), 20);
        assert_eq!(idx.delta_len(), 0);
        assert_eq!(idx.len(), 20);
    }

    #[test]
    fn queries_union_base_and_delta() {
        let entries: Vec<(Mbb, RecordLocator)> = (0..30)
            .map(|i| {
                (
                    boxy(i as f64, i as f64 + 1.0, i * 1_000, i * 1_000 + 500),
                    loc(i as u64),
                )
            })
            .collect();
        let mut idx = LeafIndex::new();
        idx.rebuild(entries);
        // Post-rebuild insertions land in the delta…
        idx.insert(boxy(5.5, 6.5, 5_200, 5_700), loc(999));
        assert_eq!(idx.delta_len(), 1);

        // …and both temporal and box queries see base and delta together.
        let w = TimeInterval::new(Timestamp(5_000), Timestamp(6_000));
        let mut hits: Vec<u64> = idx
            .query_temporal(&w)
            .iter()
            .map(|l| l.slot as u64)
            .collect();
        hits.sort_unstable();
        assert!(hits.contains(&5) && hits.contains(&(999u16 as u64)));

        let q = boxy(5.4, 5.6, 5_100, 5_800);
        let box_hits = idx.query_intersecting(&q);
        assert!(box_hits.iter().any(|l| l.slot == 999));
    }

    #[test]
    fn rebuild_is_permutation_invariant_and_export_round_trips() {
        let entries: Vec<(Mbb, RecordLocator)> = (0..40)
            .map(|i| {
                (
                    boxy(i as f64, i as f64 + 1.0, i * 500, i * 500 + 400),
                    loc(i as u64),
                )
            })
            .collect();
        let mut forward = LeafIndex::new();
        forward.rebuild(entries.clone());
        let mut reversed = LeafIndex::new();
        reversed.rebuild(entries.iter().rev().cloned().collect());

        let w = TimeInterval::new(Timestamp(3_000), Timestamp(12_000));
        let order = |idx: &LeafIndex| -> Vec<RecordLocator> {
            idx.query_temporal(&w).into_iter().copied().collect()
        };
        // The canonical sort makes the layout a function of the entry set.
        assert_eq!(order(&forward), order(&reversed));

        // Delta insertions and the base both survive an export/import cycle
        // with identical visit order.
        forward.insert(boxy(100.0, 101.0, 4_000, 4_500), loc(900));
        forward.insert(boxy(200.0, 201.0, 5_000, 5_500), loc(901));
        let (base, delta) = forward.export_entries();
        assert_eq!(base.len(), 40);
        assert_eq!(delta.len(), 2);
        let imported = LeafIndex::import_entries(base, delta);
        assert_eq!(order(&forward), order(&imported));
        assert_eq!(imported.packed_len(), forward.packed_len());
        assert_eq!(imported.delta_len(), forward.delta_len());

        let q = boxy(0.0, 300.0, 0, 20_000);
        let box_order = |idx: &LeafIndex| -> Vec<RecordLocator> {
            idx.query_intersecting(&q).into_iter().copied().collect()
        };
        assert_eq!(box_order(&forward), box_order(&imported));
    }

    #[test]
    fn empty_windows_hit_nothing() {
        let idx = LeafIndex::new();
        assert!(idx
            .query_temporal(&TimeInterval::new(Timestamp(0), Timestamp(10)))
            .is_empty());
        let mut idx = LeafIndex::new();
        idx.rebuild(
            (0..5)
                .map(|i| (boxy(i as f64, i as f64 + 1.0, 0, 100), loc(i as u64)))
                .collect(),
        );
        assert!(idx
            .query_temporal(&TimeInterval::new(Timestamp(10_000), Timestamp(20_000)))
            .is_empty());
    }
}
