//! # hermes-retratree
//!
//! The **ReTraTree** (Representative Trajectory Tree) and **QuT-Clustering**
//! — the time-aware, progressive half of the Hermes@PostgreSQL demo
//! (ICDE 2018), following Pelekis et al. (DMKD 2017).
//!
//! The ReTraTree "consists of four levels: the first two levels operate on
//! the temporal dimension, the third level builds clusters upon the
//! spatio-temporal characteristics of the trajectories, and the fourth level
//! is the actual data storage along with the corresponding indexes
//! (3D-RTree) for effective retrieval".
//!
//! * **L1** — [`node::Chunk`]: disjoint, fixed-length temporal chunks,
//! * **L2** — [`node::SubChunk`]: finer temporal partitions inside a chunk,
//! * **L3** — [`node::ClusterEntry`]: one entry per representative
//!   sub-trajectory, pointing at the partition holding its members,
//! * **L4** — per-cluster partitions (`hermes-storage`) indexed by the
//!   pg3D-Rtree (`hermes-gist`), plus an outlier partition per sub-chunk.
//!
//! [`tree::ReTraTree::insert_trajectory`] implements the incremental
//! maintenance loop of the architecture figure: new data is routed to an
//! existing representative when possible, parked as an outlier otherwise, and
//! when an outlier partition outgrows its threshold, S2T-Clustering is re-run
//! on it and the new representatives are back-propagated into the in-memory
//! part of the structure.
//!
//! [`qut::qut_clustering`] answers `QUT(D, Wi, We, τ, δ, t, d, γ)`: clusters
//! and outliers for an arbitrary temporal window `W`, reusing the L3 entries
//! of every sub-chunk fully covered by `W`, re-clustering only the border
//! sub-chunks, and merging cluster entries across chunk boundaries.

//!
//! Durable deployments serialize the whole structure through [`persist`]
//! (parameters, cluster entries, partition pages, leaf-index entry lists) so
//! an engine restart restores the index without re-clustering — the on-disk
//! layout is specified in `docs/STORAGE.md`.

pub mod leaf_index;
pub mod node;
pub mod params;
pub mod persist;
pub mod qut;
pub mod tree;

pub use leaf_index::LeafIndex;
pub use node::{Chunk, ClusterEntry, SubChunk};
pub use params::{QutParams, QutParamsBuilder, ReTraTreeParams, ReTraTreeParamsBuilder};
pub use persist::{decode_params_from, decode_tree, encode_params_into, encode_tree};
pub use qut::{
    merge_qut_partials, qut_clustering, qut_clustering_with, qut_partial_with,
    range_query_then_cluster, range_query_then_cluster_with, OwnedSlice, QutPartial, QutStats,
};
pub use tree::{MaintenanceStats, ReTraTree};
