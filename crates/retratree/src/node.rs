//! The node types of the four ReTraTree levels.

use crate::leaf_index::LeafIndex;
use hermes_storage::{PartitionId, RecordLocator};
use hermes_trajectory::{SubTrajectory, TimeInterval};

/// Level-3 entry: one representative sub-trajectory and the partition holding
/// the members clustered around it.
#[derive(Debug, Clone)]
pub struct ClusterEntry {
    /// The representative sub-trajectory (kept in memory — this is the
    /// "in-memory part of ReTraTree" that new insertions are matched against).
    pub representative: SubTrajectory,
    /// Mean vote of the representative when it was promoted.
    pub representative_vote: f64,
    /// Partition holding the members of this cluster (level 4).
    pub partition: PartitionId,
    /// Locator of the representative's own archived copy in the partition
    /// (None for entries created before any data was archived).
    pub representative_loc: Option<RecordLocator>,
    /// Locators of the members inside the partition.
    pub members: Vec<RecordLocator>,
}

impl ClusterEntry {
    /// Number of sub-trajectories in the cluster, counting the representative.
    pub fn size(&self) -> usize {
        self.members.len() + 1
    }

    /// The representative's lifespan (the cluster's anchor interval).
    pub fn lifespan(&self) -> TimeInterval {
        self.representative.lifespan()
    }
}

/// Level-2 node: a fixed temporal sub-division of a chunk, owning its cluster
/// entries, its outlier partition and a pg3D-Rtree over everything stored in
/// it.
#[derive(Clone)]
pub struct SubChunk {
    /// The temporal interval this sub-chunk covers.
    pub interval: TimeInterval,
    /// Cluster entries (level 3).
    pub clusters: Vec<ClusterEntry>,
    /// The partition holding unclustered sub-trajectories.
    pub outlier_partition: PartitionId,
    /// Locators of the outliers inside the outlier partition.
    pub outliers: Vec<RecordLocator>,
    /// Leaf index over every sub-trajectory stored in this sub-chunk
    /// (members and outliers alike), mapping MBBs to record locators:
    /// an STR-packed base rebuilt on reorganisation plus a small dynamic
    /// delta for insertions in between (see [`LeafIndex`]).
    pub index: LeafIndex,
}

impl SubChunk {
    /// Creates an empty sub-chunk over `interval` with its outlier partition.
    pub fn new(interval: TimeInterval, outlier_partition: PartitionId) -> Self {
        SubChunk {
            interval,
            clusters: Vec::new(),
            outlier_partition,
            outliers: Vec::new(),
            index: LeafIndex::new(),
        }
    }

    /// Total number of sub-trajectories stored (clustered, counting each
    /// representative, + outliers).
    pub fn population(&self) -> usize {
        self.clusters.iter().map(|c| c.size()).sum::<usize>() + self.outliers.len()
    }

    /// Number of cluster entries.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }
}

/// Level-1 node: a fixed temporal chunk containing its sub-chunks.
#[derive(Clone)]
pub struct Chunk {
    /// The temporal interval this chunk covers.
    pub interval: TimeInterval,
    /// The sub-chunks, in temporal order, jointly tiling `interval`.
    pub subchunks: Vec<SubChunk>,
}

impl Chunk {
    /// Total population over all sub-chunks.
    pub fn population(&self) -> usize {
        self.subchunks.iter().map(|s| s.population()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, SubTrajectoryId, Timestamp};

    fn sub(id: u64) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            vec![
                Point::new(0.0, 0.0, Timestamp(0)),
                Point::new(10.0, 0.0, Timestamp(60_000)),
            ],
        )
    }

    fn locator(i: u64) -> RecordLocator {
        RecordLocator {
            partition: 0,
            page: 0,
            slot: i as u16,
        }
    }

    #[test]
    fn cluster_entry_counts_its_representative() {
        let mut e = ClusterEntry {
            representative: sub(1),
            representative_vote: 2.5,
            partition: 3,
            representative_loc: None,
            members: vec![],
        };
        assert_eq!(e.size(), 1);
        e.members.push(locator(0));
        e.members.push(locator(1));
        assert_eq!(e.size(), 3);
        assert_eq!(
            e.lifespan(),
            TimeInterval::new(Timestamp(0), Timestamp(60_000))
        );
    }

    #[test]
    fn subchunk_population_sums_members_and_outliers() {
        let mut sc = SubChunk::new(TimeInterval::new(Timestamp(0), Timestamp(3_600_000)), 0);
        assert_eq!(sc.population(), 0);
        sc.clusters.push(ClusterEntry {
            representative: sub(1),
            representative_vote: 1.0,
            partition: 1,
            representative_loc: None,
            members: vec![locator(0), locator(1)],
        });
        sc.outliers.push(locator(2));
        assert_eq!(sc.population(), 4);
        assert_eq!(sc.num_clusters(), 1);
    }

    #[test]
    fn chunk_population_aggregates_subchunks() {
        let mut chunk = Chunk {
            interval: TimeInterval::new(Timestamp(0), Timestamp(7_200_000)),
            subchunks: vec![
                SubChunk::new(TimeInterval::new(Timestamp(0), Timestamp(3_600_000)), 0),
                SubChunk::new(
                    TimeInterval::new(Timestamp(3_600_000), Timestamp(7_200_000)),
                    1,
                ),
            ],
        };
        chunk.subchunks[0].outliers.push(locator(0));
        chunk.subchunks[1].outliers.push(locator(1));
        assert_eq!(chunk.population(), 2);
    }
}
