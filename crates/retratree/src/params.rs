//! Parameters of the ReTraTree and of QuT-Clustering queries.

use hermes_s2t::S2TParams;
use hermes_trajectory::Duration;

/// Construction-time parameters of a [`crate::tree::ReTraTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReTraTreeParams {
    /// Length of a level-1 temporal chunk.
    pub chunk_duration: Duration,
    /// Number of sub-chunks each chunk is divided into (level 2). The paper
    /// uses a finer temporal partitioning inside each chunk; a fixed fan-out
    /// keeps sub-chunk boundaries deterministic, which QuT exploits to decide
    /// what can be reused without touching the data.
    pub subchunks_per_chunk: usize,
    /// Page threshold of an outlier partition above which the maintenance
    /// loop re-runs S2T-Clustering on that sub-chunk ("when the size of a
    /// partition exceeds a pre-defined threshold, S2T-Clustering takes
    /// action").
    pub reorg_page_threshold: usize,
    /// Buffer-pool capacity in frames for the backing partition store.
    pub buffer_frames: usize,
    /// S2T parameters used for the per-sub-chunk clustering runs.
    pub s2t: S2TParams,
}

impl Default for ReTraTreeParams {
    fn default() -> Self {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(6),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 8,
            buffer_frames: 256,
            s2t: S2TParams::default(),
        }
    }
}

/// Builder for [`ReTraTreeParams`], with validation folded into
/// [`ReTraTreeParamsBuilder::build`].
///
/// ```
/// use hermes_retratree::ReTraTreeParams;
/// use hermes_trajectory::Duration;
/// let params = ReTraTreeParams::builder()
///     .chunk_duration(Duration::from_hours(2))
///     .subchunks_per_chunk(4)
///     .build()
///     .unwrap();
/// assert_eq!(params.subchunk_duration(), Duration::from_mins(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReTraTreeParamsBuilder {
    params: ReTraTreeParams,
}

impl ReTraTreeParamsBuilder {
    /// Sets the level-1 chunk duration.
    pub fn chunk_duration(mut self, d: Duration) -> Self {
        self.params.chunk_duration = d;
        self
    }

    /// Sets the level-2 fan-out (sub-chunks per chunk).
    pub fn subchunks_per_chunk(mut self, n: usize) -> Self {
        self.params.subchunks_per_chunk = n;
        self
    }

    /// Sets the outlier-partition page threshold triggering re-clustering.
    pub fn reorg_page_threshold(mut self, pages: usize) -> Self {
        self.params.reorg_page_threshold = pages;
        self
    }

    /// Sets the buffer-pool capacity in frames.
    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.params.buffer_frames = frames;
        self
    }

    /// Sets the S2T parameters for the per-sub-chunk clustering runs.
    pub fn s2t(mut self, s2t: S2TParams) -> Self {
        self.params.s2t = s2t;
        self
    }

    /// Validates and returns the parameters, or the first violation.
    pub fn build(self) -> Result<ReTraTreeParams, String> {
        self.params.validate()?;
        Ok(self.params)
    }
}

impl ReTraTreeParams {
    /// Starts a builder over the default parameters.
    pub fn builder() -> ReTraTreeParamsBuilder {
        ReTraTreeParamsBuilder::default()
    }

    /// Validates the parameters, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_duration.millis() <= 0 {
            return Err("chunk_duration must be positive".into());
        }
        if self.subchunks_per_chunk == 0 {
            return Err("subchunks_per_chunk must be at least 1".into());
        }
        if self.chunk_duration.millis() % self.subchunks_per_chunk as i64 != 0 {
            return Err(format!(
                "chunk_duration ({} ms) must be divisible by subchunks_per_chunk ({})",
                self.chunk_duration.millis(),
                self.subchunks_per_chunk
            ));
        }
        if self.reorg_page_threshold == 0 {
            return Err("reorg_page_threshold must be at least 1".into());
        }
        self.s2t.validate()
    }

    /// Length of one level-2 sub-chunk.
    pub fn subchunk_duration(&self) -> Duration {
        Duration::from_millis(self.chunk_duration.millis() / self.subchunks_per_chunk as i64)
    }
}

/// Parameters of one QuT-Clustering query — the `τ, δ, t, d, γ` of
/// `SELECT QUT(D, Wi, We, τ, δ, t, d, γ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QutParams {
    /// S2T parameters (`τ`, `δ`, `t` plus the voting/clustering knobs) used
    /// when a border sub-chunk has to be re-clustered on the fly.
    pub s2t: S2TParams,
    /// Merge distance `d`: cluster entries from adjacent sub-chunks whose
    /// representatives are within this synchronized-shape distance are
    /// reported as one cluster.
    pub merge_distance: f64,
    /// Merge gap `γ`: the maximum temporal gap between two cluster entries
    /// that may still be merged.
    pub merge_gap: Duration,
}

impl Default for QutParams {
    fn default() -> Self {
        QutParams {
            s2t: S2TParams::default(),
            merge_distance: 200.0,
            merge_gap: Duration::from_mins(30),
        }
    }
}

/// Builder for [`QutParams`], with validation folded into
/// [`QutParamsBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct QutParamsBuilder {
    params: QutParams,
}

impl QutParamsBuilder {
    /// Sets the S2T parameters used for on-the-fly border re-clustering.
    pub fn s2t(mut self, s2t: S2TParams) -> Self {
        self.params.s2t = s2t;
        self
    }

    /// Sets the cross-sub-chunk merge distance `d`.
    pub fn merge_distance(mut self, d: f64) -> Self {
        self.params.merge_distance = d;
        self
    }

    /// Sets the maximum temporal merge gap `γ`.
    pub fn merge_gap(mut self, gap: Duration) -> Self {
        self.params.merge_gap = gap;
        self
    }

    /// Validates and returns the parameters, or the first violation.
    pub fn build(self) -> Result<QutParams, String> {
        self.params.validate()?;
        Ok(self.params)
    }
}

impl QutParams {
    /// Starts a builder over the default parameters.
    pub fn builder() -> QutParamsBuilder {
        QutParamsBuilder::default()
    }

    /// Validates the parameters.
    // The negated comparison deliberately rejects NaN too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.merge_distance > 0.0) {
            return Err(format!(
                "merge_distance must be positive, got {}",
                self.merge_distance
            ));
        }
        if self.merge_gap.millis() < 0 {
            return Err("merge_gap must be non-negative".into());
        }
        self.s2t.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(ReTraTreeParams::default().validate().is_ok());
        assert!(QutParams::default().validate().is_ok());
    }

    #[test]
    fn subchunk_duration_divides_chunk() {
        let p = ReTraTreeParams::default();
        assert_eq!(
            p.subchunk_duration().millis() * p.subchunks_per_chunk as i64,
            p.chunk_duration.millis()
        );
    }

    #[test]
    fn builders_set_knobs_and_validate() {
        let p = ReTraTreeParams::builder()
            .chunk_duration(Duration::from_hours(2))
            .subchunks_per_chunk(8)
            .reorg_page_threshold(3)
            .buffer_frames(64)
            .s2t(S2TParams::builder().sigma(9.0).build().unwrap())
            .build()
            .unwrap();
        assert_eq!(p.subchunks_per_chunk, 8);
        assert_eq!(p.s2t.sigma, 9.0);
        assert!(ReTraTreeParams::builder()
            .subchunks_per_chunk(0)
            .build()
            .is_err());

        let q = QutParams::builder()
            .merge_distance(2_500.0)
            .merge_gap(Duration::from_mins(45))
            .build()
            .unwrap();
        assert_eq!(q.merge_gap, Duration::from_mins(45));
        assert!(QutParams::builder().merge_distance(-1.0).build().is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let p = ReTraTreeParams {
            chunk_duration: Duration::from_millis(0),
            ..ReTraTreeParams::default()
        };
        assert!(p.validate().is_err());

        let p = ReTraTreeParams {
            subchunks_per_chunk: 0,
            ..ReTraTreeParams::default()
        };
        assert!(p.validate().is_err());

        let p = ReTraTreeParams {
            chunk_duration: Duration::from_millis(1_000_003),
            subchunks_per_chunk: 4,
            ..ReTraTreeParams::default()
        };
        assert!(p.validate().unwrap_err().contains("divisible"));

        let p = ReTraTreeParams {
            reorg_page_threshold: 0,
            ..ReTraTreeParams::default()
        };
        assert!(p.validate().is_err());

        let q = QutParams {
            merge_distance: 0.0,
            ..QutParams::default()
        };
        assert!(q.validate().is_err());

        let q = QutParams {
            merge_gap: Duration::from_millis(-1),
            ..QutParams::default()
        };
        assert!(q.validate().is_err());
    }
}
