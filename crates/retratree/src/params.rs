//! Parameters of the ReTraTree and of QuT-Clustering queries.

use hermes_s2t::S2TParams;
use hermes_trajectory::Duration;

/// Construction-time parameters of a [`crate::tree::ReTraTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReTraTreeParams {
    /// Length of a level-1 temporal chunk.
    pub chunk_duration: Duration,
    /// Number of sub-chunks each chunk is divided into (level 2). The paper
    /// uses a finer temporal partitioning inside each chunk; a fixed fan-out
    /// keeps sub-chunk boundaries deterministic, which QuT exploits to decide
    /// what can be reused without touching the data.
    pub subchunks_per_chunk: usize,
    /// Page threshold of an outlier partition above which the maintenance
    /// loop re-runs S2T-Clustering on that sub-chunk ("when the size of a
    /// partition exceeds a pre-defined threshold, S2T-Clustering takes
    /// action").
    pub reorg_page_threshold: usize,
    /// Buffer-pool capacity in frames for the backing partition store.
    pub buffer_frames: usize,
    /// S2T parameters used for the per-sub-chunk clustering runs.
    pub s2t: S2TParams,
}

impl Default for ReTraTreeParams {
    fn default() -> Self {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(6),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 8,
            buffer_frames: 256,
            s2t: S2TParams::default(),
        }
    }
}

impl ReTraTreeParams {
    /// Validates the parameters, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_duration.millis() <= 0 {
            return Err("chunk_duration must be positive".into());
        }
        if self.subchunks_per_chunk == 0 {
            return Err("subchunks_per_chunk must be at least 1".into());
        }
        if self.chunk_duration.millis() % self.subchunks_per_chunk as i64 != 0 {
            return Err(format!(
                "chunk_duration ({} ms) must be divisible by subchunks_per_chunk ({})",
                self.chunk_duration.millis(),
                self.subchunks_per_chunk
            ));
        }
        if self.reorg_page_threshold == 0 {
            return Err("reorg_page_threshold must be at least 1".into());
        }
        self.s2t.validate()
    }

    /// Length of one level-2 sub-chunk.
    pub fn subchunk_duration(&self) -> Duration {
        Duration::from_millis(self.chunk_duration.millis() / self.subchunks_per_chunk as i64)
    }
}

/// Parameters of one QuT-Clustering query — the `τ, δ, t, d, γ` of
/// `SELECT QUT(D, Wi, We, τ, δ, t, d, γ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct QutParams {
    /// S2T parameters (`τ`, `δ`, `t` plus the voting/clustering knobs) used
    /// when a border sub-chunk has to be re-clustered on the fly.
    pub s2t: S2TParams,
    /// Merge distance `d`: cluster entries from adjacent sub-chunks whose
    /// representatives are within this synchronized-shape distance are
    /// reported as one cluster.
    pub merge_distance: f64,
    /// Merge gap `γ`: the maximum temporal gap between two cluster entries
    /// that may still be merged.
    pub merge_gap: Duration,
}

impl Default for QutParams {
    fn default() -> Self {
        QutParams {
            s2t: S2TParams::default(),
            merge_distance: 200.0,
            merge_gap: Duration::from_mins(30),
        }
    }
}

impl QutParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.merge_distance > 0.0) {
            return Err(format!(
                "merge_distance must be positive, got {}",
                self.merge_distance
            ));
        }
        if self.merge_gap.millis() < 0 {
            return Err("merge_gap must be non-negative".into());
        }
        self.s2t.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(ReTraTreeParams::default().validate().is_ok());
        assert!(QutParams::default().validate().is_ok());
    }

    #[test]
    fn subchunk_duration_divides_chunk() {
        let p = ReTraTreeParams::default();
        assert_eq!(
            p.subchunk_duration().millis() * p.subchunks_per_chunk as i64,
            p.chunk_duration.millis()
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut p = ReTraTreeParams::default();
        p.chunk_duration = Duration::from_millis(0);
        assert!(p.validate().is_err());

        let mut p = ReTraTreeParams::default();
        p.subchunks_per_chunk = 0;
        assert!(p.validate().is_err());

        let mut p = ReTraTreeParams::default();
        p.chunk_duration = Duration::from_millis(1_000_003);
        p.subchunks_per_chunk = 4;
        assert!(p.validate().unwrap_err().contains("divisible"));

        let mut p = ReTraTreeParams::default();
        p.reorg_page_threshold = 0;
        assert!(p.validate().is_err());

        let mut q = QutParams::default();
        q.merge_distance = 0.0;
        assert!(q.validate().is_err());

        let mut q = QutParams::default();
        q.merge_gap = Duration::from_millis(-1);
        assert!(q.validate().is_err());
    }
}
