//! ReTraTree state export/import: the tree's contribution to a snapshot.
//!
//! [`encode_tree`] serializes everything needed to answer queries after a
//! restart *without re-clustering*: the construction parameters, the
//! maintenance counters, the whole level-4 [`PartitionStore`] (raw page
//! images, so record locators stay valid), and for every sub-chunk its
//! cluster entries (representatives included, re-encoded through the storage
//! codec), outlier locators and the entry lists of its [`LeafIndex`].
//! [`decode_tree`] rebuilds an equivalent tree whose query answers are
//! bit-identical to the original's — the restart-equivalence property the
//! tier-1 persistence tests assert.
//!
//! The byte layout rides entirely on [`ByteWriter`]/[`ByteReader`] and is
//! normatively specified in `docs/STORAGE.md` (§ "ReTraTree state encoding").

use crate::node::{Chunk, ClusterEntry, SubChunk};
use crate::params::ReTraTreeParams;
use crate::tree::{MaintenanceStats, ReTraTree};
use crate::LeafIndex;
use hermes_s2t::S2TParams;
use hermes_storage::codec::{decode_sub_trajectory_from, encode_sub_trajectory_into};
use hermes_storage::{ByteReader, ByteWriter, PartitionStore, RecordLocator, StorageError};
use hermes_trajectory::{Duration, Mbb, TimeInterval, Timestamp};
use std::collections::BTreeMap;

/// Result alias matching the storage error surface.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Serializes the full construction-parameter set (including the nested
/// [`S2TParams`]). Shared with the engine's WAL, whose `BuildIndex` record
/// carries the same parameters.
pub fn encode_params_into(w: &mut ByteWriter, p: &ReTraTreeParams) {
    w.i64(p.chunk_duration.millis());
    w.u32(p.subchunks_per_chunk as u32);
    w.u32(p.reorg_page_threshold as u32);
    w.u32(p.buffer_frames as u32);
    w.f64(p.s2t.sigma);
    w.f64(p.s2t.tau);
    w.f64(p.s2t.delta);
    w.i64(p.s2t.min_duration_ms);
    w.f64(p.s2t.epsilon);
    w.u64(p.s2t.max_representatives as u64);
    w.f64(p.s2t.time_weight);
}

/// Reads parameters written by [`encode_params_into`], re-running
/// [`ReTraTreeParams::validate`] so corrupt input cannot smuggle in an
/// invalid configuration.
pub fn decode_params_from(r: &mut ByteReader<'_>) -> Result<ReTraTreeParams> {
    let params = ReTraTreeParams {
        chunk_duration: Duration::from_millis(r.i64()?),
        subchunks_per_chunk: r.u32()? as usize,
        reorg_page_threshold: r.u32()? as usize,
        buffer_frames: r.u32()? as usize,
        s2t: S2TParams {
            sigma: r.f64()?,
            tau: r.f64()?,
            delta: r.f64()?,
            min_duration_ms: r.i64()?,
            epsilon: r.f64()?,
            max_representatives: r.u64()? as usize,
            time_weight: r.f64()?,
        },
    };
    params.validate().map_err(|reason| StorageError::Corrupt {
        reason: format!("decoded ReTraTree parameters are invalid: {reason}"),
    })?;
    Ok(params)
}

fn encode_locator(w: &mut ByteWriter, loc: &RecordLocator) {
    w.u64(loc.partition);
    w.u64(loc.page);
    w.u16(loc.slot);
}

fn decode_locator(r: &mut ByteReader<'_>) -> Result<RecordLocator> {
    Ok(RecordLocator {
        partition: r.u64()?,
        page: r.u64()?,
        slot: r.u16()?,
    })
}

fn encode_mbb(w: &mut ByteWriter, mbb: &Mbb) {
    w.f64(mbb.x_min);
    w.f64(mbb.x_max);
    w.f64(mbb.y_min);
    w.f64(mbb.y_max);
    w.i64(mbb.t_min.millis());
    w.i64(mbb.t_max.millis());
}

fn decode_mbb(r: &mut ByteReader<'_>) -> Result<Mbb> {
    let x_min = r.f64()?;
    let x_max = r.f64()?;
    let y_min = r.f64()?;
    let y_max = r.f64()?;
    let t_min = Timestamp(r.i64()?);
    let t_max = Timestamp(r.i64()?);
    // `Mbb::new` asserts on inverted bounds; a CRC-valid but malformed
    // snapshot must surface as Corrupt, never as a panic inside recovery.
    if !(x_min <= x_max && y_min <= y_max && t_min <= t_max) {
        return Err(StorageError::Corrupt {
            reason: format!(
                "inverted MBB bounds: x [{x_min}, {x_max}], y [{y_min}, {y_max}], t [{}, {}]",
                t_min.millis(),
                t_max.millis()
            ),
        });
    }
    Ok(Mbb::new(x_min, x_max, y_min, y_max, t_min, t_max))
}

fn encode_entry_list(w: &mut ByteWriter, entries: &[(Mbb, RecordLocator)]) {
    w.u32(entries.len() as u32);
    for (mbb, loc) in entries {
        encode_mbb(w, mbb);
        encode_locator(w, loc);
    }
}

fn decode_entry_list(r: &mut ByteReader<'_>) -> Result<Vec<(Mbb, RecordLocator)>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mbb = decode_mbb(r)?;
        let loc = decode_locator(r)?;
        out.push((mbb, loc));
    }
    Ok(out)
}

/// Serializes a tree into `w`.
pub fn encode_tree(w: &mut ByteWriter, tree: &ReTraTree) {
    encode_params_into(w, &tree.params);
    let s = tree.stats;
    for counter in [
        s.inserted_trajectories,
        s.inserted_pieces,
        s.assigned_to_existing,
        s.parked_as_outliers,
        s.reorganizations,
        s.promoted_representatives,
    ] {
        w.u64(counter as u64);
    }
    tree.store.encode_into(w);
    w.u32(tree.chunks.len() as u32);
    for (&key, chunk) in &tree.chunks {
        w.i64(key);
        for sc in &chunk.subchunks {
            w.u64(sc.outlier_partition);
            w.u32(sc.outliers.len() as u32);
            for loc in &sc.outliers {
                encode_locator(w, loc);
            }
            w.u32(sc.clusters.len() as u32);
            for entry in &sc.clusters {
                encode_sub_trajectory_into(w, &entry.representative);
                w.f64(entry.representative_vote);
                w.u64(entry.partition);
                match entry.representative_loc {
                    Some(loc) => {
                        w.bool(true);
                        encode_locator(w, &loc);
                    }
                    None => w.bool(false),
                }
                w.u32(entry.members.len() as u32);
                for loc in &entry.members {
                    encode_locator(w, loc);
                }
            }
            let (base, delta) = sc.index.export_entries();
            encode_entry_list(w, &base);
            encode_entry_list(w, &delta);
        }
    }
}

/// Rebuilds a tree serialized by [`encode_tree`]. Chunk and sub-chunk
/// intervals are re-derived from the chunk keys and the parameters (they are
/// not stored — the layout is a pure function of both).
pub fn decode_tree(r: &mut ByteReader<'_>) -> Result<ReTraTree> {
    let params = decode_params_from(r)?;
    let stats = MaintenanceStats {
        inserted_trajectories: r.u64()? as usize,
        inserted_pieces: r.u64()? as usize,
        assigned_to_existing: r.u64()? as usize,
        parked_as_outliers: r.u64()? as usize,
        reorganizations: r.u64()? as usize,
        promoted_representatives: r.u64()? as usize,
    };
    let store = PartitionStore::decode_from(r, params.reorg_page_threshold, params.buffer_frames)?;

    let num_chunks = r.u32()? as usize;
    let chunk_len = params.chunk_duration.millis();
    let sub_len = params.subchunk_duration().millis();
    let mut chunks = BTreeMap::new();
    for _ in 0..num_chunks {
        let key = r.i64()?;
        let interval = TimeInterval::new(Timestamp(key), Timestamp(key + chunk_len));
        let mut subchunks = Vec::with_capacity(params.subchunks_per_chunk);
        for i in 0..params.subchunks_per_chunk {
            let s = Timestamp(key + i as i64 * sub_len);
            let e = Timestamp(key + (i as i64 + 1) * sub_len);
            let outlier_partition = r.u64()?;
            let num_outliers = r.u32()? as usize;
            let mut outliers = Vec::with_capacity(num_outliers);
            for _ in 0..num_outliers {
                outliers.push(decode_locator(r)?);
            }
            let num_clusters = r.u32()? as usize;
            let mut clusters = Vec::with_capacity(num_clusters);
            for _ in 0..num_clusters {
                let representative = decode_sub_trajectory_from(r)?;
                let representative_vote = r.f64()?;
                let partition = r.u64()?;
                let representative_loc = if r.bool()? {
                    Some(decode_locator(r)?)
                } else {
                    None
                };
                let num_members = r.u32()? as usize;
                let mut members = Vec::with_capacity(num_members);
                for _ in 0..num_members {
                    members.push(decode_locator(r)?);
                }
                clusters.push(ClusterEntry {
                    representative,
                    representative_vote,
                    partition,
                    representative_loc,
                    members,
                });
            }
            let base = decode_entry_list(r)?;
            let delta = decode_entry_list(r)?;
            let mut sc = SubChunk::new(TimeInterval::new(s, e), outlier_partition);
            sc.outliers = outliers;
            sc.clusters = clusters;
            sc.index = LeafIndex::import_entries(base, delta);
            subchunks.push(sc);
        }
        if chunks
            .insert(
                key,
                Chunk {
                    interval,
                    subchunks,
                },
            )
            .is_some()
        {
            return Err(StorageError::Corrupt {
                reason: format!("chunk key {key} appears twice in the tree encoding"),
            });
        }
    }
    Ok(ReTraTree {
        params,
        chunks,
        store,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Trajectory};

    fn params() -> ReTraTreeParams {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(4),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 2,
            buffer_frames: 64,
            s2t: S2TParams {
                sigma: 60.0,
                epsilon: 300.0,
                min_duration_ms: 60_000,
                ..S2TParams::default()
            },
        }
    }

    fn traj(id: u64, y: f64, t0: i64, dur_ms: i64) -> Trajectory {
        let n = 40usize;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as f64 * 100.0,
                    y,
                    Timestamp(t0 + dur_ms * i as i64 / (n as i64 - 1)),
                )
            })
            .collect();
        Trajectory::new(id, id, pts).unwrap()
    }

    fn populated_tree() -> ReTraTree {
        let mut tree = ReTraTree::new(params());
        // Enough co-moving trajectories to trigger reorganizations (promoted
        // representatives + cluster partitions), plus post-reorg insertions so
        // the LeafIndex deltas are non-empty.
        for i in 0..30 {
            tree.insert_trajectory(&traj(i, i as f64 * 5.0, 0, 3_500_000));
        }
        tree.insert_trajectory(&traj(100, 52.0, 0, 3_500_000));
        tree.insert_trajectory(&traj(101, 47.0, 3_600_000, 3_000_000));
        tree
    }

    #[test]
    fn params_round_trip_and_validate() {
        let p = params();
        let mut w = ByteWriter::new();
        encode_params_into(&mut w, &p);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(decode_params_from(&mut r).unwrap(), p);
        assert!(r.is_empty());

        // An invalid configuration (zero sub-chunks) is rejected on decode.
        let mut bad = p;
        bad.subchunks_per_chunk = 0;
        let mut w = ByteWriter::new();
        encode_params_into(&mut w, &bad);
        let buf = w.into_bytes();
        assert!(matches!(
            decode_params_from(&mut ByteReader::new(&buf)),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn tree_round_trip_preserves_structure_and_answers() {
        let tree = populated_tree();
        assert!(tree.stats().reorganizations >= 1, "fixture must reorganize");

        let mut w = ByteWriter::new();
        encode_tree(&mut w, &tree);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let back = decode_tree(&mut r).unwrap();
        assert!(r.is_empty(), "{} bytes left over", r.remaining());

        assert_eq!(back.params(), tree.params());
        assert_eq!(back.stats(), tree.stats());
        assert_eq!(back.num_chunks(), tree.num_chunks());
        assert_eq!(back.total_population(), tree.total_population());
        assert_eq!(back.total_clusters(), tree.total_clusters());
        assert_eq!(back.describe(), tree.describe());
        assert_eq!(back.lifespan(), tree.lifespan());

        // Cluster entries line up one to one, bit for bit.
        for (ca, cb) in tree.chunks().zip(back.chunks()) {
            assert_eq!(ca.interval, cb.interval);
            for (sa, sb) in ca.subchunks.iter().zip(cb.subchunks.iter()) {
                assert_eq!(sa.interval, sb.interval);
                assert_eq!(sa.outlier_partition, sb.outlier_partition);
                assert_eq!(sa.outliers, sb.outliers);
                assert_eq!(sa.num_clusters(), sb.num_clusters());
                for (ea, eb) in sa.clusters.iter().zip(sb.clusters.iter()) {
                    assert_eq!(ea.representative, eb.representative);
                    assert_eq!(
                        ea.representative_vote.to_bits(),
                        eb.representative_vote.to_bits()
                    );
                    assert_eq!(ea.partition, eb.partition);
                    assert_eq!(ea.representative_loc, eb.representative_loc);
                    assert_eq!(ea.members, eb.members);
                }
                assert_eq!(sa.index.len(), sb.index.len());
                assert_eq!(sa.index.packed_len(), sb.index.packed_len());
                assert_eq!(sa.index.delta_len(), sb.index.delta_len());
            }
        }

        // Window queries answer identically — same records, same order.
        for w in [
            TimeInterval::new(Timestamp(0), Timestamp(3_600_000)),
            TimeInterval::new(Timestamp(1_000_000), Timestamp(5_000_000)),
            TimeInterval::everything(),
        ] {
            assert_eq!(
                tree.window_sub_trajectories(&w),
                back.window_sub_trajectories(&w)
            );
        }

        // The restored tree keeps working: insertions route and reorganize.
        let mut live = decode_tree(&mut ByteReader::new(&buf)).unwrap();
        let before = live.stats().inserted_pieces;
        live.insert_trajectory(&traj(200, 49.0, 0, 3_500_000));
        assert!(live.stats().inserted_pieces > before);
    }

    #[test]
    fn inverted_mbb_bounds_are_corrupt_not_a_panic() {
        let mut w = ByteWriter::new();
        w.f64(10.0); // x_min > x_max
        w.f64(0.0);
        w.f64(0.0);
        w.f64(1.0);
        w.i64(0);
        w.i64(1);
        let buf = w.into_bytes();
        assert!(matches!(
            decode_mbb(&mut ByteReader::new(&buf)),
            Err(StorageError::Corrupt { .. })
        ));
        // NaN bounds fail the same validation (comparisons are false).
        let mut w = ByteWriter::new();
        w.f64(f64::NAN);
        w.f64(1.0);
        w.f64(0.0);
        w.f64(1.0);
        w.i64(0);
        w.i64(1);
        let buf = w.into_bytes();
        assert!(decode_mbb(&mut ByteReader::new(&buf)).is_err());
    }

    #[test]
    fn truncated_tree_bytes_are_corrupt_not_a_panic() {
        let tree = populated_tree();
        let mut w = ByteWriter::new();
        encode_tree(&mut w, &tree);
        let buf = w.into_bytes();
        // A sweep over prefixes: every truncation fails cleanly.
        for cut in (0..buf.len()).step_by(97) {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(
                decode_tree(&mut r).is_err(),
                "truncation to {cut} bytes must error"
            );
        }
    }
}
