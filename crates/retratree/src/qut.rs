//! QuT-Clustering: cluster analysis constrained to a temporal window.
//!
//! "Given a MOD indexed according to ReTraTree structure and a temporal
//! period W of interest, QuT-Clustering efficiently retrieves the subset of
//! the MOD, actually the clusters and outliers at sub-trajectory level, that
//! temporally intersect W." (ICDE 2018, §II.B)
//!
//! The progressive trick: sub-chunks *fully covered* by `W` already carry
//! their clustering (level-3 entries) — those are reused verbatim. Only the
//! border sub-chunks (partially overlapping `W`) are re-clustered, on just
//! the data that falls inside `W`. Finally, cluster entries from adjacent
//! sub-chunks are merged when their representatives are close in space and
//! time, so a cluster that spans a chunk boundary is reported once.

use crate::node::SubChunk;
use crate::params::QutParams;
use crate::tree::ReTraTree;
use hermes_exec::Executor;
use hermes_s2t::{
    run_s2t_with, trajectories_from_subs, Cluster, ClusteringResult, KernelCounters, S2TParams,
    S2TPhaseTimings,
};
use hermes_trajectory::{
    hausdorff_distance, spatiotemporal_distance, sub_trajectory_distance, SubTrajectory,
    TimeInterval,
};
use std::time::Instant;

/// Execution statistics of one QuT query (reported by the E3 benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QutStats {
    /// Sub-chunks whose level-3 entries were reused without touching data.
    pub reused_subchunks: usize,
    /// Border sub-chunks that had to be re-clustered.
    pub reclustered_subchunks: usize,
    /// Sub-trajectories loaded from storage.
    pub loaded_sub_trajectories: usize,
    /// Cluster pairs merged across sub-chunk boundaries.
    pub merges: usize,
    /// Wall-clock time of the whole query in milliseconds.
    pub elapsed_ms: f64,
    /// Aggregated S2T phase timings of every clustering run the query
    /// performed (border re-clustering for QuT, the fresh pipeline for the
    /// rebuild baseline). Under parallel execution per-task times overlap in
    /// wall-clock, so these sum to *work*, not elapsed time — the same
    /// convention `SHOW STATS` uses for its cumulative phase counters.
    pub phases: S2TPhaseTimings,
    /// Pruned-vs-evaluated voting-kernel counters aggregated over every
    /// clustering run the query performed. Exact for the same reason the
    /// phase timings are: accumulated per task, summed in the deterministic
    /// merge.
    pub kernel: KernelCounters,
}

impl QutStats {
    /// Folds another worker's counters into this one. Under parallel QuT each
    /// sub-chunk task accumulates into its own `QutStats`; the single merge
    /// pass sums them in temporal order, so `SHOW STATS`-visible counters are
    /// exact (no concurrent increments, hence no lost updates). `elapsed_ms`
    /// is deliberately not summed — per-task times overlap in wall-clock; the
    /// query sets it once at the end.
    pub fn merge(&mut self, other: &QutStats) {
        self.reused_subchunks += other.reused_subchunks;
        self.reclustered_subchunks += other.reclustered_subchunks;
        self.loaded_sub_trajectories += other.loaded_sub_trajectories;
        self.merges += other.merges;
        self.phases.accumulate(&other.phases);
        self.kernel.accumulate(&other.kernel);
    }
}

/// What one sub-chunk contributes to a window answer: clusters (ids assigned
/// later, during the deterministic merge), outliers, and its own counters.
struct SubChunkAnswer {
    clusters: Vec<Cluster>,
    outliers: Vec<SubTrajectory>,
    stats: QutStats,
}

/// A half-open slice `[start_ms, end_ms)` of the time axis used to assign
/// *ownership* of sub-chunks when one logical dataset is split across shards.
/// A sub-chunk belongs to the slice that contains its interval start, so any
/// family of disjoint slices covering the axis partitions the sub-chunks
/// exactly — each is answered by exactly one shard.
///
/// Slices are half-open (unlike the closed [`TimeInterval`]) precisely so
/// that adjacent slices share no sub-chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnedSlice {
    /// Inclusive start of the slice, in milliseconds.
    pub start_ms: i64,
    /// Exclusive end of the slice, in milliseconds.
    pub end_ms: i64,
}

impl OwnedSlice {
    /// The slice covering the entire time axis (single-node ownership).
    pub const ALL: OwnedSlice = OwnedSlice {
        start_ms: i64::MIN,
        end_ms: i64::MAX,
    };

    /// Creates a slice; panics if `start_ms > end_ms`.
    pub fn new(start_ms: i64, end_ms: i64) -> Self {
        assert!(
            start_ms <= end_ms,
            "OwnedSlice start {start_ms} must not exceed end {end_ms}"
        );
        OwnedSlice { start_ms, end_ms }
    }

    /// True when `t` falls inside the half-open slice. `i64::MAX` as `end_ms`
    /// is treated as "unbounded" so [`OwnedSlice::ALL`] really covers the
    /// whole axis, including `Timestamp::MAX` itself.
    pub fn contains_millis(&self, t: i64) -> bool {
        t >= self.start_ms && (t < self.end_ms || self.end_ms == i64::MAX)
    }

    /// [`OwnedSlice::contains_millis`] for a [`hermes_trajectory::Timestamp`].
    pub fn contains(&self, t: hermes_trajectory::Timestamp) -> bool {
        self.contains_millis(t.millis())
    }
}

/// The un-merged contribution of one ownership slice to `QUT(W)`: per-sub-chunk
/// clusters in temporal order, outliers, and the slice's counters. Produced by
/// [`qut_partial_with`]; any set of partials covering the window folds back
/// into the exact single-node answer through [`merge_qut_partials`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QutPartial {
    /// Clusters of the owned sub-chunks, in temporal order. Ids are
    /// placeholders — the merge assigns final ids.
    pub clusters: Vec<Cluster>,
    /// Outliers of the owned sub-chunks, in temporal order.
    pub outliers: Vec<SubTrajectory>,
    /// Counters accumulated while answering the owned sub-chunks
    /// (`elapsed_ms` is left at zero; the caller stamps wall-clock time).
    pub stats: QutStats,
}

/// Answers one sub-chunk of `QUT(W)`: reuse the level-3 entries when `W`
/// fully covers the sub-chunk, re-cluster the window overlap otherwise.
/// Reads only (`&ReTraTree`; storage reads go through the `Mutex`-guarded
/// buffer pool), so any number of these run in parallel.
fn answer_subchunk(
    tree: &ReTraTree,
    sc: &SubChunk,
    w: &TimeInterval,
    params: &QutParams,
    exec: &Executor,
) -> SubChunkAnswer {
    let mut answer = SubChunkAnswer {
        clusters: Vec::new(),
        outliers: Vec::new(),
        stats: QutStats::default(),
    };
    if w.contains_interval(&sc.interval) {
        // Fully covered: reuse the level-3 entries as they are.
        answer.stats.reused_subchunks += 1;
        for entry in &sc.clusters {
            let mut members = Vec::with_capacity(entry.members.len());
            let mut member_distances = Vec::with_capacity(entry.members.len());
            for loc in &entry.members {
                if let Some(sub) = tree.load(*loc) {
                    answer.stats.loaded_sub_trajectories += 1;
                    let d = spatiotemporal_distance(&sub, &entry.representative);
                    members.push(sub);
                    member_distances.push(if d.is_finite() { d } else { f64::MAX });
                }
            }
            answer.clusters.push(Cluster {
                id: 0, // assigned during the sequential merge
                representative: entry.representative.clone(),
                representative_vote: entry.representative_vote,
                members,
                member_distances,
            });
        }
        for loc in &sc.outliers {
            if let Some(sub) = tree.load(*loc) {
                answer.stats.loaded_sub_trajectories += 1;
                answer.outliers.push(sub);
            }
        }
    } else {
        // Border sub-chunk: restrict the stored data to W and re-cluster it
        // on the fly.
        answer.stats.reclustered_subchunks += 1;
        let overlap = sc
            .interval
            .intersection(w)
            .expect("caller checked intersects(w)");
        let mut clipped: Vec<SubTrajectory> = Vec::new();
        for loc in sc.index.query_temporal(&overlap) {
            if let Some(sub) = tree.load(*loc) {
                answer.stats.loaded_sub_trajectories += 1;
                if let Some(c) = sub.temporal_clip(&overlap) {
                    clipped.push(c);
                }
            }
        }
        let (border_clusters, border_outliers, phases, kernel) =
            cluster_sub_trajectories(&clipped, &params.s2t, exec);
        answer.clusters = border_clusters;
        answer.outliers = border_outliers;
        answer.stats.phases = phases;
        answer.stats.kernel = kernel;
    }
    answer
}

/// Answers `QUT(W)` against a ReTraTree.
pub fn qut_clustering(
    tree: &ReTraTree,
    w: &TimeInterval,
    params: &QutParams,
) -> (ClusteringResult, QutStats) {
    qut_clustering_with(tree, w, params, &Executor::serial())
}

/// [`qut_clustering`] fanned out over the ReTraTree's temporal partitions on
/// `exec`: every intersecting sub-chunk is answered independently (level-3
/// reuse or border re-clustering — the latter itself fans out through the
/// same executor), then the per-sub-chunk answers are folded in temporal
/// order. Cluster ids, the cross-boundary merge and the final sort are all
/// sequential over that deterministic order, so the result is identical to
/// the serial path for any thread count.
pub fn qut_clustering_with(
    tree: &ReTraTree,
    w: &TimeInterval,
    params: &QutParams,
    exec: &Executor,
) -> (ClusteringResult, QutStats) {
    let start = Instant::now();
    let partial = qut_partial_with(tree, &OwnedSlice::ALL, w, params, exec);
    let (result, mut stats) = merge_qut_partials(vec![partial], params);
    stats.elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    (result, stats)
}

/// Answers the *owned* share of `QUT(W)`: every sub-chunk that intersects `W`
/// **and** whose interval start falls inside `owned` is answered exactly as
/// in [`qut_clustering_with`] (level-3 reuse or border re-clustering against
/// the full, un-clipped window `W`), in temporal order, but the cross-boundary
/// merge is *not* applied — that is [`merge_qut_partials`]' job, so a
/// coordinator can first concatenate the partials of several shards.
///
/// With `owned == OwnedSlice::ALL` this is the whole query minus the merge.
pub fn qut_partial_with(
    tree: &ReTraTree,
    owned: &OwnedSlice,
    w: &TimeInterval,
    params: &QutParams,
    exec: &Executor,
) -> QutPartial {
    // The owned sub-chunks intersecting W, in temporal order.
    let targets: Vec<&SubChunk> = tree
        .chunks()
        .filter(|chunk| chunk.interval.intersects(w))
        .flat_map(|chunk| chunk.subchunks.iter())
        .filter(|sc| sc.interval.intersects(w) && owned.contains(sc.interval.start))
        .collect();

    // Fan out: one task per sub-chunk, each with its own QutStats.
    let answers = exec.map(&targets, |_, sc| answer_subchunk(tree, sc, w, params, exec));

    // Deterministic fold in temporal order.
    let mut partial = QutPartial::default();
    for mut answer in answers {
        partial.stats.merge(&answer.stats);
        partial.clusters.append(&mut answer.clusters);
        partial.outliers.append(&mut answer.outliers);
    }
    partial
}

/// Folds per-slice partials (given in temporal slice order) into the final
/// window answer: assigns cluster ids over the concatenation, merges clusters
/// that continue across sub-chunk *and* slice boundaries, and sums the
/// counters. Because partials keep their sub-chunks in temporal order and the
/// merge re-sorts deterministically, the result is byte-identical to running
/// [`qut_clustering_with`] over the undivided tree. `elapsed_ms` of the
/// returned stats is zero; the caller stamps wall-clock time.
pub fn merge_qut_partials(
    partials: Vec<QutPartial>,
    params: &QutParams,
) -> (ClusteringResult, QutStats) {
    let mut stats = QutStats::default();
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut outliers: Vec<SubTrajectory> = Vec::new();
    for mut partial in partials {
        stats.merge(&partial.stats);
        for mut c in partial.clusters.drain(..) {
            c.id = clusters.len();
            clusters.push(c);
        }
        outliers.append(&mut partial.outliers);
    }

    // Merge clusters that continue across sub-chunk boundaries.
    let merged = merge_adjacent_clusters(clusters, params, &mut stats);

    (
        ClusteringResult {
            clusters: merged,
            outliers,
        },
        stats,
    )
}

/// The alternative execution strategy the demo compares against in
/// scenario 2: "(i) extracting the relevant records using a temporal range
/// query, (ii) creating an R-tree index on the result of the query, and
/// (iii) applying clustering (S2T-Clustering, in our case)".
pub fn range_query_then_cluster(
    tree: &ReTraTree,
    w: &TimeInterval,
    s2t: &S2TParams,
) -> (ClusteringResult, QutStats) {
    range_query_then_cluster_with(tree, w, s2t, &Executor::serial())
}

/// [`range_query_then_cluster`] with the fresh S2T run fanned out on `exec`.
pub fn range_query_then_cluster_with(
    tree: &ReTraTree,
    w: &TimeInterval,
    s2t: &S2TParams,
    exec: &Executor,
) -> (ClusteringResult, QutStats) {
    let start = Instant::now();
    let mut stats = QutStats::default();

    // (i) temporal range query over the stored data.
    let subs = tree.window_sub_trajectories(w);
    stats.loaded_sub_trajectories = subs.len();
    let clipped: Vec<SubTrajectory> = subs.iter().filter_map(|s| s.temporal_clip(w)).collect();

    // (ii) + (iii): run_s2t builds its segment index (the fresh R-tree) and
    // applies the full clustering pipeline from scratch.
    let (clusters, outliers, phases, kernel) = cluster_sub_trajectories(&clipped, s2t, exec);
    stats.phases = phases;
    stats.kernel = kernel;

    stats.elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    (ClusteringResult { clusters, outliers }, stats)
}

/// Runs S2T over a bag of sub-trajectories (treating each as a trajectory)
/// and returns its clusters, outliers, per-phase timings and kernel counters.
fn cluster_sub_trajectories(
    subs: &[SubTrajectory],
    s2t: &S2TParams,
    exec: &Executor,
) -> (
    Vec<Cluster>,
    Vec<SubTrajectory>,
    S2TPhaseTimings,
    KernelCounters,
) {
    if subs.is_empty() {
        return (
            Vec::new(),
            Vec::new(),
            S2TPhaseTimings::default(),
            KernelCounters::default(),
        );
    }
    let trajs = trajectories_from_subs(subs);
    let outcome = run_s2t_with(&trajs, s2t, exec);
    (
        outcome.result.clusters,
        outcome.result.outliers,
        outcome.timings,
        outcome.kernel,
    )
}

/// Distance used to decide whether two cluster representatives describe the
/// same (continuing) group of movers:
///
/// * representatives that temporally co-exist are compared with the
///   time-synchronized distance — they must actually co-move;
/// * temporally adjacent representatives (a cluster cut at a sub-chunk
///   boundary) are compared by *continuity*: the spatial distance between
///   the end of the earlier one and the start of the later one. Falling back
///   to a shape distance here would be wrong — the two halves of a long
///   movement occupy different regions of space.
fn representative_merge_distance(a: &SubTrajectory, b: &SubTrajectory) -> f64 {
    if let Some(d) = sub_trajectory_distance(a, b) {
        return d;
    }
    let (earlier, later) = if a.end_time() <= b.start_time() {
        (a, b)
    } else if b.end_time() <= a.start_time() {
        (b, a)
    } else {
        // Degenerate single-instant overlap: compare shapes.
        return hausdorff_distance(a.points(), b.points());
    };
    let end = earlier
        .points()
        .last()
        .expect("sub-trajectories are non-empty");
    let start = later
        .points()
        .first()
        .expect("sub-trajectories are non-empty");
    end.spatial_distance(start)
}

/// Merges clusters whose representatives are within `merge_distance` and
/// whose lifespans are within `merge_gap` of each other, using a union-find
/// over the cluster list. The surviving representative is the one with the
/// higher vote; the other representative joins the member list.
fn merge_adjacent_clusters(
    clusters: Vec<Cluster>,
    params: &QutParams,
    stats: &mut QutStats,
) -> Vec<Cluster> {
    let n = clusters.len();
    if n <= 1 {
        return clusters;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    for i in 0..n {
        for j in (i + 1)..n {
            let a = &clusters[i];
            let b = &clusters[j];
            let gap = a
                .representative
                .lifespan()
                .gap(&b.representative.lifespan());
            if gap > params.merge_gap {
                continue;
            }
            let d = representative_merge_distance(&a.representative, &b.representative);
            if d <= params.merge_distance {
                let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                if ra != rb {
                    parent[rb] = ra;
                    stats.merges += 1;
                }
            }
        }
    }

    // Group clusters by root and fold each group into one cluster.
    let mut groups: std::collections::HashMap<usize, Vec<Cluster>> =
        std::collections::HashMap::new();
    for (i, c) in clusters.into_iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(c);
    }

    let mut merged: Vec<Cluster> = Vec::with_capacity(groups.len());
    for (_, mut group) in groups {
        // Highest-vote representative wins.
        group.sort_by(|a, b| {
            b.representative_vote
                .partial_cmp(&a.representative_vote)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut iter = group.into_iter();
        let mut primary = iter.next().expect("groups are non-empty");
        for other in iter {
            let d = representative_merge_distance(&primary.representative, &other.representative);
            primary.members.push(other.representative);
            primary.member_distances.push(d);
            primary.members.extend(other.members);
            primary.member_distances.extend(other.member_distances);
        }
        merged.push(primary);
    }
    // Deterministic output order: by representative start time, then id.
    merged.sort_by_key(|c| (c.representative.start_time(), c.representative.id));
    for (i, c) in merged.iter_mut().enumerate() {
        c.id = i;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ReTraTreeParams;
    use hermes_trajectory::{Duration, Point, Timestamp, Trajectory};

    fn tree_params() -> ReTraTreeParams {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(4),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 2,
            buffer_frames: 64,
            s2t: S2TParams {
                sigma: 60.0,
                epsilon: 300.0,
                min_duration_ms: 60_000,
                ..S2TParams::default()
            },
        }
    }

    fn qut_params() -> QutParams {
        QutParams {
            s2t: tree_params().s2t,
            merge_distance: 400.0,
            merge_gap: Duration::from_mins(90),
        }
    }

    fn traj(id: u64, y: f64, t0: i64, dur_ms: i64) -> Trajectory {
        let n = 40usize;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as f64 * 100.0,
                    y,
                    Timestamp(t0 + dur_ms * i as i64 / (n as i64 - 1)),
                )
            })
            .collect();
        Trajectory::new(id, id, pts).unwrap()
    }

    /// A MOD with a co-moving group in hour 0-1 and another in hours 8-9.
    fn build_tree() -> ReTraTree {
        let mut tree = ReTraTree::new(tree_params());
        for i in 0..25 {
            tree.insert_trajectory(&traj(i, i as f64 * 5.0, 0, 3_500_000));
        }
        for i in 25..50 {
            tree.insert_trajectory(&traj(i, i as f64 * 5.0, 8 * 3_600_000, 3_500_000));
        }
        tree
    }

    #[test]
    fn full_window_reuses_subchunk_clusterings() {
        let tree = build_tree();
        let w = TimeInterval::new(Timestamp(0), Timestamp(12 * 3_600_000));
        let (result, stats) = qut_clustering(&tree, &w, &qut_params());
        assert!(stats.reused_subchunks >= 2);
        assert_eq!(
            stats.reclustered_subchunks, 0,
            "a chunk-aligned window needs no re-clustering"
        );
        assert!(
            result.num_clusters() >= 2,
            "both co-moving groups must appear"
        );
        // Every stored piece must be accounted for.
        assert_eq!(result.total_sub_trajectories(), tree.total_population());
    }

    #[test]
    fn narrow_window_returns_only_its_period() {
        let tree = build_tree();
        let w = TimeInterval::new(Timestamp(0), Timestamp(2 * 3_600_000));
        let (result, _) = qut_clustering(&tree, &w, &qut_params());
        assert!(result.num_clusters() >= 1);
        for c in &result.clusters {
            assert!(c.lifespan().intersects(&w));
            assert!(
                c.representative.trajectory_id < 25,
                "only the morning group is in W"
            );
        }
        let (later, _) = qut_clustering(
            &tree,
            &TimeInterval::new(Timestamp(8 * 3_600_000), Timestamp(10 * 3_600_000)),
            &qut_params(),
        );
        for c in &later.clusters {
            assert!(c.representative.trajectory_id >= 25);
        }
    }

    #[test]
    fn misaligned_window_reclusters_the_border() {
        let tree = build_tree();
        // Cuts through the first sub-chunk (sub-chunk = 1 h here).
        let w = TimeInterval::new(Timestamp(20 * 60_000), Timestamp(100 * 60_000));
        let (result, stats) = qut_clustering(&tree, &w, &qut_params());
        assert!(stats.reclustered_subchunks >= 1);
        // Everything returned must be inside (or clipped to) the window.
        for c in &result.clusters {
            for m in c.members.iter().chain(std::iter::once(&c.representative)) {
                assert!(m.lifespan().intersects(&w));
            }
        }
        assert!(result.num_clusters() >= 1);
    }

    #[test]
    fn qut_matches_rebuild_baseline_for_aligned_windows() {
        let tree = build_tree();
        let w = TimeInterval::new(Timestamp(0), Timestamp(4 * 3_600_000));
        let (fast, _) = qut_clustering(&tree, &w, &qut_params());
        let (slow, _) = range_query_then_cluster(&tree, &w, &qut_params().s2t);
        // The two strategies agree on what co-moves: same number of clustered
        // groups and the same total coverage of the window's data.
        assert_eq!(fast.num_clusters(), slow.num_clusters());
        assert_eq!(fast.total_sub_trajectories(), slow.total_sub_trajectories());
    }

    #[test]
    fn clusters_spanning_subchunk_boundaries_are_merged() {
        let mut tree = ReTraTree::new(tree_params());
        // A co-moving group alive for two consecutive sub-chunks: each
        // sub-chunk clusters its half, QuT must report one merged cluster.
        // Enough objects that both halves overflow their outlier partitions
        // and get their own representative.
        for i in 0..60 {
            tree.insert_trajectory(&traj(i, i as f64 * 5.0, 0, 2 * 3_600_000 - 100_000));
        }
        let w = TimeInterval::new(Timestamp(0), Timestamp(4 * 3_600_000));
        let (result, stats) = qut_clustering(&tree, &w, &qut_params());
        assert!(
            stats.merges >= 1,
            "expected at least one cross-boundary merge"
        );
        assert_eq!(
            result.num_clusters(),
            1,
            "the group must be reported as a single cluster, got {}",
            result.num_clusters()
        );
    }

    #[test]
    fn parallel_qut_matches_serial_exactly() {
        let tree = build_tree();
        // A misaligned window forces both code paths: level-3 reuse for the
        // covered sub-chunks and border re-clustering at the edges.
        let w = TimeInterval::new(Timestamp(20 * 60_000), Timestamp(9 * 3_600_000));
        let (serial, serial_stats) = qut_clustering(&tree, &w, &qut_params());
        for threads in [2usize, 4] {
            let exec = Executor::new(hermes_exec::ExecPolicy { threads });
            let (parallel, stats) = qut_clustering_with(&tree, &w, &qut_params(), &exec);
            assert_eq!(parallel.num_clusters(), serial.num_clusters());
            assert_eq!(parallel.num_outliers(), serial.num_outliers());
            for (a, b) in parallel.clusters.iter().zip(serial.clusters.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.representative.id, b.representative.id);
                assert_eq!(a.representative.points(), b.representative.points());
                assert_eq!(a.member_distances, b.member_distances);
            }
            // Every counter except wall-clock time is exact.
            assert_eq!(stats.reused_subchunks, serial_stats.reused_subchunks);
            assert_eq!(
                stats.reclustered_subchunks,
                serial_stats.reclustered_subchunks
            );
            assert_eq!(
                stats.loaded_sub_trajectories,
                serial_stats.loaded_sub_trajectories
            );
            assert_eq!(stats.merges, serial_stats.merges);
        }
    }

    #[test]
    fn qut_stats_merge_sums_counters_but_not_time() {
        let mut a = QutStats {
            reused_subchunks: 1,
            reclustered_subchunks: 2,
            loaded_sub_trajectories: 30,
            merges: 4,
            elapsed_ms: 10.0,
            phases: S2TPhaseTimings {
                voting_ms: 3.0,
                ..S2TPhaseTimings::default()
            },
            kernel: KernelCounters {
                evaluated: 11,
                pruned: 20,
            },
        };
        let b = QutStats {
            reused_subchunks: 5,
            reclustered_subchunks: 6,
            loaded_sub_trajectories: 70,
            merges: 8,
            elapsed_ms: 99.0,
            phases: S2TPhaseTimings {
                voting_ms: 4.0,
                clustering_ms: 2.0,
                ..S2TPhaseTimings::default()
            },
            kernel: KernelCounters {
                evaluated: 9,
                pruned: 30,
            },
        };
        a.merge(&b);
        assert_eq!(a.reused_subchunks, 6);
        assert_eq!(a.reclustered_subchunks, 8);
        assert_eq!(a.loaded_sub_trajectories, 100);
        assert_eq!(a.merges, 12);
        assert_eq!(a.elapsed_ms, 10.0, "overlapping wall-clock must not sum");
        // Phase timings are work counters: they do sum.
        assert_eq!(a.phases.voting_ms, 7.0);
        assert_eq!(a.phases.clustering_ms, 2.0);
        // So are the kernel counters.
        assert_eq!(a.kernel.evaluated, 20);
        assert_eq!(a.kernel.pruned, 50);
    }

    #[test]
    fn border_reclustering_populates_phase_timings() {
        let tree = build_tree();
        // A misaligned window forces at least one border re-clustering, whose
        // pipeline timings must surface through the query stats.
        let w = TimeInterval::new(Timestamp(20 * 60_000), Timestamp(100 * 60_000));
        let (_, stats) = qut_clustering(&tree, &w, &qut_params());
        assert!(stats.reclustered_subchunks >= 1);
        assert!(stats.phases.total_ms() > 0.0);
        assert!(stats.phases.voting_ms >= 0.0);

        // A chunk-aligned window reuses level-3 entries — no pipeline runs,
        // no phase work.
        let aligned = TimeInterval::new(Timestamp(0), Timestamp(12 * 3_600_000));
        let (_, stats) = qut_clustering(&tree, &aligned, &qut_params());
        assert_eq!(stats.reclustered_subchunks, 0);
        assert_eq!(stats.phases, S2TPhaseTimings::default());
    }

    #[test]
    fn sharded_partials_reassemble_the_exact_answer() {
        let tree = build_tree();
        // Misaligned window: exercises both reuse and border re-clustering.
        let w = TimeInterval::new(Timestamp(20 * 60_000), Timestamp(9 * 3_600_000));
        let params = qut_params();
        let (single, single_stats) = qut_clustering(&tree, &w, &params);

        // Split ownership at a chunk boundary (4 h) and also at an arbitrary
        // sub-chunk boundary (1 h): each sub-chunk has exactly one owner.
        for cut in [4 * 3_600_000i64, 3_600_000] {
            let exec = Executor::serial();
            let left = qut_partial_with(&tree, &OwnedSlice::new(i64::MIN, cut), &w, &params, &exec);
            let right =
                qut_partial_with(&tree, &OwnedSlice::new(cut, i64::MAX), &w, &params, &exec);
            let (merged, stats) = merge_qut_partials(vec![left, right], &params);
            assert_eq!(merged, single, "split at {cut} diverged from single-node");
            assert_eq!(stats.reused_subchunks, single_stats.reused_subchunks);
            assert_eq!(
                stats.reclustered_subchunks,
                single_stats.reclustered_subchunks
            );
            assert_eq!(
                stats.loaded_sub_trajectories,
                single_stats.loaded_sub_trajectories
            );
            assert_eq!(stats.merges, single_stats.merges);
        }
    }

    #[test]
    fn cross_slice_merges_survive_sharding() {
        let mut tree = ReTraTree::new(tree_params());
        // The boundary-spanning group from
        // `clusters_spanning_subchunk_boundaries_are_merged`, with ownership
        // cut exactly between its two sub-chunks: the merge must happen at
        // partial-fold time and match the single-node answer.
        for i in 0..60 {
            tree.insert_trajectory(&traj(i, i as f64 * 5.0, 0, 2 * 3_600_000 - 100_000));
        }
        let w = TimeInterval::new(Timestamp(0), Timestamp(4 * 3_600_000));
        let params = qut_params();
        let (single, single_stats) = qut_clustering(&tree, &w, &params);
        assert!(single_stats.merges >= 1, "the scenario must force a merge");

        let exec = Executor::serial();
        let cut = 3_600_000i64; // sub-chunk boundary between the two halves
        let left = qut_partial_with(&tree, &OwnedSlice::new(i64::MIN, cut), &w, &params, &exec);
        let right = qut_partial_with(&tree, &OwnedSlice::new(cut, i64::MAX), &w, &params, &exec);
        assert!(
            !left.clusters.is_empty() && !right.clusters.is_empty(),
            "both slices must contribute clusters for the merge to be cross-slice"
        );
        let (merged, stats) = merge_qut_partials(vec![left, right], &params);
        assert_eq!(merged, single);
        assert_eq!(stats.merges, single_stats.merges);
    }

    #[test]
    fn owned_slice_partitions_the_axis() {
        let a = OwnedSlice::new(i64::MIN, 0);
        let b = OwnedSlice::new(0, 100);
        let c = OwnedSlice::new(100, i64::MAX);
        for t in [i64::MIN, -1, 0, 99, 100, i64::MAX - 1, i64::MAX] {
            let owners = [a, b, c].iter().filter(|s| s.contains_millis(t)).count();
            assert_eq!(owners, 1, "t={t} must have exactly one owner");
        }
        assert!(OwnedSlice::ALL.contains_millis(i64::MIN));
        assert!(OwnedSlice::ALL.contains_millis(i64::MAX));
    }

    #[test]
    fn empty_window_returns_nothing() {
        let tree = build_tree();
        let w = TimeInterval::new(Timestamp(30 * 3_600_000), Timestamp(40 * 3_600_000));
        let (result, stats) = qut_clustering(&tree, &w, &qut_params());
        assert_eq!(result.num_clusters(), 0);
        assert_eq!(result.num_outliers(), 0);
        assert_eq!(stats.loaded_sub_trajectories, 0);
    }
}
