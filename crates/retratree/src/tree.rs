//! The ReTraTree itself: construction, incremental insertion and the
//! threshold-triggered maintenance loop of the paper's architecture (Fig. 2).

use crate::node::{Chunk, ClusterEntry, SubChunk};
use crate::params::ReTraTreeParams;
use hermes_exec::Executor;
use hermes_s2t::{run_s2t_with, trajectories_from_subs, S2TOutcome};
use hermes_storage::{PartitionKind, PartitionStore, RecordLocator};
use hermes_trajectory::{
    spatiotemporal_distance, Duration, SubTrajectory, SubTrajectoryId, TimeInterval, Timestamp,
    Trajectory,
};
use std::collections::BTreeMap;

/// Counters describing the incremental-maintenance activity of a tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Trajectories inserted.
    pub inserted_trajectories: usize,
    /// Sub-trajectory pieces produced by temporal routing.
    pub inserted_pieces: usize,
    /// Pieces assigned directly to an existing representative.
    pub assigned_to_existing: usize,
    /// Pieces parked in an outlier partition.
    pub parked_as_outliers: usize,
    /// Times the S2T re-clustering pass ran on an overgrown partition.
    pub reorganizations: usize,
    /// Representatives promoted (back-propagated) by those passes.
    pub promoted_representatives: usize,
}

/// The Representative Trajectory Tree.
#[derive(Clone)]
pub struct ReTraTree {
    pub(crate) params: ReTraTreeParams,
    /// Level-1 chunks keyed by their start time in milliseconds.
    pub(crate) chunks: BTreeMap<i64, Chunk>,
    /// Level-4 storage shared by every partition of the tree.
    pub(crate) store: PartitionStore,
    pub(crate) stats: MaintenanceStats,
}

impl ReTraTree {
    /// Creates an empty tree. Panics if the parameters are invalid (use
    /// [`ReTraTreeParams::validate`] first when the parameters come from
    /// user input).
    pub fn new(params: ReTraTreeParams) -> Self {
        params
            .validate()
            .expect("ReTraTreeParams must be valid; validate() before constructing");
        let store = PartitionStore::new(params.reorg_page_threshold, params.buffer_frames);
        ReTraTree {
            params,
            chunks: BTreeMap::new(),
            store,
            stats: MaintenanceStats::default(),
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &ReTraTreeParams {
        &self.params
    }

    /// Maintenance counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// The backing partition store (for buffer statistics in benchmarks).
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    /// Number of level-1 chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Iterates over the chunks in temporal order.
    pub fn chunks(&self) -> impl Iterator<Item = &Chunk> {
        self.chunks.values()
    }

    /// Total number of stored sub-trajectory pieces.
    pub fn total_population(&self) -> usize {
        self.chunks.values().map(|c| c.population()).sum()
    }

    /// Total number of cluster entries (level 3) across the tree.
    pub fn total_clusters(&self) -> usize {
        self.chunks
            .values()
            .flat_map(|c| c.subchunks.iter())
            .map(|s| s.num_clusters())
            .sum()
    }

    /// The temporal extent covered by the stored data, if any.
    pub fn lifespan(&self) -> Option<TimeInterval> {
        let first = self.chunks.values().next()?;
        let last = self.chunks.values().last()?;
        Some(TimeInterval::new(first.interval.start, last.interval.end))
    }

    fn chunk_start_of(&self, t: Timestamp) -> i64 {
        let len = self.params.chunk_duration.millis();
        t.millis().div_euclid(len) * len
    }

    fn ensure_chunk(&mut self, start_ms: i64) {
        if self.chunks.contains_key(&start_ms) {
            return;
        }
        let chunk_len = self.params.chunk_duration.millis();
        let sub_len = self.params.subchunk_duration().millis();
        let interval = TimeInterval::new(Timestamp(start_ms), Timestamp(start_ms + chunk_len));
        let mut subchunks = Vec::with_capacity(self.params.subchunks_per_chunk);
        for i in 0..self.params.subchunks_per_chunk {
            let s = Timestamp(start_ms + i as i64 * sub_len);
            let e = Timestamp(start_ms + (i as i64 + 1) * sub_len);
            let outlier_partition = self.store.create_partition(PartitionKind::Outliers);
            subchunks.push(SubChunk::new(TimeInterval::new(s, e), outlier_partition));
        }
        self.chunks.insert(
            start_ms,
            Chunk {
                interval,
                subchunks,
            },
        );
    }

    /// Inserts a whole trajectory: it is cut at chunk and sub-chunk
    /// boundaries and each piece is routed to its sub-chunk, where it is
    /// either clustered under an existing representative or parked as an
    /// outlier. Overgrown outlier partitions trigger re-clustering.
    pub fn insert_trajectory(&mut self, traj: &Trajectory) {
        self.stats.inserted_trajectories += 1;
        let sub_len = self.params.subchunk_duration().millis();
        let start = traj.start_time().millis().div_euclid(sub_len) * sub_len;
        let end = traj.end_time().millis();

        let mut piece_seq: u32 = 0;
        let mut cursor = start;
        while cursor <= end {
            let window = TimeInterval::new(Timestamp(cursor), Timestamp(cursor + sub_len));
            if let Ok(slice) = traj.temporal_slice(&window) {
                let sub = SubTrajectory::from_points(
                    SubTrajectoryId::new(traj.id, piece_seq),
                    traj.id,
                    traj.object_id,
                    slice.points().to_vec(),
                );
                piece_seq += 1;
                self.insert_piece(sub);
            }
            cursor += sub_len;
        }
    }

    /// Inserts a sub-trajectory that must already fit inside one sub-chunk
    /// interval (callers outside this crate normally use
    /// [`ReTraTree::insert_trajectory`]).
    pub fn insert_piece(&mut self, sub: SubTrajectory) {
        self.stats.inserted_pieces += 1;
        let chunk_key = self.chunk_start_of(sub.start_time());
        self.ensure_chunk(chunk_key);
        let sub_len = self.params.subchunk_duration().millis();
        let sc_index = (((sub.start_time().millis() - chunk_key) / sub_len) as usize)
            .min(self.params.subchunks_per_chunk - 1);

        // Try to cluster the piece under an existing representative.
        let epsilon = self.params.s2t.epsilon;
        let chunk = self
            .chunks
            .get_mut(&chunk_key)
            .expect("chunk ensured above");
        let sc = &mut chunk.subchunks[sc_index];
        let mut best: Option<(usize, f64)> = None;
        for (ci, entry) in sc.clusters.iter().enumerate() {
            let d = spatiotemporal_distance(&sub, &entry.representative);
            if d.is_finite() && d <= epsilon && best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((ci, d));
            }
        }

        match best {
            Some((ci, _)) => {
                let partition = sc.clusters[ci].partition;
                let loc = self
                    .store
                    .append(partition, &sub)
                    .expect("cluster partition exists");
                let chunk = self.chunks.get_mut(&chunk_key).unwrap();
                let sc = &mut chunk.subchunks[sc_index];
                sc.clusters[ci].members.push(loc);
                sc.index.insert(sub.mbb(), loc);
                self.stats.assigned_to_existing += 1;
            }
            None => {
                let partition = sc.outlier_partition;
                let loc = self
                    .store
                    .append(partition, &sub)
                    .expect("outlier partition exists");
                let chunk = self.chunks.get_mut(&chunk_key).unwrap();
                let sc = &mut chunk.subchunks[sc_index];
                sc.outliers.push(loc);
                sc.index.insert(sub.mbb(), loc);
                self.stats.parked_as_outliers += 1;

                // Threshold check: the paper re-runs S2T when a partition
                // outgrows its threshold.
                let pages = self
                    .store
                    .partition(partition)
                    .map(|p| p.num_pages())
                    .unwrap_or(0);
                if pages > self.params.reorg_page_threshold {
                    self.reorganize_subchunk(chunk_key, sc_index);
                }
            }
        }
    }

    /// Re-runs S2T-Clustering over the outliers of one sub-chunk, promoting
    /// new representatives and re-parking whatever remains unclustered — the
    /// Voting → Segmentation → Sampling → GreedyClustering loop of Fig. 2.
    fn reorganize_subchunk(&mut self, chunk_key: i64, sc_index: usize) {
        let outcome = self.cluster_subchunk_outliers(chunk_key, sc_index, &Executor::serial());
        self.apply_reorganization(chunk_key, sc_index, &outcome);
    }

    /// The read-only half of a reorganization: load the sub-chunk's current
    /// outliers and run S2T on them. Takes `&self` (storage reads go through
    /// the `Mutex`-guarded buffer pool), so [`ReTraTree::reorganize_all_with`]
    /// fans these out over sub-chunks in parallel.
    fn cluster_subchunk_outliers(
        &self,
        chunk_key: i64,
        sc_index: usize,
        exec: &Executor,
    ) -> S2TOutcome {
        let sc = &self.chunks[&chunk_key].subchunks[sc_index];
        let mut outlier_subs = Vec::with_capacity(sc.outliers.len());
        for loc in &sc.outliers {
            if let Ok(Some(sub)) = self.store.read(*loc) {
                outlier_subs.push(sub);
            }
        }
        let trajs = trajectories_from_subs(&outlier_subs);
        run_s2t_with(&trajs, &self.params.s2t, exec)
    }

    /// The mutating half of a reorganization: install the clustering computed
    /// by [`ReTraTree::cluster_subchunk_outliers`] into the sub-chunk. Always
    /// runs sequentially (it allocates partitions and appends records), so
    /// partition ids and locators come out in the same order however the
    /// clustering phase was scheduled.
    fn apply_reorganization(&mut self, chunk_key: i64, sc_index: usize, outcome: &S2TOutcome) {
        self.stats.reorganizations += 1;
        let old_partition = self.chunks[&chunk_key].subchunks[sc_index].outlier_partition;

        // 3. Rebuild the sub-chunk's outlier partition and add the promoted
        //    representatives with their member partitions.
        let new_outlier_partition = self.store.create_partition(PartitionKind::Outliers);
        let mut new_outliers: Vec<RecordLocator> = Vec::new();
        let mut new_entries: Vec<ClusterEntry> = Vec::new();
        let mut new_index_entries: Vec<(hermes_trajectory::Mbb, RecordLocator)> = Vec::new();

        for cluster in &outcome.result.clusters {
            let partition = self.store.create_partition(PartitionKind::Cluster);
            // The representative's raw data is archived like any member; its
            // in-memory copy in the entry is what new insertions match against.
            let rep_loc = self
                .store
                .append(partition, &cluster.representative)
                .expect("new cluster partition exists");
            new_index_entries.push((cluster.representative.mbb(), rep_loc));
            let mut members = Vec::with_capacity(cluster.members.len());
            for member in &cluster.members {
                let loc = self
                    .store
                    .append(partition, member)
                    .expect("new cluster partition exists");
                members.push(loc);
                new_index_entries.push((member.mbb(), loc));
            }
            self.stats.promoted_representatives += 1;
            new_entries.push(ClusterEntry {
                representative: cluster.representative.clone(),
                representative_vote: cluster.representative_vote,
                partition,
                representative_loc: Some(rep_loc),
                members,
            });
        }
        for outlier in &outcome.result.outliers {
            let loc = self
                .store
                .append(new_outlier_partition, outlier)
                .expect("new outlier partition exists");
            new_outliers.push(loc);
            new_index_entries.push((outlier.mbb(), loc));
        }

        // 4. Swap the rebuilt structures into the sub-chunk and rebuild its
        //    pg3D-Rtree (locators changed), keeping the members that were
        //    already clustered before this pass.
        let chunk = self.chunks.get_mut(&chunk_key).unwrap();
        let sc = &mut chunk.subchunks[sc_index];
        for entry in &sc.clusters {
            for loc in entry.representative_loc.iter().chain(entry.members.iter()) {
                if let Ok(Some(sub)) = self.store.read(*loc) {
                    new_index_entries.push((sub.mbb(), *loc));
                }
            }
        }
        sc.clusters.extend(new_entries);
        sc.outlier_partition = new_outlier_partition;
        sc.outliers = new_outliers;
        sc.index.rebuild(new_index_entries);

        // 5. Drop the old outlier partition.
        let _ = self.store.drop_partition(old_partition);
    }

    /// Loads a stored sub-trajectory by locator.
    pub fn load(&self, loc: RecordLocator) -> Option<SubTrajectory> {
        self.store.read(loc).ok().flatten()
    }

    /// Every stored sub-trajectory whose lifespan intersects `w`, loaded from
    /// storage through the sub-chunk indexes. This is the "temporal range
    /// query" building block used both by QuT (for border sub-chunks) and by
    /// the rebuild-from-scratch baseline of experiment E3.
    pub fn window_sub_trajectories(&self, w: &TimeInterval) -> Vec<SubTrajectory> {
        let mut out = Vec::new();
        for chunk in self.chunks.values() {
            if !chunk.interval.intersects(w) {
                continue;
            }
            for sc in &chunk.subchunks {
                if !sc.interval.intersects(w) {
                    continue;
                }
                for loc in sc.index.query_temporal(w) {
                    if let Ok(Some(sub)) = self.store.read(*loc) {
                        out.push(sub);
                    }
                }
            }
        }
        out
    }

    /// [`ReTraTree::window_sub_trajectories`] restricted to the sub-chunks
    /// *owned* by `owned` (interval start inside the half-open slice). Every
    /// stored piece lives in exactly one sub-chunk's index, so summing the
    /// result sizes over a partition of the time axis reproduces the
    /// single-node window count exactly — the shard-side building block of a
    /// distributed RANGE query.
    pub fn owned_window_sub_trajectories(
        &self,
        w: &TimeInterval,
        owned: &crate::qut::OwnedSlice,
    ) -> Vec<SubTrajectory> {
        let mut out = Vec::new();
        for chunk in self.chunks.values() {
            if !chunk.interval.intersects(w) {
                continue;
            }
            for sc in &chunk.subchunks {
                if !sc.interval.intersects(w) || !owned.contains(sc.interval.start) {
                    continue;
                }
                for loc in sc.index.query_temporal(w) {
                    if let Ok(Some(sub)) = self.store.read(*loc) {
                        out.push(sub);
                    }
                }
            }
        }
        out
    }

    /// Runs the S2T re-clustering pass on every sub-chunk that currently
    /// holds at least `min_outliers` unclustered pieces, regardless of the
    /// page threshold. This is how the ReTraTree of the DMKD paper is built
    /// over an existing dataset: each temporal partition gets its own
    /// clustering, which QuT later reuses. Returns the number of sub-chunks
    /// reorganized.
    pub fn reorganize_all(&mut self, min_outliers: usize) -> usize {
        self.reorganize_all_with(min_outliers, &Executor::serial())
    }

    /// [`ReTraTree::reorganize_all`] with the per-sub-chunk S2T runs fanned
    /// out on `exec`. Construction is two-phase: every target sub-chunk's
    /// outliers are clustered in parallel (reads only), then the results are
    /// installed sequentially in temporal order — so partition allocation,
    /// locators and maintenance counters are identical to the serial build.
    pub fn reorganize_all_with(&mut self, min_outliers: usize, exec: &Executor) -> usize {
        let targets: Vec<(i64, usize)> = self
            .chunks
            .iter()
            .flat_map(|(&key, chunk)| {
                chunk
                    .subchunks
                    .iter()
                    .enumerate()
                    .filter(|(_, sc)| sc.outliers.len() >= min_outliers.max(1))
                    .map(move |(i, _)| (key, i))
                    .collect::<Vec<_>>()
            })
            .collect();
        let outcomes = {
            let this: &ReTraTree = self;
            exec.map(&targets, |_, &(key, sc_index)| {
                this.cluster_subchunk_outliers(key, sc_index, exec)
            })
        };
        for (&(key, sc_index), outcome) in targets.iter().zip(&outcomes) {
            self.apply_reorganization(key, sc_index, outcome);
        }
        targets.len()
    }

    /// Builds a tree over an existing dataset: every trajectory is inserted,
    /// then each populated sub-chunk is clustered (the construction algorithm
    /// of the DMKD paper). Incremental maintenance continues from there.
    pub fn build_from(params: ReTraTreeParams, trajectories: &[Trajectory]) -> Self {
        Self::build_from_with(params, trajectories, &Executor::serial())
    }

    /// [`ReTraTree::build_from`] with the bulk clustering pass fanned out on
    /// `exec`. Insertion (temporal routing) stays sequential — it is cheap
    /// and order-sensitive; the expensive per-partition S2T runs parallelize.
    /// The resulting tree is identical to the serial build.
    pub fn build_from_with(
        params: ReTraTreeParams,
        trajectories: &[Trajectory],
        exec: &Executor,
    ) -> Self {
        let mut tree = ReTraTree::new(params);
        for t in trajectories {
            tree.insert_trajectory(t);
        }
        tree.reorganize_all_with(2, exec);
        tree
    }

    /// Returns `(chunk interval, sub-chunk interval, #clusters, population)`
    /// rows describing the tree, for the VA exports and the examples.
    pub fn describe(&self) -> Vec<(TimeInterval, TimeInterval, usize, usize)> {
        let mut rows = Vec::new();
        for chunk in self.chunks.values() {
            for sc in &chunk.subchunks {
                rows.push((
                    chunk.interval,
                    sc.interval,
                    sc.num_clusters(),
                    sc.population(),
                ));
            }
        }
        rows
    }

    /// The sub-chunk duration (exposed for window-alignment logic in QuT).
    pub fn subchunk_duration(&self) -> Duration {
        self.params.subchunk_duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_s2t::S2TParams;
    use hermes_trajectory::Point;

    fn params() -> ReTraTreeParams {
        ReTraTreeParams {
            chunk_duration: Duration::from_hours(4),
            subchunks_per_chunk: 4,
            reorg_page_threshold: 2,
            buffer_frames: 64,
            s2t: S2TParams {
                sigma: 60.0,
                epsilon: 300.0,
                min_duration_ms: 60_000,
                ..S2TParams::default()
            },
        }
    }

    /// A straight trajectory along x, offset by `y`, spanning `[t0, t0+dur]`.
    fn traj(id: u64, y: f64, t0: i64, dur_ms: i64) -> Trajectory {
        let n = 40usize;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as f64 * 100.0,
                    y,
                    Timestamp(t0 + dur_ms * i as i64 / (n as i64 - 1)),
                )
            })
            .collect();
        Trajectory::new(id, id, pts).unwrap()
    }

    #[test]
    fn trajectories_are_cut_at_subchunk_boundaries() {
        let mut tree = ReTraTree::new(params());
        // Spans two hours = two one-hour sub-chunks.
        tree.insert_trajectory(&traj(1, 0.0, 0, 2 * 3_600_000));
        assert_eq!(tree.num_chunks(), 1);
        let s = tree.stats();
        assert_eq!(s.inserted_trajectories, 1);
        assert!(
            s.inserted_pieces >= 2,
            "expected at least 2 pieces, got {}",
            s.inserted_pieces
        );
        assert_eq!(tree.total_population(), s.inserted_pieces);
    }

    #[test]
    fn chunks_are_created_per_period() {
        let mut tree = ReTraTree::new(params());
        tree.insert_trajectory(&traj(1, 0.0, 0, 3_600_000));
        tree.insert_trajectory(&traj(2, 0.0, 5 * 3_600_000, 3_600_000)); // next chunk
        assert_eq!(tree.num_chunks(), 2);
        let span = tree.lifespan().unwrap();
        assert_eq!(span.start, Timestamp(0));
        assert_eq!(span.end, Timestamp(8 * 3_600_000));
    }

    #[test]
    fn overgrown_outlier_partition_triggers_reorganization() {
        let mut tree = ReTraTree::new(params());
        // 30 co-moving trajectories in the same hour: they all land in the
        // same sub-chunk outlier partition first, overflow it, and the
        // re-clustering pass promotes a representative.
        for i in 0..30 {
            tree.insert_trajectory(&traj(i, i as f64 * 5.0, 0, 3_500_000));
        }
        let s = tree.stats();
        assert!(
            s.reorganizations >= 1,
            "expected at least one reorganization"
        );
        assert!(s.promoted_representatives >= 1);
        assert!(tree.total_clusters() >= 1);
        // Later, similar trajectories are assigned directly to the promoted
        // representative instead of being parked as outliers.
        let before = tree.stats().assigned_to_existing;
        tree.insert_trajectory(&traj(100, 50.0, 0, 3_500_000));
        assert!(tree.stats().assigned_to_existing > before);
    }

    #[test]
    fn window_query_returns_only_intersecting_pieces() {
        let mut tree = ReTraTree::new(params());
        tree.insert_trajectory(&traj(1, 0.0, 0, 3_600_000));
        tree.insert_trajectory(&traj(2, 0.0, 10 * 3_600_000, 3_600_000));
        let w = TimeInterval::new(Timestamp(0), Timestamp(2 * 3_600_000));
        let subs = tree.window_sub_trajectories(&w);
        assert!(!subs.is_empty());
        assert!(subs.iter().all(|s| s.trajectory_id == 1));
        let everything = tree.window_sub_trajectories(&TimeInterval::everything());
        assert_eq!(everything.len(), tree.total_population());
    }

    #[test]
    fn describe_lists_every_subchunk() {
        let mut tree = ReTraTree::new(params());
        tree.insert_trajectory(&traj(1, 0.0, 0, 3_600_000));
        let rows = tree.describe();
        assert_eq!(rows.len(), 4, "one chunk × 4 sub-chunks");
        let populated: usize = rows.iter().map(|r| r.3).sum();
        assert_eq!(populated, tree.total_population());
    }

    #[test]
    fn parallel_build_produces_an_identical_tree() {
        let data: Vec<Trajectory> = (0..40)
            .map(|i| traj(i, i as f64 * 5.0, (i as i64 % 3) * 3_600_000, 3_500_000))
            .collect();
        let serial = ReTraTree::build_from(params(), &data);
        let exec = Executor::new(hermes_exec::ExecPolicy { threads: 4 });
        let parallel = ReTraTree::build_from_with(params(), &data, &exec);
        assert_eq!(parallel.total_population(), serial.total_population());
        assert_eq!(parallel.total_clusters(), serial.total_clusters());
        assert_eq!(parallel.stats(), serial.stats());
        assert_eq!(parallel.describe(), serial.describe());
        // The level-3 entries line up one-to-one, representative by
        // representative, partition id by partition id.
        for (sp, pp) in serial.chunks().zip(parallel.chunks()) {
            for (ss, ps) in sp.subchunks.iter().zip(pp.subchunks.iter()) {
                assert_eq!(ss.num_clusters(), ps.num_clusters());
                for (a, b) in ss.clusters.iter().zip(ps.clusters.iter()) {
                    assert_eq!(a.representative.id, b.representative.id);
                    assert_eq!(a.partition, b.partition);
                    assert_eq!(a.members, b.members);
                }
                assert_eq!(ss.outliers, ps.outliers);
            }
        }
    }

    #[test]
    fn build_from_is_equivalent_to_sequential_insertion() {
        let data: Vec<Trajectory> = (0..10)
            .map(|i| traj(i, i as f64 * 10.0, 0, 3_500_000))
            .collect();
        let bulk = ReTraTree::build_from(params(), &data);
        let mut seq = ReTraTree::new(params());
        for t in &data {
            seq.insert_trajectory(t);
        }
        assert_eq!(bulk.total_population(), seq.total_population());
        assert_eq!(bulk.num_chunks(), seq.num_chunks());
    }
}
