//! Structure-of-arrays storage for the voting hot path.
//!
//! The voting phase dominates S2T query time, and its per-candidate work in
//! the object-graph formulation is pointer chasing: every R-tree hit
//! materializes a [`Segment`](hermes_trajectory::Segment) out of
//! `trajectories[ti].segment(si)` before any arithmetic happens. The
//! [`SegmentArena`] flattens the whole collection once — one pass storing
//! per-segment endpoint lanes (`x0/y0/x1/y1/t0/t1`), precomputed MBB lanes
//! and `(trajectory, segment)` back-references in parallel arrays — so the
//! voting inner loop streams cache-linear `f64`/`i64` lanes instead.
//!
//! The candidate index over the arena is a [`PackedRTree`]: STR-packed flat
//! node arrays queried with zero per-query allocation, with the Euclidean
//! ball test ([`PackedRTree::for_each_ball_candidate_idx`]) pruning corner
//! candidates a per-axis inflate would admit.
//!
//! Candidates that survive the index probe walk a **pruning ladder** of
//! distance lower bounds, cheapest first — the probe's free window-ball gap,
//! then the per-segment box gap — and only survivors are gathered into
//! [`BATCH`]-wide structure-of-arrays blocks for the SIMD batched kernel
//! ([`hermes_trajectory::kernel::mean_sync_distance_batch`]). (The sharper
//! clipped-lifespan bound [`segment_clipped_gap2`] is implemented and
//! property-tested but deliberately kept out of the ladder — measured a net
//! loss on the urban workload.) How many candidates each side of the ladder
//! saw is reported as [`KernelCounters`]; `docs/KERNELS.md` walks the whole
//! ladder.
//!
//! **Exactness contract.** [`arena_voting`] is bit-identical to
//! [`indexed_voting`](crate::voting::indexed_voting), to
//! [`naive_voting`](crate::voting::naive_voting), and to the retained PR 4
//! loop [`arena_voting_unpruned`]:
//!
//! * the distance kernel is [`hermes_trajectory::kernel::mean_sync_distance`]
//!   — the same function `Segment::mean_synchronized_distance` delegates to —
//!   or its batched SIMD form, which performs the same IEEE-754 operations in
//!   the same per-lane order and is gated bit-identical at every width;
//! * per-voter minima are order-independent (`min` is a lattice operation),
//!   which also covers deferring the fold to the gather-block flush;
//! * per-segment votes are summed in **ascending voter order** in every
//!   implementation, so traversal order cannot perturb the floating sum;
//! * every pruning stage only ever removes candidates whose exact distance
//!   provably cannot change the result: either it exceeds the kernel cutoff
//!   (kernel value exactly `0.0`, additively neutral) or it cannot strictly
//!   improve the voter's best-so-far minimum.
//!
//! One caveat to the pruning argument: it relies on the *computed* mean
//! distance dominating the *computed* box gap. That inequality is exact in
//! real arithmetic and holds through IEEE rounding for the aligned
//! (axis-parallel, gap-equals-distance) configurations trajectory data
//! produces — squaring and `sqrt(x·x)` are monotone under correct rounding
//! — but it is not formally proven for adversarial near-degenerate
//! coordinates where the true margin is below the kernel's few-ulp rounding
//! envelope. The bit-identity tests and the e1 correctness gate verify the
//! claim on every shipped dataset, which are deterministic; a counterexample
//! would fail them loudly rather than corrupt results silently.

use crate::params::S2TParams;
use crate::voting::{kernel, VotingProfile};
use hermes_exec::Executor;
use hermes_gist::{axis_gap, PackedRTree};
use hermes_trajectory::{
    kernel::{mean_sync_distance, mean_sync_distance_batch_at, simd_level, SimdLevel, BATCH},
    Mbb, SegLanes, Timestamp, Trajectory, TrajectoryId,
};

/// How many candidate pairs reached the exact distance kernel versus how
/// many a lower bound rejected first. Purely observational — the pruning
/// ladder never changes results (see the module docs) — but the ratio is the
/// direct measure of how much exact-kernel work the bounds are saving, so it
/// is threaded from the voting loop all the way to `SHOW STATS` and the
/// Prometheus registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Candidate pairs evaluated by the exact mean-sync-distance kernel.
    pub evaluated: u64,
    /// Candidate pairs rejected by a lower bound before the kernel.
    pub pruned: u64,
}

impl KernelCounters {
    /// Accumulates `other` into `self` (both fields are monotone sums).
    pub fn accumulate(&mut self, other: &KernelCounters) {
        self.evaluated += other.evaluated;
        self.pruned += other.pruned;
    }
}

/// Admissible lower bound on the mean synchronized distance between query
/// segment `q` and a candidate with lifespan `[ct0, ct1]` and spatial box
/// `cxy = [x_min, x_max, y_min, y_max]`: the Euclidean gap between the
/// candidate's box and the box of the **query clipped to the common
/// lifespan**, squared. `None` when the lifespans are disjoint.
///
/// Why it lower-bounds the kernel: every instant the kernel samples lies in
/// the common lifespan, where the query position interpolates between
/// `q(common_start)` and `q(common_end)` — correctly-rounded lerp is monotone
/// in the interpolation factor, so the computed positions stay inside the box
/// of those two computed endpoints. The candidate's sampled positions stay
/// inside its own endpoint box by the same argument. Each sampled distance
/// therefore is at least the box-to-box gap, and so is their Simpson mean.
/// The clipped box is never larger than the query's full-lifespan MBB, so
/// this bound is at least as tight as the per-segment box gap that runs
/// before it in the ladder. Like every computed-vs-computed bound here it
/// carries the few-ulp rounding envelope discussed in the module docs; the
/// bit-identity gates verify it never fires wrongly on shipped data.
#[inline]
fn clipped_gap2_parts(q: &SegLanes, ct0: i64, ct1: i64, cxy: &[f64; 4]) -> Option<f64> {
    let cs = if q.t0 >= ct0 { q.t0 } else { ct0 };
    let ce = if q.t1 <= ct1 { q.t1 } else { ct1 };
    if cs > ce {
        return None;
    }
    let (ax, ay) = q.position_at(cs);
    let (bx, by) = q.position_at(ce);
    // Branchless endpoint sort: min/max of two non-NaN values is the value
    // the branchy compare-and-swap would pick, bit for bit.
    let (qx_min, qx_max) = (ax.min(bx), ax.max(bx));
    let (qy_min, qy_max) = (ay.min(by), ay.max(by));
    let gx = axis_gap(cxy[0], cxy[1], qx_min, qx_max);
    let gy = axis_gap(cxy[2], cxy[3], qy_min, qy_max);
    Some(gx * gx + gy * gy)
}

/// The clipped-lifespan gap over plain kernel lanes — the form the admissibility
/// property tests exercise. Returns the squared lower bound, or `None` when
/// the lifespans are disjoint (where the kernel returns `None` too).
pub fn segment_clipped_gap2(q: &SegLanes, c: &SegLanes) -> Option<f64> {
    let cxy = [
        c.x0.min(c.x1),
        c.x0.max(c.x1),
        c.y0.min(c.y1),
        c.y0.max(c.y1),
    ];
    clipped_gap2_parts(q, c.t0, c.t1, &cxy)
}

/// Flat, cache-linear storage of every segment of a trajectory collection.
pub struct SegmentArena {
    // Endpoint lanes.
    x0: Vec<f64>,
    y0: Vec<f64>,
    x1: Vec<f64>,
    y1: Vec<f64>,
    t0: Vec<i64>,
    t1: Vec<i64>,
    // Precomputed spatial MBB lanes (the temporal bounds are `t0`/`t1`:
    // segment time is strictly increasing).
    mbb_x_min: Vec<f64>,
    mbb_x_max: Vec<f64>,
    mbb_y_min: Vec<f64>,
    mbb_y_max: Vec<f64>,
    /// Back-reference: owning trajectory index per segment.
    traj_of: Vec<u32>,
    /// Back-reference: local segment index within the owning trajectory.
    seg_of: Vec<u32>,
    /// Prefix offsets: trajectory `ti` owns global segments
    /// `seg_start[ti]..seg_start[ti + 1]`.
    seg_start: Vec<usize>,
    /// Trajectory ids, indexed by trajectory index.
    traj_ids: Vec<TrajectoryId>,
}

impl SegmentArena {
    /// Flattens `trajectories` into the arena in one pass.
    pub fn build(trajectories: &[Trajectory]) -> Self {
        let total: usize = trajectories.iter().map(|t| t.num_segments()).sum();
        let mut arena = SegmentArena {
            x0: Vec::with_capacity(total),
            y0: Vec::with_capacity(total),
            x1: Vec::with_capacity(total),
            y1: Vec::with_capacity(total),
            t0: Vec::with_capacity(total),
            t1: Vec::with_capacity(total),
            mbb_x_min: Vec::with_capacity(total),
            mbb_x_max: Vec::with_capacity(total),
            mbb_y_min: Vec::with_capacity(total),
            mbb_y_max: Vec::with_capacity(total),
            traj_of: Vec::with_capacity(total),
            seg_of: Vec::with_capacity(total),
            seg_start: Vec::with_capacity(trajectories.len() + 1),
            traj_ids: Vec::with_capacity(trajectories.len()),
        };
        for (ti, traj) in trajectories.iter().enumerate() {
            arena.seg_start.push(arena.x0.len());
            arena.traj_ids.push(traj.id);
            let pts = traj.points();
            for si in 0..traj.num_segments() {
                let a = &pts[si];
                let b = &pts[si + 1];
                arena.x0.push(a.x);
                arena.y0.push(a.y);
                arena.x1.push(b.x);
                arena.y1.push(b.y);
                arena.t0.push(a.t.millis());
                arena.t1.push(b.t.millis());
                arena.mbb_x_min.push(a.x.min(b.x));
                arena.mbb_x_max.push(a.x.max(b.x));
                arena.mbb_y_min.push(a.y.min(b.y));
                arena.mbb_y_max.push(a.y.max(b.y));
                arena.traj_of.push(ti as u32);
                arena.seg_of.push(si as u32);
            }
        }
        arena.seg_start.push(arena.x0.len());
        arena
    }

    /// Number of trajectories flattened into the arena.
    pub fn num_trajectories(&self) -> usize {
        self.traj_ids.len()
    }

    /// Total number of segments across every trajectory.
    pub fn num_segments(&self) -> usize {
        self.x0.len()
    }

    /// The global segment range owned by trajectory `ti`.
    pub fn segments_of(&self, ti: usize) -> std::ops::Range<usize> {
        self.seg_start[ti]..self.seg_start[ti + 1]
    }

    /// The id of trajectory `ti`.
    pub fn trajectory_id(&self, ti: usize) -> TrajectoryId {
        self.traj_ids[ti]
    }

    /// The owning trajectory index of global segment `gs`.
    #[inline]
    pub fn trajectory_of(&self, gs: usize) -> usize {
        self.traj_of[gs] as usize
    }

    /// The local segment index of global segment `gs` within its trajectory.
    #[inline]
    pub fn segment_of(&self, gs: usize) -> usize {
        self.seg_of[gs] as usize
    }

    /// Global segment `gs` as flat kernel lanes.
    #[inline]
    pub fn lanes(&self, gs: usize) -> SegLanes {
        SegLanes {
            x0: self.x0[gs],
            y0: self.y0[gs],
            x1: self.x1[gs],
            y1: self.y1[gs],
            t0: self.t0[gs],
            t1: self.t1[gs],
        }
    }

    /// The precomputed MBB of global segment `gs`.
    #[inline]
    pub fn segment_mbb(&self, gs: usize) -> Mbb {
        Mbb::new(
            self.mbb_x_min[gs],
            self.mbb_x_max[gs],
            self.mbb_y_min[gs],
            self.mbb_y_max[gs],
            Timestamp(self.t0[gs]),
            Timestamp(self.t1[gs]),
        )
    }
}

/// The packed candidate index over a [`SegmentArena`]: a [`PackedRTree`]
/// whose values are global segment ids, plus the candidate data the voting
/// loop needs — kernel lanes, spatial bounds and voter index — **permuted
/// into the tree's item order**. STR tiles put spatially/temporally close
/// segments at adjacent item indices, so the hot loop's candidate reads are
/// memory-local instead of chasing back into trajectory order.
/// Everything the voting loop reads about one indexed segment, packed into
/// a single row so the hot loop does one bounds-checked load per candidate
/// instead of chasing a second parallel array: the filter half first
/// (temporal bounds — checked first — then the spatial MBB block and owning
/// trajectory), the kernel endpoint lanes after (read only by candidates
/// that survive every filter).
#[derive(Clone, Copy)]
struct CandidateRow {
    t0: i64,
    t1: i64,
    xy: [f64; 4],
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    voter: u32,
}

impl CandidateRow {
    /// The row's endpoints as kernel lanes.
    #[inline]
    fn lanes(&self) -> SegLanes {
        SegLanes {
            x0: self.x0,
            y0: self.y0,
            x1: self.x1,
            y1: self.y1,
            t0: self.t0,
            t1: self.t1,
        }
    }
}

pub struct PackedSegmentIndex {
    tree: PackedRTree<u32>,
    /// Candidate rows per tree item (tree item order).
    item_rows: Vec<CandidateRow>,
}

impl PackedSegmentIndex {
    /// STR bulk load over every segment MBB of the arena.
    pub fn build(arena: &SegmentArena) -> Self {
        let items: Vec<(Mbb, u32)> = (0..arena.num_segments())
            .map(|gs| (arena.segment_mbb(gs), gs as u32))
            .collect();
        let tree = PackedRTree::bulk_load(items);
        let n = tree.len();
        let mut index = PackedSegmentIndex {
            item_rows: Vec::with_capacity(n),
            tree,
        };
        for i in 0..n {
            let gs = *index.tree.value(i) as usize;
            index.item_rows.push(CandidateRow {
                t0: arena.t0[gs],
                t1: arena.t1[gs],
                xy: [
                    arena.mbb_x_min[gs],
                    arena.mbb_x_max[gs],
                    arena.mbb_y_min[gs],
                    arena.mbb_y_max[gs],
                ],
                x0: arena.x0[gs],
                y0: arena.y0[gs],
                x1: arena.x1[gs],
                y1: arena.y1[gs],
                voter: arena.traj_of[gs],
            });
        }
        index
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no segment is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The underlying packed tree (for structural inspection).
    pub fn tree(&self) -> &PackedRTree<u32> {
        &self.tree
    }
}

/// Consecutive segments of one trajectory batched into a single index
/// probe. Neighbouring segments share most of their candidate
/// neighbourhood, so one descent with the run's union window serves the
/// whole run; candidates are then partitioned into per-segment lists in one
/// pass (segments of a run tile time contiguously, so each candidate lands
/// in a contiguous sub-range of the run) and only the overlapping pairs pay
/// the spatial filter and kernel.
const QUERY_RUN: usize = 4;

/// Survivor gather block feeding the batched SIMD kernel: fixed
/// [`BATCH`]-wide structure-of-arrays lanes filled by plain array stores (no
/// capacity checks in the hot loop). The block flushes whenever it fills and
/// once more at segment fold time, so the per-voter minima are refreshed
/// every [`BATCH`] survivors — keeping the ladder's best-so-far bounds tight
/// enough to keep firing — while the kernel still amortizes its per-call
/// setup over full blocks.
struct GatherBlock {
    x0: [f64; BATCH],
    y0: [f64; BATCH],
    x1: [f64; BATCH],
    y1: [f64; BATCH],
    t0: [i64; BATCH],
    t1: [i64; BATCH],
    voter: [u32; BATCH],
    d: [f64; BATCH],
    len: usize,
    /// Kernel dispatch level, resolved once per scratch (not per flush) so
    /// the hot loop never touches the `HERMES_SIMD` `OnceLock`.
    level: SimdLevel,
}

impl Default for GatherBlock {
    fn default() -> Self {
        GatherBlock {
            x0: [0.0; BATCH],
            y0: [0.0; BATCH],
            x1: [0.0; BATCH],
            y1: [0.0; BATCH],
            t0: [0; BATCH],
            t1: [0; BATCH],
            voter: [0; BATCH],
            d: [0.0; BATCH],
            len: 0,
            level: simd_level(),
        }
    }
}

impl GatherBlock {
    /// True when the block just filled and must be flushed before the next
    /// push.
    #[inline]
    fn push(&mut self, lanes: &SegLanes, voter: u32) -> bool {
        let j = self.len;
        self.x0[j] = lanes.x0;
        self.y0[j] = lanes.y0;
        self.x1[j] = lanes.x1;
        self.y1[j] = lanes.y1;
        self.t0[j] = lanes.t0;
        self.t1[j] = lanes.t1;
        self.voter[j] = voter;
        self.len = j + 1;
        self.len == BATCH
    }

    /// Evaluates the gathered candidates against query `seg` through the
    /// batched kernel and folds the distances into the per-voter minima, in
    /// gather order. Deferring the fold to the flush cannot change results:
    /// `min` over a fixed candidate set is order-independent, and a stale
    /// best-so-far only makes the *pruning* stages admit more candidates —
    /// whose distances then lose the `d < best` comparison exactly because
    /// the bound that would have pruned them lower-bounds `d`.
    ///
    /// Distances beyond `cutoff` are not folded at all. This is invisible in
    /// the votes, bit for bit: the Gaussian kernel hard-cuts `d > cutoff` to
    /// exactly `0.0`, and `x + 0.0 == x` for every finite IEEE-754 `x`, so a
    /// voter whose every distance exceeds the cutoff contributes the same
    /// nothing whether or not it enters the sum. It is also invisible to the
    /// pruning ladder: a best-so-far above the cutoff satisfies
    /// `best² > r²`, and stage 2 already rejects `gap² > r²` first, so such
    /// a best never rejects anything the radius test doesn't. What it buys:
    /// shorter `touched` lists — fewer entries to sort canonically and fewer
    /// guaranteed-zero [`kernel`](crate::voting) calls in the vote fold.
    /// (The ∞ disjoint-lifespan sentinel is skipped by the same comparison.)
    fn flush(
        &mut self,
        seg: &SegLanes,
        cutoff: f64,
        best_per_voter: &mut [f64],
        touched: &mut Vec<usize>,
    ) {
        let n = self.len;
        if n == 0 {
            return;
        }
        mean_sync_distance_batch_at(
            self.level,
            seg,
            &self.x0[..n],
            &self.y0[..n],
            &self.x1[..n],
            &self.y1[..n],
            &self.t0[..n],
            &self.t1[..n],
            &mut self.d[..n],
        );
        for j in 0..n {
            let d = self.d[j];
            if d > cutoff {
                continue;
            }
            let voter = self.voter[j] as usize;
            let best = best_per_voter[voter];
            if d < best {
                if best.is_infinite() {
                    touched.push(voter);
                }
                best_per_voter[voter] = d;
            }
        }
        self.len = 0;
    }
}

/// Reusable per-worker scratch for [`vote_trajectory_into`]. Between calls
/// every best-distance entry is `f64::INFINITY` and the lists are empty, so
/// a pre-sized scratch makes the voting inner loop allocation-free.
pub struct ArenaVoteScratch {
    /// Best (minimum) kernel distance per voter, one array per run slot:
    /// the fused probe accumulates all `QUERY_RUN` segments of a run in a
    /// single traversal, and slot k's minima must never observe another
    /// slot's folds (each segment's per-voter min is independent state).
    /// Invariant between runs: every entry is `f64::INFINITY` — each vote
    /// fold resets exactly the entries it touched.
    best: [Vec<f64>; QUERY_RUN],
    /// Per-run-slot list of voters holding a finite best.
    touched: [Vec<usize>; QUERY_RUN],
    /// Per-run-slot survivor gather block feeding the batched kernel.
    blocks: [GatherBlock; QUERY_RUN],
}

impl Default for ArenaVoteScratch {
    fn default() -> Self {
        ArenaVoteScratch {
            best: std::array::from_fn(|_| Vec::new()),
            touched: std::array::from_fn(|_| Vec::new()),
            blocks: std::array::from_fn(|_| GatherBlock::default()),
        }
    }
}

impl ArenaVoteScratch {
    /// A scratch pre-sized for `arena`: every slot's best/touched arrays
    /// cover every trajectory, so voting over this arena never reallocates
    /// the scratch. Use this constructor where the zero-allocation
    /// *guarantee* matters (the counting-allocator test, latency-critical
    /// embedders); the thread-local scratch behind [`arena_voting`] instead
    /// starts empty and grows to the observed working set, which is also
    /// allocation-free once warm.
    pub fn for_arena(arena: &SegmentArena) -> Self {
        ArenaVoteScratch {
            best: std::array::from_fn(|_| vec![f64::INFINITY; arena.num_trajectories()]),
            touched: std::array::from_fn(|_| Vec::with_capacity(arena.num_trajectories())),
            blocks: std::array::from_fn(|_| GatherBlock::default()),
        }
    }

    fn ensure(&mut self, num_trajectories: usize) {
        for b in self.best.iter_mut() {
            if b.len() < num_trajectories {
                b.resize(num_trajectories, f64::INFINITY);
            }
        }
    }
}

/// Computes the votes of trajectory `ti` into `votes` (cleared first) and
/// returns the pruned-vs-evaluated kernel counters for this trajectory. With
/// a scratch pre-sized via [`ArenaVoteScratch::for_arena`] and a `votes`
/// buffer whose capacity covers the trajectory's segment count, this
/// performs **zero heap allocations** — the property the counting-allocator
/// test in `crates/s2t/tests` pins down.
///
/// One traversal does everything: the probe descends once per `QUERY_RUN`
/// consecutive query segments with the run's union window, and the pruning
/// ladder runs **inside the emission callback**, on the candidate row the
/// partition just loaded — no intermediate candidate lists, no second pass
/// re-reading rows. Per (candidate, slot) pair, cheapest bound first; each
/// stage lower-bounds the exact mean synchronized distance, so a reject
/// provably cannot change the per-voter min or the vote (module docs):
///
/// 1. the probe's free squared **window-ball gap** vs the voter's best²
///    (the window contains every slot's box, so its gap lower-bounds each
///    slot's),
/// 2. the per-segment **box gap** vs the cutoff ball (beyond it the kernel
///    value is exactly 0.0) and the voter's best²,
/// 3. survivors are gathered into the slot's [`BATCH`]-wide block for the
///    SIMD kernel; a full block flushes immediately so the fold refreshes
///    the slot's minima and the best² rejects stay sharp.
///
/// Folding at flush granularity cannot change results: `min` over a fixed
/// candidate set is order-independent, and a stale best-so-far only makes
/// the pruning stages admit more candidates — whose distances then lose the
/// `d < best` comparison exactly because the bound that would have pruned
/// them lower-bounds `d`. (The clipped-lifespan bound
/// [`segment_clipped_gap2`] is deliberately *not* in this ladder: its two
/// divisions cost more than the few kernel evaluations it saves — measured
/// a net loss on the urban workload — and the temporal partition already
/// guarantees overlapping lifespans, so its disjoint branch cannot fire.)
pub fn vote_trajectory_into(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    cutoff: f64,
    ti: usize,
    scratch: &mut ArenaVoteScratch,
    votes: &mut Vec<f64>,
) -> KernelCounters {
    scratch.ensure(arena.num_trajectories());
    votes.clear();
    let ArenaVoteScratch {
        best,
        touched,
        blocks,
    } = scratch;
    let mut counters = KernelCounters::default();
    let r2 = cutoff * cutoff;
    let range = arena.segments_of(ti);
    let mut run_start = range.start;
    while run_start < range.end {
        let run_end = (run_start + QUERY_RUN).min(range.end);
        let run_len = run_end - run_start;
        // Hoisted per-slot geometry: kernel lanes and MBB bounds (tail runs
        // repeat the last segment in the unused slots; `run_len` guards
        // every access).
        let segs: [SegLanes; QUERY_RUN] =
            std::array::from_fn(|k| arena.lanes(run_start + k.min(run_len - 1)));
        let sxy: [[f64; 4]; QUERY_RUN] = std::array::from_fn(|k| {
            let gs = run_start + k.min(run_len - 1);
            [
                arena.mbb_x_min[gs],
                arena.mbb_x_max[gs],
                arena.mbb_y_min[gs],
                arena.mbb_y_max[gs],
            ]
        });
        // Union window over the run (times are increasing within a
        // trajectory, so the temporal union is first-start..last-end).
        let mut wx0 = f64::INFINITY;
        let mut wx1 = f64::NEG_INFINITY;
        let mut wy0 = f64::INFINITY;
        let mut wy1 = f64::NEG_INFINITY;
        for xy in sxy[..run_len].iter() {
            wx0 = wx0.min(xy[0]);
            wx1 = wx1.max(xy[1]);
            wy0 = wy0.min(xy[2]);
            wy1 = wy1.max(xy[3]);
        }
        let window = Mbb::new(
            wx0,
            wx1,
            wy0,
            wy1,
            Timestamp(arena.t0[run_start]),
            Timestamp(arena.t1[run_end - 1]),
        );
        index
            .tree
            .for_each_ball_candidate_idx(&window, cutoff, |item, window_gap2| {
                let row = &index.item_rows[item];
                let voter = row.voter as usize;
                if voter == ti {
                    return;
                }
                // The slots a candidate temporally overlaps form a
                // contiguous range of the run (segments of a run tile time
                // contiguously): two short forward scans find it.
                let mut k = 0usize;
                while k < run_len && arena.t1[run_start + k] < row.t0 {
                    k += 1;
                }
                while k < run_len && arena.t0[run_start + k] <= row.t1 {
                    let best_k = &mut best[k];
                    let b = best_k[voter];
                    let b2 = b * b;
                    // Stage 1: window-ball gap vs best². (`d < best` is
                    // strict, so equality skips safely; an untouched voter
                    // has best = ∞, never skipped.)
                    if window_gap2 >= b2 {
                        counters.pruned += 1;
                        k += 1;
                        continue;
                    }
                    // Stage 2: this slot's box gap vs the cutoff ball and
                    // best².
                    let xy = &sxy[k];
                    let gx = axis_gap(row.xy[0], row.xy[1], xy[0], xy[1]);
                    let gy = axis_gap(row.xy[2], row.xy[3], xy[2], xy[3]);
                    let gap2 = gx * gx + gy * gy;
                    if gap2 > r2 || gap2 >= b2 {
                        counters.pruned += 1;
                        k += 1;
                        continue;
                    }
                    // Survivor: gather into the slot's block.
                    counters.evaluated += 1;
                    if blocks[k].push(&row.lanes(), row.voter) {
                        blocks[k].flush(&segs[k], cutoff, best_k, &mut touched[k]);
                    }
                    k += 1;
                }
            });
        // Per-slot epilogue, in segment order: final flush, then the vote.
        for k in 0..run_len {
            blocks[k].flush(&segs[k], cutoff, &mut best[k], &mut touched[k]);
            let touched_k = &mut touched[k];
            let best_k = &mut best[k];
            // Canonical summation order (ascending voter index): the
            // floating sum must not depend on index traversal order.
            // `sort_unstable` on primitives is in-place — no allocation.
            touched_k.sort_unstable();
            let mut vote = 0.0;
            for &voter in touched_k.iter() {
                vote += kernel(best_k[voter], params.sigma, cutoff);
                best_k[voter] = f64::INFINITY;
            }
            touched_k.clear();
            votes.push(vote);
        }
        run_start = run_end;
    }
    counters
}

/// The PR 4 arena voting loop, reconstructed faithfully from its shipped
/// code: the frozen branchy-gap scalar tree traversal
/// ([`PackedRTree::for_each_ball_candidate_idx_frozen`]), per-segment
/// `Vec<u32>` candidate lists (no window-gap threading), PR 4's three-case
/// `axis_gap` in the per-candidate box filter, and an immediate scalar
/// kernel fold per survivor — none of this PR's traversal, layout, or
/// pruning work. Serial.
///
/// This is the measured baseline behind `BENCH_e1`'s "arena-pr4" series and
/// one more equality reference: bit-identical to [`arena_voting`] (both are
/// proven equal to the naive path), just slower. The single immaterial
/// departure from PR 4's text: candidate lanes are read through the
/// merged candidate row (PR 4 kept them in a separate parallel array the index
/// no longer carries); the lanes themselves are the same ten `f64`s.
pub fn arena_voting_unpruned(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
) -> Vec<VotingProfile> {
    // PR 4's `axis_gap`, verbatim (the shared one is branchless now).
    #[inline]
    fn gap(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
        if a_max < b_min {
            b_min - a_max
        } else if b_max < a_min {
            a_min - b_max
        } else {
            0.0
        }
    }
    // PR 4's run length, pinned locally: the modern path's `QUERY_RUN` is a
    // tuning knob and must not retune the frozen baseline.
    const QUERY_RUN: usize = 8;
    let cutoff = params.voting_cutoff_radius();
    let r2 = cutoff * cutoff;
    let mut best_per_voter = vec![f64::INFINITY; arena.num_trajectories()];
    let mut touched: Vec<usize> = Vec::with_capacity(arena.num_trajectories());
    let mut seg_candidates: [Vec<u32>; QUERY_RUN] = std::array::from_fn(|_| Vec::new());
    (0..arena.num_trajectories())
        .map(|ti| {
            let mut votes = Vec::with_capacity(arena.segments_of(ti).len());
            let range = arena.segments_of(ti);
            let mut run_start = range.start;
            while run_start < range.end {
                let run_end = (run_start + QUERY_RUN).min(range.end);
                let run_len = run_end - run_start;
                let mut wx0 = f64::INFINITY;
                let mut wx1 = f64::NEG_INFINITY;
                let mut wy0 = f64::INFINITY;
                let mut wy1 = f64::NEG_INFINITY;
                for gs in run_start..run_end {
                    wx0 = wx0.min(arena.mbb_x_min[gs]);
                    wx1 = wx1.max(arena.mbb_x_max[gs]);
                    wy0 = wy0.min(arena.mbb_y_min[gs]);
                    wy1 = wy1.max(arena.mbb_y_max[gs]);
                }
                let window = Mbb::new(
                    wx0,
                    wx1,
                    wy0,
                    wy1,
                    Timestamp(arena.t0[run_start]),
                    Timestamp(arena.t1[run_end - 1]),
                );
                for list in seg_candidates[..run_len].iter_mut() {
                    list.clear();
                }
                index
                    .tree
                    .for_each_ball_candidate_idx_frozen(&window, cutoff, |item, _gap2| {
                        let row = &index.item_rows[item];
                        if row.voter as usize == ti {
                            return;
                        }
                        let mut k = 0usize;
                        while k < run_len && arena.t1[run_start + k] < row.t0 {
                            k += 1;
                        }
                        while k < run_len && arena.t0[run_start + k] <= row.t1 {
                            seg_candidates[k].push(item as u32);
                            k += 1;
                        }
                    });
                for gs in run_start..run_end {
                    let seg = arena.lanes(gs);
                    let sx0 = arena.mbb_x_min[gs];
                    let sx1 = arena.mbb_x_max[gs];
                    let sy0 = arena.mbb_y_min[gs];
                    let sy1 = arena.mbb_y_max[gs];
                    for &item_u in seg_candidates[gs - run_start].iter() {
                        let item = item_u as usize;
                        let row = &index.item_rows[item];
                        let voter = row.voter as usize;
                        let gx = gap(row.xy[0], row.xy[1], sx0, sx1);
                        let gy = gap(row.xy[2], row.xy[3], sy0, sy1);
                        let gap2 = gx * gx + gy * gy;
                        if gap2 > r2 {
                            continue;
                        }
                        let best = best_per_voter[voter];
                        if gap2 >= best * best {
                            continue;
                        }
                        if let Some(d) = mean_sync_distance(&seg, &row.lanes()) {
                            if d < best {
                                if best.is_infinite() {
                                    touched.push(voter);
                                }
                                best_per_voter[voter] = d;
                            }
                        }
                    }
                    touched.sort_unstable();
                    let mut vote = 0.0;
                    for &voter in touched.iter() {
                        vote += kernel(best_per_voter[voter], params.sigma, cutoff);
                        best_per_voter[voter] = f64::INFINITY;
                    }
                    touched.clear();
                    votes.push(vote);
                }
                run_start = run_end;
            }
            VotingProfile {
                trajectory_id: arena.trajectory_id(ti),
                trajectory_index: ti,
                votes,
            }
        })
        .collect()
}

thread_local! {
    /// Per-worker arena-voting scratch, reused across trajectories. The
    /// invariant (all-∞ between uses) is restored by `vote_trajectory_into`
    /// itself; the guard below covers the unwind path.
    static ARENA_SCRATCH: std::cell::RefCell<ArenaVoteScratch> =
        std::cell::RefCell::new(ArenaVoteScratch::default());
}

/// Restores the scratch invariant if voting unwinds mid-segment (the exec
/// pool keeps worker threads alive across panics, so a half-reset scratch
/// would corrupt later queries on that thread).
struct ScratchGuard<'a> {
    scratch: &'a mut ArenaVoteScratch,
    completed: bool,
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            for b in self.scratch.best.iter_mut() {
                b.fill(f64::INFINITY);
            }
            for t in self.scratch.touched.iter_mut() {
                t.clear();
            }
            for block in self.scratch.blocks.iter_mut() {
                block.len = 0;
            }
        }
    }
}

fn vote_trajectory_arena(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    cutoff: f64,
    ti: usize,
) -> (VotingProfile, KernelCounters) {
    ARENA_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let mut guard = ScratchGuard {
            scratch: &mut scratch,
            completed: false,
        };
        let mut votes = Vec::with_capacity(arena.segments_of(ti).len());
        let counters =
            vote_trajectory_into(arena, index, params, cutoff, ti, guard.scratch, &mut votes);
        guard.completed = true;
        (
            VotingProfile {
                trajectory_id: arena.trajectory_id(ti),
                trajectory_index: ti,
                votes,
            },
            counters,
        )
    })
}

/// Index-accelerated voting over the flat arena — the S2T hot path. Serial
/// shorthand for [`arena_voting_with`].
pub fn arena_voting(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
) -> Vec<VotingProfile> {
    arena_voting_with(arena, index, params, &Executor::serial())
}

/// [`arena_voting`] fanned out over trajectories on `exec`. Profiles come
/// back in input order and every vote is computed by exactly one task, so
/// the result is bit-identical to the serial path — and to the object-graph
/// [`indexed_voting`](crate::voting::indexed_voting) and
/// [`naive_voting`](crate::voting::naive_voting) (see the module docs for
/// why).
pub fn arena_voting_with(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    exec: &Executor,
) -> Vec<VotingProfile> {
    arena_voting_counted_with(arena, index, params, exec).0
}

/// [`arena_voting_with`] plus the summed pruned-vs-evaluated kernel
/// counters. Counter totals are deterministic: pruning decisions depend only
/// on the per-trajectory scan, never on thread interleaving.
pub fn arena_voting_counted_with(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    exec: &Executor,
) -> (Vec<VotingProfile>, KernelCounters) {
    let cutoff = params.voting_cutoff_radius();
    let per_traj = exec.map_indices(arena.num_trajectories(), |ti| {
        vote_trajectory_arena(arena, index, params, cutoff, ti)
    });
    let mut totals = KernelCounters::default();
    let mut profiles = Vec::with_capacity(per_traj.len());
    for (profile, counters) in per_traj {
        totals.accumulate(&counters);
        profiles.push(profile);
    }
    (profiles, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::{indexed_voting, naive_voting, SegmentIndex};
    use hermes_trajectory::Point;

    fn line(id: u64, y0: f64, t0: i64, n: usize) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, y0, Timestamp(t0 + i as i64 * 10_000)))
                .collect(),
        )
        .unwrap()
    }

    fn params(sigma: f64) -> S2TParams {
        S2TParams {
            sigma,
            ..S2TParams::default()
        }
    }

    fn mixed_mod() -> Vec<Trajectory> {
        let mut trajs = Vec::new();
        for i in 0..4 {
            trajs.push(line(i, i as f64 * 8.0, 0, 12));
        }
        for i in 4..7 {
            trajs.push(line(i, 500.0 + i as f64 * 8.0, 30_000, 12));
        }
        trajs.push(line(7, 10_000.0, 0, 12));
        trajs
    }

    #[test]
    fn arena_flattens_the_collection_faithfully() {
        let trajs = mixed_mod();
        let arena = SegmentArena::build(&trajs);
        assert_eq!(arena.num_trajectories(), trajs.len());
        assert_eq!(arena.num_segments(), 8 * 11);
        for (ti, traj) in trajs.iter().enumerate() {
            let range = arena.segments_of(ti);
            assert_eq!(range.len(), traj.num_segments());
            assert_eq!(arena.trajectory_id(ti), traj.id);
            for (si, gs) in range.enumerate() {
                assert_eq!(arena.trajectory_of(gs), ti);
                assert_eq!(arena.segment_of(gs), si);
                let seg = traj.segment(si);
                assert_eq!(arena.lanes(gs), seg.lanes());
                assert_eq!(arena.segment_mbb(gs), seg.mbb());
            }
        }
    }

    #[test]
    fn arena_voting_is_bit_identical_to_indexed_and_naive() {
        let trajs = mixed_mod();
        let p = params(25.0);
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        assert_eq!(packed.len(), arena.num_segments());

        let via_arena = arena_voting(&arena, &packed, &p);
        let legacy_index = SegmentIndex::build(&trajs);
        let via_rtree = indexed_voting(&trajs, &legacy_index, &p);
        let via_naive = naive_voting(&trajs, &p);
        let via_unpruned = arena_voting_unpruned(&arena, &packed, &p);
        // Exact, not approximate: all four paths share the kernel and the
        // canonical summation order.
        assert_eq!(via_arena, via_rtree);
        assert_eq!(via_arena, via_naive);
        assert_eq!(via_arena, via_unpruned);
    }

    #[test]
    fn kernel_counters_account_for_every_candidate() {
        let trajs = mixed_mod();
        let p = params(25.0);
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let (profiles, counters) =
            arena_voting_counted_with(&arena, &packed, &p, &Executor::serial());
        assert_eq!(profiles, arena_voting(&arena, &packed, &p));
        // The clustered lines vote for each other, so the exact kernel must
        // have run; the far-away outlier line guarantees pruned candidates.
        assert!(counters.evaluated > 0, "{counters:?}");
        assert!(counters.pruned > 0, "{counters:?}");
        // Counter totals are deterministic and thread-independent.
        for threads in [2usize, 4] {
            let exec = Executor::new(hermes_exec::ExecPolicy { threads });
            let (_, parallel) = arena_voting_counted_with(&arena, &packed, &p, &exec);
            assert_eq!(parallel, counters);
        }
    }

    #[test]
    fn clipped_gap_lower_bounds_the_kernel() {
        // Seeded sweep: whenever both are defined, the clipped-query box gap
        // must never exceed the exact distance (squared), or pruning on it
        // could change results.
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rand_seg = {
            let mut f = move || (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0;
            move |t_base: i64, span: i64| SegLanes {
                x0: f(),
                y0: f(),
                x1: f(),
                y1: f(),
                t0: t_base,
                t1: t_base + span,
            }
        };
        let mut checked = 0usize;
        for i in 0..2_000 {
            let a = rand_seg((i % 17) * 500, if i % 7 == 0 { 0 } else { 4_000 });
            let b = rand_seg((i % 23) * 400, if i % 11 == 0 { 0 } else { 3_500 });
            match (segment_clipped_gap2(&a, &b), mean_sync_distance(&a, &b)) {
                (Some(lb2), Some(d)) => {
                    // Compare as distances, with the few-ulp envelope the
                    // module docs grant every computed-vs-computed bound
                    // (when the overlap is one instant the bound is *equal*
                    // to the distance and only rounding separates them).
                    assert!(
                        lb2.sqrt() <= d * (1.0 + 1e-12) + 1e-12,
                        "bound {} exceeds exact {d}: {a:?} vs {b:?}",
                        lb2.sqrt()
                    );
                    checked += 1;
                }
                (None, None) => {}
                (lb, d) => panic!("bound/kernel disagree on lifespan overlap: {lb:?} vs {d:?}"),
            }
        }
        assert!(checked > 500, "sweep mostly disjoint: {checked}");
    }

    #[test]
    fn parallel_arena_voting_matches_serial_exactly() {
        let trajs: Vec<Trajectory> = (0..12).map(|i| line(i, i as f64 * 6.0, 0, 10)).collect();
        let p = params(25.0);
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let serial = arena_voting(&arena, &packed, &p);
        for threads in [2usize, 4, 8] {
            let exec = Executor::new(hermes_exec::ExecPolicy { threads });
            assert_eq!(arena_voting_with(&arena, &packed, &p, &exec), serial);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let p = params(10.0);
        let arena = SegmentArena::build(&[]);
        let packed = PackedSegmentIndex::build(&arena);
        assert!(packed.is_empty());
        assert!(arena_voting(&arena, &packed, &p).is_empty());

        let single = vec![line(0, 0.0, 0, 5)];
        let arena = SegmentArena::build(&single);
        let packed = PackedSegmentIndex::build(&arena);
        let profiles = arena_voting(&arena, &packed, &p);
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].votes.iter().all(|&v| v == 0.0));
        assert_eq!(profiles, naive_voting(&single, &p));
    }

    #[test]
    fn scratch_reuse_keeps_results_stable() {
        let trajs = mixed_mod();
        let p = params(25.0);
        let cutoff = p.voting_cutoff_radius();
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let mut scratch = ArenaVoteScratch::for_arena(&arena);
        let mut votes = Vec::with_capacity(16);
        let reference = arena_voting(&arena, &packed, &p);
        // Voting the same trajectories repeatedly through one scratch must
        // reproduce the reference bit for bit (the all-∞ invariant holds).
        for _round in 0..3 {
            for (ti, expected) in reference.iter().enumerate() {
                vote_trajectory_into(&arena, &packed, &p, cutoff, ti, &mut scratch, &mut votes);
                assert_eq!(votes, expected.votes, "trajectory {ti}");
            }
        }
    }
}
