//! Structure-of-arrays storage for the voting hot path.
//!
//! The voting phase dominates S2T query time, and its per-candidate work in
//! the object-graph formulation is pointer chasing: every R-tree hit
//! materializes a [`Segment`](hermes_trajectory::Segment) out of
//! `trajectories[ti].segment(si)` before any arithmetic happens. The
//! [`SegmentArena`] flattens the whole collection once — one pass storing
//! per-segment endpoint lanes (`x0/y0/x1/y1/t0/t1`), precomputed MBB lanes
//! and `(trajectory, segment)` back-references in parallel arrays — so the
//! voting inner loop streams cache-linear `f64`/`i64` lanes instead.
//!
//! The candidate index over the arena is a [`PackedRTree`]: STR-packed flat
//! node arrays queried with zero per-query allocation, with the Euclidean
//! ball test ([`PackedRTree::for_each_ball_candidate_idx`]) pruning corner
//! candidates a per-axis inflate would admit.
//!
//! **Exactness contract.** [`arena_voting`] is bit-identical to
//! [`indexed_voting`](crate::voting::indexed_voting) and to
//! [`naive_voting`](crate::voting::naive_voting):
//!
//! * the distance kernel is [`hermes_trajectory::kernel::mean_sync_distance`],
//!   the same function `Segment::mean_synchronized_distance` delegates to;
//! * per-voter minima are order-independent (`min` is a lattice operation);
//! * per-segment votes are summed in **ascending voter order** in every
//!   implementation, so traversal order cannot perturb the floating sum;
//! * the extra ball pruning only ever removes candidates whose distance
//!   exceeds the kernel cutoff — their kernel value is exactly `0.0`, which
//!   is additively neutral for the non-negative vote accumulator.
//!
//! One caveat to the pruning argument: it relies on the *computed* mean
//! distance dominating the *computed* box gap. That inequality is exact in
//! real arithmetic and holds through IEEE rounding for the aligned
//! (axis-parallel, gap-equals-distance) configurations trajectory data
//! produces — squaring and `sqrt(x·x)` are monotone under correct rounding
//! — but it is not formally proven for adversarial near-degenerate
//! coordinates where the true margin is below the kernel's few-ulp rounding
//! envelope. The bit-identity tests and the e1 correctness gate verify the
//! claim on every shipped dataset, which are deterministic; a counterexample
//! would fail them loudly rather than corrupt results silently.

use crate::params::S2TParams;
use crate::voting::{kernel, VotingProfile};
use hermes_exec::Executor;
use hermes_gist::{axis_gap, PackedRTree};
use hermes_trajectory::{
    kernel::mean_sync_distance, Mbb, SegLanes, Timestamp, Trajectory, TrajectoryId,
};

/// Flat, cache-linear storage of every segment of a trajectory collection.
pub struct SegmentArena {
    // Endpoint lanes.
    x0: Vec<f64>,
    y0: Vec<f64>,
    x1: Vec<f64>,
    y1: Vec<f64>,
    t0: Vec<i64>,
    t1: Vec<i64>,
    // Precomputed spatial MBB lanes (the temporal bounds are `t0`/`t1`:
    // segment time is strictly increasing).
    mbb_x_min: Vec<f64>,
    mbb_x_max: Vec<f64>,
    mbb_y_min: Vec<f64>,
    mbb_y_max: Vec<f64>,
    /// Back-reference: owning trajectory index per segment.
    traj_of: Vec<u32>,
    /// Back-reference: local segment index within the owning trajectory.
    seg_of: Vec<u32>,
    /// Prefix offsets: trajectory `ti` owns global segments
    /// `seg_start[ti]..seg_start[ti + 1]`.
    seg_start: Vec<usize>,
    /// Trajectory ids, indexed by trajectory index.
    traj_ids: Vec<TrajectoryId>,
}

impl SegmentArena {
    /// Flattens `trajectories` into the arena in one pass.
    pub fn build(trajectories: &[Trajectory]) -> Self {
        let total: usize = trajectories.iter().map(|t| t.num_segments()).sum();
        let mut arena = SegmentArena {
            x0: Vec::with_capacity(total),
            y0: Vec::with_capacity(total),
            x1: Vec::with_capacity(total),
            y1: Vec::with_capacity(total),
            t0: Vec::with_capacity(total),
            t1: Vec::with_capacity(total),
            mbb_x_min: Vec::with_capacity(total),
            mbb_x_max: Vec::with_capacity(total),
            mbb_y_min: Vec::with_capacity(total),
            mbb_y_max: Vec::with_capacity(total),
            traj_of: Vec::with_capacity(total),
            seg_of: Vec::with_capacity(total),
            seg_start: Vec::with_capacity(trajectories.len() + 1),
            traj_ids: Vec::with_capacity(trajectories.len()),
        };
        for (ti, traj) in trajectories.iter().enumerate() {
            arena.seg_start.push(arena.x0.len());
            arena.traj_ids.push(traj.id);
            let pts = traj.points();
            for si in 0..traj.num_segments() {
                let a = &pts[si];
                let b = &pts[si + 1];
                arena.x0.push(a.x);
                arena.y0.push(a.y);
                arena.x1.push(b.x);
                arena.y1.push(b.y);
                arena.t0.push(a.t.millis());
                arena.t1.push(b.t.millis());
                arena.mbb_x_min.push(a.x.min(b.x));
                arena.mbb_x_max.push(a.x.max(b.x));
                arena.mbb_y_min.push(a.y.min(b.y));
                arena.mbb_y_max.push(a.y.max(b.y));
                arena.traj_of.push(ti as u32);
                arena.seg_of.push(si as u32);
            }
        }
        arena.seg_start.push(arena.x0.len());
        arena
    }

    /// Number of trajectories flattened into the arena.
    pub fn num_trajectories(&self) -> usize {
        self.traj_ids.len()
    }

    /// Total number of segments across every trajectory.
    pub fn num_segments(&self) -> usize {
        self.x0.len()
    }

    /// The global segment range owned by trajectory `ti`.
    pub fn segments_of(&self, ti: usize) -> std::ops::Range<usize> {
        self.seg_start[ti]..self.seg_start[ti + 1]
    }

    /// The id of trajectory `ti`.
    pub fn trajectory_id(&self, ti: usize) -> TrajectoryId {
        self.traj_ids[ti]
    }

    /// The owning trajectory index of global segment `gs`.
    #[inline]
    pub fn trajectory_of(&self, gs: usize) -> usize {
        self.traj_of[gs] as usize
    }

    /// The local segment index of global segment `gs` within its trajectory.
    #[inline]
    pub fn segment_of(&self, gs: usize) -> usize {
        self.seg_of[gs] as usize
    }

    /// Global segment `gs` as flat kernel lanes.
    #[inline]
    pub fn lanes(&self, gs: usize) -> SegLanes {
        SegLanes {
            x0: self.x0[gs],
            y0: self.y0[gs],
            x1: self.x1[gs],
            y1: self.y1[gs],
            t0: self.t0[gs],
            t1: self.t1[gs],
        }
    }

    /// The precomputed MBB of global segment `gs`.
    #[inline]
    pub fn segment_mbb(&self, gs: usize) -> Mbb {
        Mbb::new(
            self.mbb_x_min[gs],
            self.mbb_x_max[gs],
            self.mbb_y_min[gs],
            self.mbb_y_max[gs],
            Timestamp(self.t0[gs]),
            Timestamp(self.t1[gs]),
        )
    }
}

/// The packed candidate index over a [`SegmentArena`]: a [`PackedRTree`]
/// whose values are global segment ids, plus the candidate data the voting
/// loop needs — kernel lanes, spatial bounds and voter index — **permuted
/// into the tree's item order**. STR tiles put spatially/temporally close
/// segments at adjacent item indices, so the hot loop's candidate reads are
/// memory-local instead of chasing back into trajectory order.
/// Everything the candidate filter reads about one indexed segment, packed
/// into a single 56-byte row so the scan does one bounds-checked load and
/// touches one cache line per candidate: temporal bounds (checked first),
/// spatial MBB block, owning trajectory.
#[derive(Clone, Copy)]
struct CandidateRow {
    t0: i64,
    t1: i64,
    xy: [f64; 4],
    voter: u32,
}

pub struct PackedSegmentIndex {
    tree: PackedRTree<u32>,
    /// Kernel lanes per tree item (tree item order); read only by the
    /// candidates that survive every filter.
    item_lanes: Vec<SegLanes>,
    /// Filter rows per tree item (tree item order).
    item_rows: Vec<CandidateRow>,
}

impl PackedSegmentIndex {
    /// STR bulk load over every segment MBB of the arena.
    pub fn build(arena: &SegmentArena) -> Self {
        let items: Vec<(Mbb, u32)> = (0..arena.num_segments())
            .map(|gs| (arena.segment_mbb(gs), gs as u32))
            .collect();
        let tree = PackedRTree::bulk_load(items);
        let n = tree.len();
        let mut index = PackedSegmentIndex {
            item_lanes: Vec::with_capacity(n),
            item_rows: Vec::with_capacity(n),
            tree,
        };
        for i in 0..n {
            let gs = *index.tree.value(i) as usize;
            index.item_lanes.push(arena.lanes(gs));
            index.item_rows.push(CandidateRow {
                t0: arena.t0[gs],
                t1: arena.t1[gs],
                xy: [
                    arena.mbb_x_min[gs],
                    arena.mbb_x_max[gs],
                    arena.mbb_y_min[gs],
                    arena.mbb_y_max[gs],
                ],
                voter: arena.traj_of[gs],
            });
        }
        index
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no segment is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The underlying packed tree (for structural inspection).
    pub fn tree(&self) -> &PackedRTree<u32> {
        &self.tree
    }
}

/// Consecutive segments of one trajectory batched into a single index
/// probe. Neighbouring segments share most of their candidate
/// neighbourhood, so one descent with the run's union window serves the
/// whole run; candidates are then partitioned into per-segment lists in one
/// pass (segments of a run tile time contiguously, so each candidate lands
/// in a contiguous sub-range of the run) and only the overlapping pairs pay
/// the spatial filter and kernel.
const QUERY_RUN: usize = 8;

/// Reusable per-worker scratch for [`vote_trajectory_into`]. Between calls
/// every `best_per_voter` entry is `f64::INFINITY` and the lists are empty,
/// so a pre-sized scratch makes the voting inner loop allocation-free.
pub struct ArenaVoteScratch {
    best_per_voter: Vec<f64>,
    touched: Vec<usize>,
    /// Per-run-slot candidate lists filled by the partition pass.
    seg_candidates: [Vec<u32>; QUERY_RUN],
}

impl Default for ArenaVoteScratch {
    fn default() -> Self {
        ArenaVoteScratch {
            best_per_voter: Vec::new(),
            touched: Vec::new(),
            seg_candidates: std::array::from_fn(|_| Vec::new()),
        }
    }
}

impl ArenaVoteScratch {
    /// A scratch pre-sized for `arena`: `best_per_voter`/`touched` cover
    /// every trajectory and each candidate list covers every segment (the
    /// hard upper bound of one probe), so voting over this arena never
    /// reallocates the scratch.
    ///
    /// The hard bound is deliberately pessimistic — `QUERY_RUN` lists of
    /// `num_segments` `u32`s (32 bytes per indexed segment), real probes
    /// fill a tiny fraction of it. Use this constructor where the
    /// zero-allocation *guarantee* matters (the counting-allocator test,
    /// latency-critical embedders); the thread-local scratch behind
    /// [`arena_voting`] instead starts empty and grows to the observed
    /// working set, which is also allocation-free once warm.
    pub fn for_arena(arena: &SegmentArena) -> Self {
        ArenaVoteScratch {
            best_per_voter: vec![f64::INFINITY; arena.num_trajectories()],
            touched: Vec::with_capacity(arena.num_trajectories()),
            seg_candidates: std::array::from_fn(|_| Vec::with_capacity(arena.num_segments())),
        }
    }

    fn ensure(&mut self, num_trajectories: usize) {
        if self.best_per_voter.len() < num_trajectories {
            self.best_per_voter.resize(num_trajectories, f64::INFINITY);
        }
    }
}

/// Computes the votes of trajectory `ti` into `votes` (cleared first). With
/// a scratch pre-sized via [`ArenaVoteScratch::for_arena`] and a `votes`
/// buffer whose capacity covers the trajectory's segment count, this
/// performs **zero heap allocations** — the property the counting-allocator
/// test in `crates/s2t/tests` pins down.
pub fn vote_trajectory_into(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    cutoff: f64,
    ti: usize,
    scratch: &mut ArenaVoteScratch,
    votes: &mut Vec<f64>,
) {
    scratch.ensure(arena.num_trajectories());
    votes.clear();
    let ArenaVoteScratch {
        best_per_voter,
        touched,
        seg_candidates,
    } = scratch;
    let r2 = cutoff * cutoff;
    let range = arena.segments_of(ti);
    let mut run_start = range.start;
    while run_start < range.end {
        let run_end = (run_start + QUERY_RUN).min(range.end);
        let run_len = run_end - run_start;

        // One index probe for the whole run: the union window over the
        // run's precomputed MBB lanes (times are increasing within a
        // trajectory, so the temporal union is first-start..last-end).
        let mut wx0 = f64::INFINITY;
        let mut wx1 = f64::NEG_INFINITY;
        let mut wy0 = f64::INFINITY;
        let mut wy1 = f64::NEG_INFINITY;
        for gs in run_start..run_end {
            wx0 = wx0.min(arena.mbb_x_min[gs]);
            wx1 = wx1.max(arena.mbb_x_max[gs]);
            wy0 = wy0.min(arena.mbb_y_min[gs]);
            wy1 = wy1.max(arena.mbb_y_max[gs]);
        }
        let window = Mbb::new(
            wx0,
            wx1,
            wy0,
            wy1,
            Timestamp(arena.t0[run_start]),
            Timestamp(arena.t1[run_end - 1]),
        );
        for list in seg_candidates[..run_len].iter_mut() {
            list.clear();
        }
        // Partition pass: drop self-candidates, then place each candidate
        // in the per-segment lists of exactly the run slots it temporally
        // overlaps. The run's segments tile `[t0[run_start], t1[run_end-1]]`
        // contiguously in ascending time, so that slot set is a contiguous
        // range found with two short forward scans.
        index
            .tree
            .for_each_ball_candidate_idx(&window, cutoff, |item, _gap2| {
                let row = &index.item_rows[item];
                if row.voter as usize == ti {
                    return;
                }
                let mut k = 0usize;
                while k < run_len && arena.t1[run_start + k] < row.t0 {
                    k += 1;
                }
                while k < run_len && arena.t0[run_start + k] <= row.t1 {
                    seg_candidates[k].push(item as u32);
                    k += 1;
                }
            });

        // Per-segment pass over its own (temporally matched) candidates.
        // The remaining filter is the per-segment ball test (Euclidean box
        // gap ≤ cutoff): everything the run window admits beyond it has
        // kernel value exactly 0.0 and is rejected before interpolation.
        for gs in run_start..run_end {
            let seg = arena.lanes(gs);
            let sx0 = arena.mbb_x_min[gs];
            let sx1 = arena.mbb_x_max[gs];
            let sy0 = arena.mbb_y_min[gs];
            let sy1 = arena.mbb_y_max[gs];
            for &item_u in seg_candidates[gs - run_start].iter() {
                let item = item_u as usize;
                let row = &index.item_rows[item];
                let voter = row.voter as usize;
                let gx = axis_gap(row.xy[0], row.xy[1], sx0, sx1);
                let gy = axis_gap(row.xy[2], row.xy[3], sy0, sy1);
                let gap2 = gx * gx + gy * gy;
                if gap2 > r2 {
                    continue;
                }
                // The spatial box gap lower-bounds the mean synchronized
                // distance, so a candidate whose gap already reaches the
                // voter's current best cannot strictly improve the min —
                // skip the kernel. (`d < best` is strict, so equality skips
                // safely; an untouched voter has best = ∞, never skipped.)
                let best = best_per_voter[voter];
                if gap2 >= best * best {
                    continue;
                }
                if let Some(d) = mean_sync_distance(&seg, &index.item_lanes[item]) {
                    if d < best {
                        if best.is_infinite() {
                            touched.push(voter);
                        }
                        best_per_voter[voter] = d;
                    }
                }
            }
            // Canonical summation order (ascending voter index): the
            // floating sum must not depend on index traversal order.
            // `sort_unstable` on primitives is in-place — no allocation.
            touched.sort_unstable();
            let mut vote = 0.0;
            for &voter in touched.iter() {
                vote += kernel(best_per_voter[voter], params.sigma, cutoff);
                best_per_voter[voter] = f64::INFINITY;
            }
            touched.clear();
            votes.push(vote);
        }
        run_start = run_end;
    }
}

thread_local! {
    /// Per-worker arena-voting scratch, reused across trajectories. The
    /// invariant (all-∞ between uses) is restored by `vote_trajectory_into`
    /// itself; the guard below covers the unwind path.
    static ARENA_SCRATCH: std::cell::RefCell<ArenaVoteScratch> =
        std::cell::RefCell::new(ArenaVoteScratch::default());
}

/// Restores the scratch invariant if voting unwinds mid-segment (the exec
/// pool keeps worker threads alive across panics, so a half-reset scratch
/// would corrupt later queries on that thread).
struct ScratchGuard<'a> {
    scratch: &'a mut ArenaVoteScratch,
    completed: bool,
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.scratch.best_per_voter.fill(f64::INFINITY);
            self.scratch.touched.clear();
            for list in self.scratch.seg_candidates.iter_mut() {
                list.clear();
            }
        }
    }
}

fn vote_trajectory_arena(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    cutoff: f64,
    ti: usize,
) -> VotingProfile {
    ARENA_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let mut guard = ScratchGuard {
            scratch: &mut scratch,
            completed: false,
        };
        let mut votes = Vec::with_capacity(arena.segments_of(ti).len());
        vote_trajectory_into(arena, index, params, cutoff, ti, guard.scratch, &mut votes);
        guard.completed = true;
        VotingProfile {
            trajectory_id: arena.trajectory_id(ti),
            trajectory_index: ti,
            votes,
        }
    })
}

/// Index-accelerated voting over the flat arena — the S2T hot path. Serial
/// shorthand for [`arena_voting_with`].
pub fn arena_voting(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
) -> Vec<VotingProfile> {
    arena_voting_with(arena, index, params, &Executor::serial())
}

/// [`arena_voting`] fanned out over trajectories on `exec`. Profiles come
/// back in input order and every vote is computed by exactly one task, so
/// the result is bit-identical to the serial path — and to the object-graph
/// [`indexed_voting`](crate::voting::indexed_voting) and
/// [`naive_voting`](crate::voting::naive_voting) (see the module docs for
/// why).
pub fn arena_voting_with(
    arena: &SegmentArena,
    index: &PackedSegmentIndex,
    params: &S2TParams,
    exec: &Executor,
) -> Vec<VotingProfile> {
    let cutoff = params.voting_cutoff_radius();
    exec.map_indices(arena.num_trajectories(), |ti| {
        vote_trajectory_arena(arena, index, params, cutoff, ti)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting::{indexed_voting, naive_voting, SegmentIndex};
    use hermes_trajectory::Point;

    fn line(id: u64, y0: f64, t0: i64, n: usize) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, y0, Timestamp(t0 + i as i64 * 10_000)))
                .collect(),
        )
        .unwrap()
    }

    fn params(sigma: f64) -> S2TParams {
        S2TParams {
            sigma,
            ..S2TParams::default()
        }
    }

    fn mixed_mod() -> Vec<Trajectory> {
        let mut trajs = Vec::new();
        for i in 0..4 {
            trajs.push(line(i, i as f64 * 8.0, 0, 12));
        }
        for i in 4..7 {
            trajs.push(line(i, 500.0 + i as f64 * 8.0, 30_000, 12));
        }
        trajs.push(line(7, 10_000.0, 0, 12));
        trajs
    }

    #[test]
    fn arena_flattens_the_collection_faithfully() {
        let trajs = mixed_mod();
        let arena = SegmentArena::build(&trajs);
        assert_eq!(arena.num_trajectories(), trajs.len());
        assert_eq!(arena.num_segments(), 8 * 11);
        for (ti, traj) in trajs.iter().enumerate() {
            let range = arena.segments_of(ti);
            assert_eq!(range.len(), traj.num_segments());
            assert_eq!(arena.trajectory_id(ti), traj.id);
            for (si, gs) in range.enumerate() {
                assert_eq!(arena.trajectory_of(gs), ti);
                assert_eq!(arena.segment_of(gs), si);
                let seg = traj.segment(si);
                assert_eq!(arena.lanes(gs), seg.lanes());
                assert_eq!(arena.segment_mbb(gs), seg.mbb());
            }
        }
    }

    #[test]
    fn arena_voting_is_bit_identical_to_indexed_and_naive() {
        let trajs = mixed_mod();
        let p = params(25.0);
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        assert_eq!(packed.len(), arena.num_segments());

        let via_arena = arena_voting(&arena, &packed, &p);
        let legacy_index = SegmentIndex::build(&trajs);
        let via_rtree = indexed_voting(&trajs, &legacy_index, &p);
        let via_naive = naive_voting(&trajs, &p);
        // Exact, not approximate: all three paths share the kernel and the
        // canonical summation order.
        assert_eq!(via_arena, via_rtree);
        assert_eq!(via_arena, via_naive);
    }

    #[test]
    fn parallel_arena_voting_matches_serial_exactly() {
        let trajs: Vec<Trajectory> = (0..12).map(|i| line(i, i as f64 * 6.0, 0, 10)).collect();
        let p = params(25.0);
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let serial = arena_voting(&arena, &packed, &p);
        for threads in [2usize, 4, 8] {
            let exec = Executor::new(hermes_exec::ExecPolicy { threads });
            assert_eq!(arena_voting_with(&arena, &packed, &p, &exec), serial);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let p = params(10.0);
        let arena = SegmentArena::build(&[]);
        let packed = PackedSegmentIndex::build(&arena);
        assert!(packed.is_empty());
        assert!(arena_voting(&arena, &packed, &p).is_empty());

        let single = vec![line(0, 0.0, 0, 5)];
        let arena = SegmentArena::build(&single);
        let packed = PackedSegmentIndex::build(&arena);
        let profiles = arena_voting(&arena, &packed, &p);
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].votes.iter().all(|&v| v == 0.0));
        assert_eq!(profiles, naive_voting(&single, &p));
    }

    #[test]
    fn scratch_reuse_keeps_results_stable() {
        let trajs = mixed_mod();
        let p = params(25.0);
        let cutoff = p.voting_cutoff_radius();
        let arena = SegmentArena::build(&trajs);
        let packed = PackedSegmentIndex::build(&arena);
        let mut scratch = ArenaVoteScratch::for_arena(&arena);
        let mut votes = Vec::with_capacity(16);
        let reference = arena_voting(&arena, &packed, &p);
        // Voting the same trajectories repeatedly through one scratch must
        // reproduce the reference bit for bit (the all-∞ invariant holds).
        for _round in 0..3 {
            for (ti, expected) in reference.iter().enumerate() {
                vote_trajectory_into(&arena, &packed, &p, cutoff, ti, &mut scratch, &mut votes);
                assert_eq!(votes, expected.votes, "trajectory {ti}");
            }
        }
    }
}
