//! The clustering and outlier-detection step of SaCO.
//!
//! "Each sub-trajectory in the sampling set is considered to be a cluster
//! representative. … Then, the clustering is done building the clusters
//! 'around' those representatives." (ICDE 2018, §II.A) Every non-seed
//! sub-trajectory joins the closest representative if their spatio-temporal
//! distance is within `ε`; otherwise it is reported as an outlier.

use crate::params::S2TParams;
use crate::segmentation::VotedSubTrajectory;
use hermes_exec::Executor;
use hermes_trajectory::{spatiotemporal_distance, SubTrajectory, TimeInterval};

/// Identifier of a cluster within one clustering result.
pub type ClusterId = usize;

/// A cluster: one representative plus the members grouped around it.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Identifier of the cluster (its index in the result).
    pub id: ClusterId,
    /// The representative (seed) sub-trajectory.
    pub representative: SubTrajectory,
    /// Mean vote of the representative, kept for reporting.
    pub representative_vote: f64,
    /// The members assigned to this representative (the representative
    /// itself is not repeated here).
    pub members: Vec<SubTrajectory>,
    /// Distance of each member to the representative (same order as
    /// `members`).
    pub member_distances: Vec<f64>,
}

impl Cluster {
    /// Number of sub-trajectories in the cluster, counting the representative.
    pub fn size(&self) -> usize {
        self.members.len() + 1
    }

    /// Mean member-to-representative distance (0 for a singleton cluster).
    pub fn mean_distance(&self) -> f64 {
        if self.member_distances.is_empty() {
            0.0
        } else {
            self.member_distances.iter().sum::<f64>() / self.member_distances.len() as f64
        }
    }

    /// Temporal extent covered by the cluster (union of member lifespans).
    pub fn lifespan(&self) -> TimeInterval {
        let mut span = self.representative.lifespan();
        for m in &self.members {
            span = span.union(&m.lifespan());
        }
        span
    }
}

/// The outcome of a (sub-)trajectory clustering run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusteringResult {
    /// The discovered clusters.
    pub clusters: Vec<Cluster>,
    /// Sub-trajectories that fit no cluster.
    pub outliers: Vec<SubTrajectory>,
}

impl ClusteringResult {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of outliers.
    pub fn num_outliers(&self) -> usize {
        self.outliers.len()
    }

    /// Total number of sub-trajectories covered (clustered + outliers).
    pub fn total_sub_trajectories(&self) -> usize {
        self.clusters.iter().map(|c| c.size()).sum::<usize>() + self.outliers.len()
    }

    /// Fraction of sub-trajectories that ended up in a cluster.
    pub fn coverage(&self) -> f64 {
        let total = self.total_sub_trajectories();
        if total == 0 {
            0.0
        } else {
            1.0 - self.outliers.len() as f64 / total as f64
        }
    }

    /// Restricts the result to clusters and outliers that temporally
    /// intersect `w` (used by QuT when assembling a window answer).
    pub fn restrict_to_window(&self, w: &TimeInterval) -> ClusteringResult {
        let clusters = self
            .clusters
            .iter()
            .filter(|c| c.lifespan().intersects(w))
            .cloned()
            .enumerate()
            .map(|(i, mut c)| {
                c.id = i;
                c
            })
            .collect();
        let outliers = self
            .outliers
            .iter()
            .filter(|o| o.lifespan().intersects(w))
            .cloned()
            .collect();
        ClusteringResult { clusters, outliers }
    }
}

/// How one sub-trajectory relates to the representatives: it is one itself,
/// joins the closest one, or fits none.
enum Assignment {
    Seed,
    Member(usize, f64),
    Outlier,
}

/// Groups `subs` around the representatives at `representative_indices`
/// (produced by [`crate::sampling::select_representatives`]).
pub fn cluster_around_representatives(
    subs: &[VotedSubTrajectory],
    representative_indices: &[usize],
    params: &S2TParams,
) -> ClusteringResult {
    cluster_around_representatives_with(subs, representative_indices, params, &Executor::serial())
}

/// [`cluster_around_representatives`] with the per-sub-trajectory
/// nearest-representative searches fanned out on `exec`. Assignments are
/// applied in input order, so member lists and outliers come out exactly as
/// in the serial pass.
pub fn cluster_around_representatives_with(
    subs: &[VotedSubTrajectory],
    representative_indices: &[usize],
    params: &S2TParams,
    exec: &Executor,
) -> ClusteringResult {
    let mut clusters: Vec<Cluster> = representative_indices
        .iter()
        .enumerate()
        .map(|(ci, &ri)| Cluster {
            id: ci,
            representative: subs[ri].sub.clone(),
            representative_vote: subs[ri].mean_vote,
            members: Vec::new(),
            member_distances: Vec::new(),
        })
        .collect();
    let mut outliers = Vec::new();

    let assignments = exec.map(subs, |i, s| {
        if representative_indices.contains(&i) {
            return Assignment::Seed;
        }
        let mut best: Option<(usize, f64)> = None;
        for (ci, c) in clusters.iter().enumerate() {
            let d = spatiotemporal_distance(&s.sub, &c.representative);
            if d.is_finite() && d <= params.epsilon && best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((ci, d));
            }
        }
        match best {
            Some((ci, d)) => Assignment::Member(ci, d),
            None => Assignment::Outlier,
        }
    });

    for (i, assignment) in assignments.into_iter().enumerate() {
        match assignment {
            Assignment::Seed => {}
            Assignment::Member(ci, d) => {
                clusters[ci].members.push(subs[i].sub.clone());
                clusters[ci].member_distances.push(d);
            }
            Assignment::Outlier => outliers.push(subs[i].sub.clone()),
        }
    }

    ClusteringResult { clusters, outliers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, SubTrajectoryId, Timestamp};

    fn voted(id: u64, y: f64, t0: i64, mean_vote: f64) -> VotedSubTrajectory {
        let sub = SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..10)
                .map(|i| Point::new(i as f64 * 10.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        );
        VotedSubTrajectory {
            sub,
            mean_vote,
            max_vote: mean_vote,
        }
    }

    fn params(epsilon: f64) -> S2TParams {
        S2TParams {
            epsilon,
            ..S2TParams::default()
        }
    }

    #[test]
    fn members_join_the_closest_representative() {
        let subs = vec![
            voted(0, 0.0, 0, 5.0),      // representative A
            voted(1, 500.0, 0, 5.0),    // representative B
            voted(2, 10.0, 0, 1.0),     // near A
            voted(3, 490.0, 0, 1.0),    // near B
            voted(4, 10_000.0, 0, 0.5), // outlier
        ];
        let result = cluster_around_representatives(&subs, &[0, 1], &params(100.0));
        assert_eq!(result.num_clusters(), 2);
        assert_eq!(result.clusters[0].members.len(), 1);
        assert_eq!(result.clusters[0].members[0].trajectory_id, 2);
        assert_eq!(result.clusters[1].members[0].trajectory_id, 3);
        assert_eq!(result.num_outliers(), 1);
        assert_eq!(result.outliers[0].trajectory_id, 4);
        assert_eq!(result.total_sub_trajectories(), 5);
        assert!((result.coverage() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn epsilon_bounds_cluster_membership() {
        let subs = vec![voted(0, 0.0, 0, 5.0), voted(1, 80.0, 0, 1.0)];
        let tight = cluster_around_representatives(&subs, &[0], &params(50.0));
        assert_eq!(tight.num_outliers(), 1);
        let loose = cluster_around_representatives(&subs, &[0], &params(100.0));
        assert_eq!(loose.num_outliers(), 0);
    }

    #[test]
    fn temporally_disjoint_members_are_outliers() {
        let subs = vec![voted(0, 0.0, 0, 5.0), voted(1, 0.0, 86_400_000, 1.0)];
        let result = cluster_around_representatives(&subs, &[0], &params(1_000.0));
        assert_eq!(result.num_outliers(), 1);
    }

    #[test]
    fn cluster_statistics() {
        let subs = vec![
            voted(0, 0.0, 0, 5.0),
            voted(1, 10.0, 0, 1.0),
            voted(2, 20.0, 0, 1.0),
        ];
        let result = cluster_around_representatives(&subs, &[0], &params(100.0));
        let c = &result.clusters[0];
        assert_eq!(c.size(), 3);
        assert!(c.mean_distance() > 0.0);
        assert_eq!(c.lifespan(), subs[0].sub.lifespan());
        // Singleton cluster edge case.
        let singleton = cluster_around_representatives(&subs[..1], &[0], &params(100.0));
        assert_eq!(singleton.clusters[0].mean_distance(), 0.0);
        assert_eq!(singleton.clusters[0].size(), 1);
    }

    #[test]
    fn restrict_to_window_drops_non_intersecting_clusters() {
        let subs = vec![
            voted(0, 0.0, 0, 5.0),
            voted(1, 10.0, 0, 1.0),
            voted(2, 0.0, 86_400_000, 5.0),
            voted(3, 10.0, 86_400_000, 1.0),
        ];
        let result = cluster_around_representatives(&subs, &[0, 2], &params(100.0));
        assert_eq!(result.num_clusters(), 2);
        let morning =
            result.restrict_to_window(&TimeInterval::new(Timestamp(0), Timestamp(3_600_000)));
        assert_eq!(morning.num_clusters(), 1);
        assert_eq!(morning.clusters[0].id, 0);
        assert_eq!(morning.clusters[0].representative.trajectory_id, 0);
    }

    #[test]
    fn empty_inputs_produce_empty_results() {
        let result = cluster_around_representatives(&[], &[], &params(100.0));
        assert_eq!(result.num_clusters(), 0);
        assert_eq!(result.num_outliers(), 0);
        assert_eq!(result.coverage(), 0.0);
    }
}
