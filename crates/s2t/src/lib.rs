//! # hermes-s2t
//!
//! **S2T-Clustering** — Sampling-based Sub-Trajectory Clustering — the first
//! of the two clustering modules of the Hermes@PostgreSQL demo (ICDE 2018),
//! following the algorithm of Pelekis et al. (EDBT 2017).
//!
//! The pipeline has two phases:
//!
//! 1. **NaTS** — *Neighborhood-aware Trajectory Segmentation*:
//!    * [`voting`] computes, for every 3D segment of every trajectory, how
//!      many other objects co-move with it (a Gaussian kernel over the
//!      time-synchronized segment-to-trajectory distance). The hot path is
//!      [`arena`]: a structure-of-arrays [`SegmentArena`] plus a packed STR
//!      R-tree, voted over flat `f64` lanes with zero allocation in the
//!      inner loop. [`voting::indexed_voting`] is the object-graph
//!      `pg3D-Rtree` implementation (kept as the reference the arena path is
//!      proven bit-identical against); [`voting::naive_voting`] is the
//!      quadratic baseline the paper compares against ("corresponding
//!      PostgreSQL functions").
//!    * [`segmentation`] splits each trajectory into sub-trajectories of
//!      homogeneous voting (representativeness), irrespective of shape.
//! 2. **SaCO** — *Sampling, Clustering, Outlier detection*:
//!    * [`sampling`] greedily selects the most representative, least
//!      redundant sub-trajectories as cluster seeds,
//!    * [`clustering`] groups every remaining sub-trajectory around the
//!      closest seed (within a distance bound) and isolates the outliers.
//!
//! [`pipeline::run_s2t`] wires the phases together; [`metrics`] quantifies
//! result quality for the comparison experiments (E1/E2).
//!
//! **Layer:** the whole-dataset clustering compute layer between
//! `hermes-trajectory` and the engine. The flat data layout of the voting
//! hot path is documented in `docs/ARCHITECTURE.md` § "Data layout & hot
//! path".

pub mod arena;
pub mod clustering;
pub mod metrics;
pub mod params;
pub mod pipeline;
pub mod sampling;
pub mod segmentation;
pub mod voting;

pub use arena::{
    arena_voting, arena_voting_counted_with, arena_voting_unpruned, arena_voting_with,
    segment_clipped_gap2, vote_trajectory_into, ArenaVoteScratch, KernelCounters,
    PackedSegmentIndex, SegmentArena,
};
pub use clustering::{cluster_around_representatives, cluster_around_representatives_with};
pub use clustering::{Cluster, ClusterId, ClusteringResult};
pub use metrics::ClusteringQuality;
pub use params::{S2TParams, S2TParamsBuilder};
pub use pipeline::trajectories_from_subs;
pub use pipeline::{
    run_s2t, run_s2t_naive, run_s2t_naive_with, run_s2t_with, S2TOutcome, S2TPhaseTimings,
};
pub use sampling::{select_representatives, select_representatives_with};
pub use segmentation::{segment_all, segment_all_with, segment_trajectory, VotedSubTrajectory};
pub use voting::{
    indexed_voting, indexed_voting_with, naive_voting, naive_voting_with, SegmentIndex,
    VotingProfile,
};
