//! Clustering quality metrics.
//!
//! The demo compares S2T-Clustering against TRACLUS, T-OPTICS and Convoys
//! (scenario 1) — the comparison needs method-agnostic quality numbers. The
//! metrics here apply to any [`ClusteringResult`], whichever algorithm
//! produced it.

use crate::clustering::ClusteringResult;
use hermes_trajectory::sub_trajectory_distance;

/// Method-agnostic summary of a clustering result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringQuality {
    /// Number of clusters.
    pub num_clusters: usize,
    /// Number of outliers.
    pub num_outliers: usize,
    /// Total sub-trajectories considered.
    pub total: usize,
    /// Fraction of sub-trajectories assigned to a cluster.
    pub coverage: f64,
    /// Mean member-to-representative distance across all clusters (lower is
    /// tighter).
    pub mean_intra_cluster_distance: f64,
    /// Mean pairwise synchronized distance between cluster representatives
    /// that temporally co-exist (higher is better separated); 0 when fewer
    /// than two representatives co-exist.
    pub mean_inter_cluster_distance: f64,
    /// Separation ratio `inter / max(intra, ε_machine)` — a crude silhouette
    /// substitute that is comparable across methods.
    pub separation_ratio: f64,
    /// Mean cluster size (members + representative).
    pub mean_cluster_size: f64,
}

impl ClusteringQuality {
    /// Computes the quality metrics of a result.
    pub fn compute(result: &ClusteringResult) -> Self {
        let num_clusters = result.num_clusters();
        let num_outliers = result.num_outliers();
        let total = result.total_sub_trajectories();
        let coverage = result.coverage();

        let mut intra_sum = 0.0;
        let mut intra_n = 0usize;
        for c in &result.clusters {
            for d in &c.member_distances {
                intra_sum += d;
                intra_n += 1;
            }
        }
        let mean_intra = if intra_n > 0 {
            intra_sum / intra_n as f64
        } else {
            0.0
        };

        let mut inter_sum = 0.0;
        let mut inter_n = 0usize;
        for i in 0..result.clusters.len() {
            for j in (i + 1)..result.clusters.len() {
                if let Some(d) = sub_trajectory_distance(
                    &result.clusters[i].representative,
                    &result.clusters[j].representative,
                ) {
                    inter_sum += d;
                    inter_n += 1;
                }
            }
        }
        let mean_inter = if inter_n > 0 {
            inter_sum / inter_n as f64
        } else {
            0.0
        };

        let separation_ratio = if mean_intra > 0.0 {
            mean_inter / mean_intra
        } else if mean_inter > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };

        let mean_cluster_size = if num_clusters > 0 {
            result.clusters.iter().map(|c| c.size()).sum::<usize>() as f64 / num_clusters as f64
        } else {
            0.0
        };

        ClusteringQuality {
            num_clusters,
            num_outliers,
            total,
            coverage,
            mean_intra_cluster_distance: mean_intra,
            mean_inter_cluster_distance: mean_inter,
            separation_ratio,
            mean_cluster_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster_around_representatives;
    use crate::segmentation::VotedSubTrajectory;
    use crate::S2TParams;
    use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp};

    fn voted(id: u64, y: f64, mean_vote: f64) -> VotedSubTrajectory {
        let sub = SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..10)
                .map(|i| Point::new(i as f64 * 10.0, y, Timestamp(i as i64 * 60_000)))
                .collect(),
        );
        VotedSubTrajectory {
            sub,
            mean_vote,
            max_vote: mean_vote,
        }
    }

    #[test]
    fn quality_of_a_well_separated_clustering() {
        // Two groups far apart, tight internally, plus one outlier.
        let subs = vec![
            voted(0, 0.0, 5.0),
            voted(1, 5.0, 1.0),
            voted(2, 10.0, 1.0),
            voted(3, 5_000.0, 5.0),
            voted(4, 5_005.0, 1.0),
            voted(5, 50_000.0, 0.1),
        ];
        let params = S2TParams {
            epsilon: 100.0,
            ..S2TParams::default()
        };
        let result = cluster_around_representatives(&subs, &[0, 3], &params);
        let q = ClusteringQuality::compute(&result);
        assert_eq!(q.num_clusters, 2);
        assert_eq!(q.num_outliers, 1);
        assert_eq!(q.total, 6);
        assert!(q.coverage > 0.8);
        assert!(q.mean_intra_cluster_distance < 20.0);
        assert!(q.mean_inter_cluster_distance > 1_000.0);
        assert!(q.separation_ratio > 50.0);
        assert!((q.mean_cluster_size - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_result_yields_zeroed_metrics() {
        let q = ClusteringQuality::compute(&ClusteringResult::default());
        assert_eq!(q.num_clusters, 0);
        assert_eq!(q.coverage, 0.0);
        assert_eq!(q.separation_ratio, 0.0);
        assert_eq!(q.mean_cluster_size, 0.0);
    }

    #[test]
    fn singleton_clusters_have_zero_intra_distance() {
        let subs = vec![voted(0, 0.0, 5.0), voted(1, 5_000.0, 5.0)];
        let params = S2TParams::default();
        let result = cluster_around_representatives(&subs, &[0, 1], &params);
        let q = ClusteringQuality::compute(&result);
        assert_eq!(q.mean_intra_cluster_distance, 0.0);
        assert!(q.separation_ratio.is_infinite());
    }
}
