//! Parameters of the S2T-Clustering pipeline.
//!
//! The SQL interface of the paper exposes the algorithm parameters directly
//! (`SELECT QUT(D, Wi, We, τ, δ, t, d, γ)`); this struct is the Rust-side
//! equivalent shared by S2T and the per-sub-chunk clustering inside the
//! ReTraTree.

/// Tunable parameters of S2T-Clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct S2TParams {
    /// Bandwidth `σ` of the Gaussian voting kernel, in spatial units: a
    /// trajectory at distance `σ` contributes `exp(-0.5) ≈ 0.61` of a vote.
    pub sigma: f64,
    /// Segmentation threshold `τ` ∈ (0, 1]: a new sub-trajectory starts when
    /// the normalized voting signal jumps by more than `τ` relative to the
    /// running segment average.
    pub tau: f64,
    /// Minimum marginal-gain fraction `δ` ∈ [0, 1) for the greedy sampling:
    /// selection stops when the next candidate's gain drops below `δ` times
    /// the first (best) gain.
    pub delta: f64,
    /// Minimum duration `t` (milliseconds) of a sub-trajectory produced by
    /// segmentation; shorter pieces are merged with their neighbour.
    pub min_duration_ms: i64,
    /// Clustering distance bound `d` (a.k.a. ε): a sub-trajectory joins the
    /// closest representative only if their spatio-temporal distance is at
    /// most this value; otherwise it is an outlier.
    pub epsilon: f64,
    /// Upper bound on the number of representatives selected by sampling
    /// (`0` means unbounded — selection stops on the `δ` criterion alone).
    pub max_representatives: usize,
    /// Weight converting one second of temporal separation into spatial
    /// units for MBB pruning; kept at the workspace default unless a dataset
    /// uses very different speed scales.
    pub time_weight: f64,
}

impl Default for S2TParams {
    fn default() -> Self {
        S2TParams {
            sigma: 50.0,
            tau: 0.35,
            delta: 0.05,
            min_duration_ms: 60_000,
            epsilon: 150.0,
            max_representatives: 0,
            time_weight: 1.0,
        }
    }
}

impl S2TParams {
    /// Validates parameter ranges, returning a description of the first
    /// violation. Used by the SQL layer to reject bad queries early.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sigma > 0.0) {
            return Err(format!("sigma must be positive, got {}", self.sigma));
        }
        if !(self.tau > 0.0 && self.tau <= 1.0) {
            return Err(format!("tau must be in (0, 1], got {}", self.tau));
        }
        if !(0.0..1.0).contains(&self.delta) {
            return Err(format!("delta must be in [0, 1), got {}", self.delta));
        }
        if self.min_duration_ms < 0 {
            return Err(format!(
                "min_duration_ms must be non-negative, got {}",
                self.min_duration_ms
            ));
        }
        if !(self.epsilon > 0.0) {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if !(self.time_weight >= 0.0) {
            return Err(format!(
                "time_weight must be non-negative, got {}",
                self.time_weight
            ));
        }
        Ok(())
    }

    /// Radius (in spatial units) beyond which a voter's contribution is below
    /// 1 % of a full vote; used to prune the index search window.
    pub fn voting_cutoff_radius(&self) -> f64 {
        // exp(-r²/(2σ²)) = 0.01  ⇒  r = σ·sqrt(2·ln(100)) ≈ 3.03·σ
        self.sigma * (2.0 * (100.0f64).ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        assert!(S2TParams::default().validate().is_ok());
    }

    #[test]
    fn invalid_params_are_rejected_with_reasons() {
        let mut p = S2TParams::default();
        p.sigma = 0.0;
        assert!(p.validate().unwrap_err().contains("sigma"));

        let mut p = S2TParams::default();
        p.tau = 1.5;
        assert!(p.validate().unwrap_err().contains("tau"));

        let mut p = S2TParams::default();
        p.delta = 1.0;
        assert!(p.validate().unwrap_err().contains("delta"));

        let mut p = S2TParams::default();
        p.min_duration_ms = -5;
        assert!(p.validate().unwrap_err().contains("min_duration"));

        let mut p = S2TParams::default();
        p.epsilon = -1.0;
        assert!(p.validate().unwrap_err().contains("epsilon"));

        let mut p = S2TParams::default();
        p.time_weight = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn cutoff_radius_scales_with_sigma() {
        let mut p = S2TParams::default();
        p.sigma = 10.0;
        let r10 = p.voting_cutoff_radius();
        p.sigma = 20.0;
        let r20 = p.voting_cutoff_radius();
        assert!((r20 / r10 - 2.0).abs() < 1e-12);
        assert!(r10 > 3.0 * 10.0 && r10 < 3.1 * 10.0);
    }
}
