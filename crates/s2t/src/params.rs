//! Parameters of the S2T-Clustering pipeline.
//!
//! The SQL interface of the paper exposes the algorithm parameters directly
//! (`SELECT QUT(D, Wi, We, τ, δ, t, d, γ)`); this struct is the Rust-side
//! equivalent shared by S2T and the per-sub-chunk clustering inside the
//! ReTraTree.

/// Tunable parameters of S2T-Clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct S2TParams {
    /// Bandwidth `σ` of the Gaussian voting kernel, in spatial units: a
    /// trajectory at distance `σ` contributes `exp(-0.5) ≈ 0.61` of a vote.
    pub sigma: f64,
    /// Segmentation threshold `τ` ∈ (0, 1]: a new sub-trajectory starts when
    /// the normalized voting signal jumps by more than `τ` relative to the
    /// running segment average.
    pub tau: f64,
    /// Minimum marginal-gain fraction `δ` ∈ [0, 1) for the greedy sampling:
    /// selection stops when the next candidate's gain drops below `δ` times
    /// the first (best) gain.
    pub delta: f64,
    /// Minimum duration `t` (milliseconds) of a sub-trajectory produced by
    /// segmentation; shorter pieces are merged with their neighbour.
    pub min_duration_ms: i64,
    /// Clustering distance bound `d` (a.k.a. ε): a sub-trajectory joins the
    /// closest representative only if their spatio-temporal distance is at
    /// most this value; otherwise it is an outlier.
    pub epsilon: f64,
    /// Upper bound on the number of representatives selected by sampling
    /// (`0` means unbounded — selection stops on the `δ` criterion alone).
    pub max_representatives: usize,
    /// Weight converting one second of temporal separation into spatial
    /// units for MBB pruning; kept at the workspace default unless a dataset
    /// uses very different speed scales.
    pub time_weight: f64,
}

impl Default for S2TParams {
    fn default() -> Self {
        S2TParams {
            sigma: 50.0,
            tau: 0.35,
            delta: 0.05,
            min_duration_ms: 60_000,
            epsilon: 150.0,
            max_representatives: 0,
            time_weight: 1.0,
        }
    }
}

/// Builder for [`S2TParams`]: named setters over the defaults, with
/// validation folded into [`S2TParamsBuilder::build`], so call sites stay
/// correct when new knobs are added (no positional argument lists to break).
///
/// ```
/// use hermes_s2t::S2TParams;
/// let params = S2TParams::builder()
///     .sigma(2000.0)
///     .epsilon(6000.0)
///     .min_duration_ms(300_000)
///     .build()
///     .unwrap();
/// assert_eq!(params.sigma, 2000.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct S2TParamsBuilder {
    params: S2TParams,
}

impl S2TParamsBuilder {
    /// Sets the voting kernel bandwidth σ.
    pub fn sigma(mut self, sigma: f64) -> Self {
        self.params.sigma = sigma;
        self
    }

    /// Sets the segmentation threshold τ.
    pub fn tau(mut self, tau: f64) -> Self {
        self.params.tau = tau;
        self
    }

    /// Sets the sampling stop criterion δ.
    pub fn delta(mut self, delta: f64) -> Self {
        self.params.delta = delta;
        self
    }

    /// Sets the minimum sub-trajectory duration `t` in milliseconds.
    pub fn min_duration_ms(mut self, ms: i64) -> Self {
        self.params.min_duration_ms = ms;
        self
    }

    /// Sets the clustering distance bound ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.params.epsilon = epsilon;
        self
    }

    /// Sets the representative-count cap (0 = unbounded).
    pub fn max_representatives(mut self, n: usize) -> Self {
        self.params.max_representatives = n;
        self
    }

    /// Sets the temporal weight for MBB pruning.
    pub fn time_weight(mut self, w: f64) -> Self {
        self.params.time_weight = w;
        self
    }

    /// Validates and returns the parameters, or the first violation.
    pub fn build(self) -> Result<S2TParams, String> {
        self.params.validate()?;
        Ok(self.params)
    }
}

impl S2TParams {
    /// Starts a builder over the default parameters.
    pub fn builder() -> S2TParamsBuilder {
        S2TParamsBuilder::default()
    }

    /// Validates parameter ranges, returning a description of the first
    /// violation. Used by the SQL layer to reject bad queries early.
    // Negated comparisons are deliberate: they reject NaN along with
    // out-of-range values.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sigma > 0.0) {
            return Err(format!("sigma must be positive, got {}", self.sigma));
        }
        if !(self.tau > 0.0 && self.tau <= 1.0) {
            return Err(format!("tau must be in (0, 1], got {}", self.tau));
        }
        if !(0.0..1.0).contains(&self.delta) {
            return Err(format!("delta must be in [0, 1), got {}", self.delta));
        }
        if self.min_duration_ms < 0 {
            return Err(format!(
                "min_duration_ms must be non-negative, got {}",
                self.min_duration_ms
            ));
        }
        if !(self.epsilon > 0.0) {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if !(self.time_weight >= 0.0) {
            return Err(format!(
                "time_weight must be non-negative, got {}",
                self.time_weight
            ));
        }
        Ok(())
    }

    /// Radius (in spatial units) beyond which a voter's contribution is below
    /// 1 % of a full vote; used to prune the index search window.
    pub fn voting_cutoff_radius(&self) -> f64 {
        // exp(-r²/(2σ²)) = 0.01  ⇒  r = σ·sqrt(2·ln(100)) ≈ 3.03·σ
        self.sigma * (2.0 * (100.0f64).ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        assert!(S2TParams::default().validate().is_ok());
    }

    #[test]
    fn invalid_params_are_rejected_with_reasons() {
        let p = S2TParams {
            sigma: 0.0,
            ..S2TParams::default()
        };
        assert!(p.validate().unwrap_err().contains("sigma"));

        let p = S2TParams {
            tau: 1.5,
            ..S2TParams::default()
        };
        assert!(p.validate().unwrap_err().contains("tau"));

        let p = S2TParams {
            delta: 1.0,
            ..S2TParams::default()
        };
        assert!(p.validate().unwrap_err().contains("delta"));

        let p = S2TParams {
            min_duration_ms: -5,
            ..S2TParams::default()
        };
        assert!(p.validate().unwrap_err().contains("min_duration"));

        let p = S2TParams {
            epsilon: -1.0,
            ..S2TParams::default()
        };
        assert!(p.validate().unwrap_err().contains("epsilon"));

        let p = S2TParams {
            time_weight: f64::NAN,
            ..S2TParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn builder_sets_knobs_and_validates() {
        let p = S2TParams::builder()
            .sigma(2000.0)
            .tau(0.4)
            .delta(0.1)
            .min_duration_ms(300_000)
            .epsilon(6000.0)
            .max_representatives(32)
            .time_weight(2.0)
            .build()
            .unwrap();
        assert_eq!(p.sigma, 2000.0);
        assert_eq!(p.tau, 0.4);
        assert_eq!(p.max_representatives, 32);
        // Unset knobs keep their defaults.
        let d = S2TParams::builder().sigma(9.0).build().unwrap();
        assert_eq!(d.epsilon, S2TParams::default().epsilon);
        // Validation is folded into build().
        assert!(S2TParams::builder()
            .sigma(-1.0)
            .build()
            .unwrap_err()
            .contains("sigma"));
        assert!(S2TParams::builder()
            .tau(2.0)
            .build()
            .unwrap_err()
            .contains("tau"));
    }

    #[test]
    fn cutoff_radius_scales_with_sigma() {
        let mut p = S2TParams {
            sigma: 10.0,
            ..S2TParams::default()
        };
        let r10 = p.voting_cutoff_radius();
        p.sigma = 20.0;
        let r20 = p.voting_cutoff_radius();
        assert!((r20 / r10 - 2.0).abs() < 1e-12);
        assert!(r10 > 3.0 * 10.0 && r10 < 3.1 * 10.0);
    }
}
