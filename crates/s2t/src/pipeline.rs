//! The end-to-end S2T-Clustering pipeline.
//!
//! Wires the four steps together (voting → segmentation → sampling →
//! clustering) and reports per-phase wall-clock timings, which the benchmark
//! harness uses to regenerate the paper's speedup claims (experiments E1 and
//! E3).

use crate::arena::{arena_voting_counted_with, KernelCounters, PackedSegmentIndex, SegmentArena};
use crate::clustering::{cluster_around_representatives_with, ClusteringResult};
use crate::params::S2TParams;
use crate::sampling::select_representatives_with;
use crate::segmentation::{segment_all_with, VotedSubTrajectory};
use crate::voting::{naive_voting_with, VotingProfile};
use hermes_exec::Executor;
use hermes_trajectory::{SubTrajectory, Trajectory};
use std::time::Instant;

/// Wall-clock timings of the pipeline phases, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct S2TPhaseTimings {
    /// Building the segment index (0 for the naive variant).
    pub index_build_ms: f64,
    /// Voting phase.
    pub voting_ms: f64,
    /// Segmentation phase.
    pub segmentation_ms: f64,
    /// Sampling (representative selection) phase.
    pub sampling_ms: f64,
    /// Greedy clustering / outlier detection phase.
    pub clustering_ms: f64,
}

impl S2TPhaseTimings {
    /// Total pipeline time.
    pub fn total_ms(&self) -> f64 {
        self.index_build_ms
            + self.voting_ms
            + self.segmentation_ms
            + self.sampling_ms
            + self.clustering_ms
    }

    /// Adds another run's timings phase by phase — how QuT aggregates the
    /// pipelines of its border sub-chunks and how the engine accumulates its
    /// `SHOW STATS` phase counters.
    pub fn accumulate(&mut self, other: &S2TPhaseTimings) {
        self.index_build_ms += other.index_build_ms;
        self.voting_ms += other.voting_ms;
        self.segmentation_ms += other.segmentation_ms;
        self.sampling_ms += other.sampling_ms;
        self.clustering_ms += other.clustering_ms;
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct S2TOutcome {
    /// The clusters and outliers.
    pub result: ClusteringResult,
    /// The per-trajectory voting profiles (kept for VA exports and for the
    /// incremental-maintenance path of the ReTraTree).
    pub profiles: Vec<VotingProfile>,
    /// All sub-trajectories produced by segmentation, in input order.
    pub sub_trajectories: Vec<VotedSubTrajectory>,
    /// Per-phase timings.
    pub timings: S2TPhaseTimings,
    /// Pruned-vs-evaluated counters from the voting kernel. Zero for the
    /// naive pipeline, which has no pruning ladder (every pair pays the
    /// exact kernel by design — that is what makes it the baseline).
    pub kernel: KernelCounters,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1_000.0
}

fn run_pipeline(
    trajectories: &[Trajectory],
    params: &S2TParams,
    use_index: bool,
    exec: &Executor,
) -> S2TOutcome {
    let mut timings = S2TPhaseTimings::default();

    // Indexed voting runs on the flat hot path: the collection is flattened
    // into a SoA `SegmentArena` and STR-packed into a `PackedSegmentIndex`
    // (both timed as index build), then voted over cache-linear lanes. The
    // votes are bit-identical to the object-graph `indexed_voting` and to
    // `naive_voting` (see `crate::arena` for the exactness argument).
    let t0 = Instant::now();
    let index = if use_index {
        let arena = SegmentArena::build(trajectories);
        let packed = PackedSegmentIndex::build(&arena);
        Some((arena, packed))
    } else {
        None
    };
    timings.index_build_ms = if use_index { ms(t0) } else { 0.0 };

    let t0 = Instant::now();
    let (profiles, kernel) = match &index {
        Some((arena, packed)) => arena_voting_counted_with(arena, packed, params, exec),
        None => (
            naive_voting_with(trajectories, params, exec),
            KernelCounters::default(),
        ),
    };
    timings.voting_ms = ms(t0);

    let t0 = Instant::now();
    let subs = segment_all_with(trajectories, &profiles, params, exec);
    timings.segmentation_ms = ms(t0);

    let t0 = Instant::now();
    let representatives = select_representatives_with(&subs, params, exec);
    timings.sampling_ms = ms(t0);

    let t0 = Instant::now();
    let result = cluster_around_representatives_with(&subs, &representatives, params, exec);
    timings.clustering_ms = ms(t0);

    S2TOutcome {
        result,
        profiles,
        sub_trajectories: subs,
        timings,
        kernel,
    }
}

/// Runs the full S2T-Clustering pipeline with index-accelerated voting — the
/// in-DBMS fast path of the paper.
pub fn run_s2t(trajectories: &[Trajectory], params: &S2TParams) -> S2TOutcome {
    run_pipeline(trajectories, params, true, &Executor::serial())
}

/// [`run_s2t`] with every data-parallel phase (voting, segmentation, the
/// sampling discount sweep, clustering) fanned out on `exec`. The result is
/// bit-identical to [`run_s2t`] for any thread count.
pub fn run_s2t_with(
    trajectories: &[Trajectory],
    params: &S2TParams,
    exec: &Executor,
) -> S2TOutcome {
    run_pipeline(trajectories, params, true, exec)
}

/// Runs the same pipeline with quadratic (index-free) voting — the baseline
/// standing in for "corresponding PostgreSQL functions" in experiment E1.
pub fn run_s2t_naive(trajectories: &[Trajectory], params: &S2TParams) -> S2TOutcome {
    run_pipeline(trajectories, params, false, &Executor::serial())
}

/// [`run_s2t_naive`] fanned out on `exec`.
pub fn run_s2t_naive_with(
    trajectories: &[Trajectory],
    params: &S2TParams,
    exec: &Executor,
) -> S2TOutcome {
    run_pipeline(trajectories, params, false, exec)
}

/// Re-wraps sub-trajectories as standalone trajectories so the pipeline can
/// be re-applied to the content of a single ReTraTree partition (the
/// maintenance path of Fig. 2). Identifiers are preserved through
/// `trajectory_id`/`object_id`; the offset survives in the sub-trajectory id.
pub fn trajectories_from_subs(subs: &[SubTrajectory]) -> Vec<Trajectory> {
    subs.iter()
        .filter_map(|s| Trajectory::new(s.trajectory_id, s.object_id, s.points().to_vec()).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Timestamp};

    /// Builds a small MOD with two co-moving groups and a pair of loners.
    fn small_mod() -> Vec<Trajectory> {
        let mut trajs = Vec::new();
        let mut id = 0u64;
        // Group 1: 4 objects flying east together.
        for k in 0..4 {
            let pts: Vec<Point> = (0..20)
                .map(|i| {
                    Point::new(
                        i as f64 * 100.0,
                        k as f64 * 20.0,
                        Timestamp(i as i64 * 60_000),
                    )
                })
                .collect();
            trajs.push(Trajectory::new(id, id, pts).unwrap());
            id += 1;
        }
        // Group 2: 3 objects flying north together, elsewhere.
        for k in 0..3 {
            let pts: Vec<Point> = (0..20)
                .map(|i| {
                    Point::new(
                        50_000.0 + k as f64 * 20.0,
                        i as f64 * 100.0,
                        Timestamp(i as i64 * 60_000),
                    )
                })
                .collect();
            trajs.push(Trajectory::new(id, id, pts).unwrap());
            id += 1;
        }
        // Two loners far from everything.
        for k in 0..2 {
            let pts: Vec<Point> = (0..20)
                .map(|i| {
                    Point::new(
                        -30_000.0 - k as f64 * 10_000.0,
                        -30_000.0,
                        Timestamp(i as i64 * 60_000),
                    )
                })
                .collect();
            trajs.push(Trajectory::new(id, id, pts).unwrap());
            id += 1;
        }
        trajs
    }

    fn params() -> S2TParams {
        S2TParams {
            sigma: 60.0,
            epsilon: 300.0,
            min_duration_ms: 120_000,
            ..S2TParams::default()
        }
    }

    #[test]
    fn pipeline_discovers_the_two_groups_and_the_loners() {
        let trajs = small_mod();
        let outcome = run_s2t(&trajs, &params());
        let result = &outcome.result;
        assert_eq!(
            result.num_clusters(),
            2,
            "expected exactly the two co-moving groups"
        );
        let mut sizes: Vec<usize> = result.clusters.iter().map(|c| c.size()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]);
        assert_eq!(result.num_outliers(), 2);
        // Every input trajectory is accounted for exactly once.
        assert_eq!(
            result.total_sub_trajectories(),
            outcome.sub_trajectories.len()
        );
    }

    #[test]
    fn indexed_and_naive_pipelines_agree() {
        let trajs = small_mod();
        let fast = run_s2t(&trajs, &params());
        let slow = run_s2t_naive(&trajs, &params());
        assert_eq!(fast.result.num_clusters(), slow.result.num_clusters());
        assert_eq!(fast.result.num_outliers(), slow.result.num_outliers());
        let sizes = |r: &ClusteringResult| {
            let mut v: Vec<usize> = r.clusters.iter().map(|c| c.size()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes(&fast.result), sizes(&slow.result));
        assert!(slow.timings.index_build_ms == 0.0);
    }

    #[test]
    fn timings_are_populated() {
        let trajs = small_mod();
        let outcome = run_s2t(&trajs, &params());
        let t = outcome.timings;
        assert!(t.total_ms() > 0.0);
        assert!(t.voting_ms >= 0.0 && t.clustering_ms >= 0.0);
    }

    #[test]
    fn empty_input_is_handled() {
        let outcome = run_s2t(&[], &params());
        assert_eq!(outcome.result.num_clusters(), 0);
        assert_eq!(outcome.result.num_outliers(), 0);
        assert!(outcome.sub_trajectories.is_empty());
    }

    #[test]
    fn trajectories_from_subs_round_trips_points() {
        let trajs = small_mod();
        let outcome = run_s2t(&trajs, &params());
        let subs: Vec<_> = outcome
            .sub_trajectories
            .iter()
            .map(|v| v.sub.clone())
            .collect();
        let back = trajectories_from_subs(&subs);
        assert_eq!(back.len(), subs.len());
        for (t, s) in back.iter().zip(subs.iter()) {
            assert_eq!(t.points(), s.points());
            assert_eq!(t.id, s.trajectory_id);
        }
    }
}
