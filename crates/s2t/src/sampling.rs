//! The sampling step of SaCO: selecting cluster representatives.
//!
//! "The sampling set should contain highly voted trajectories of the MOD
//! which, at the same time, would cover the 3D space occupied by the entire
//! dataset as much as possible." (ICDE 2018, §II.A)
//!
//! The selection is a greedy maximum-coverage procedure: candidates are
//! scored by their voting-based representativeness, discounted by how much of
//! their spatio-temporal neighbourhood is already covered by previously
//! selected representatives. Selection stops when the marginal gain falls
//! below `δ` times the best gain, or when `max_representatives` is reached.

use crate::params::S2TParams;
use crate::segmentation::VotedSubTrajectory;
use hermes_exec::Executor;
use hermes_trajectory::spatiotemporal_distance;

/// Similarity in [0, 1] describing how much of `candidate`'s neighbourhood an
/// already-selected representative covers: 1 when they coincide, 0 when they
/// are at least `2ε` apart (or never co-exist).
fn coverage_overlap(
    candidate: &VotedSubTrajectory,
    selected: &VotedSubTrajectory,
    epsilon: f64,
) -> f64 {
    let d = spatiotemporal_distance(&candidate.sub, &selected.sub);
    if !d.is_finite() {
        return 0.0;
    }
    (1.0 - d / (2.0 * epsilon)).max(0.0)
}

/// Greedily selects the indices of the sub-trajectories that will seed the
/// clusters, in selection order.
pub fn select_representatives(subs: &[VotedSubTrajectory], params: &S2TParams) -> Vec<usize> {
    select_representatives_with(subs, params, &Executor::serial())
}

/// [`select_representatives`] with the per-pick coverage-discount sweep (the
/// `O(candidates)` spatio-temporal distance evaluations after every
/// selection) fanned out on `exec`. The greedy selection itself stays
/// sequential — each pick depends on all previous discounts — and the
/// discounts are applied in index order, so selection is identical to the
/// serial path.
pub fn select_representatives_with(
    subs: &[VotedSubTrajectory],
    params: &S2TParams,
    exec: &Executor,
) -> Vec<usize> {
    if subs.is_empty() {
        return Vec::new();
    }
    let limit = if params.max_representatives == 0 {
        usize::MAX
    } else {
        params.max_representatives
    };

    let base: Vec<f64> = subs.iter().map(|s| s.representativeness()).collect();
    let mut selected: Vec<usize> = Vec::new();
    // Residual gain of each candidate, updated as representatives are picked.
    let mut gain: Vec<f64> = base.clone();
    // A candidate within ε of an already selected representative would be a
    // member of its cluster anyway; it can never become a seed itself.
    let mut eligible: Vec<bool> = vec![true; subs.len()];
    let mut first_gain: Option<f64> = None;

    while selected.len() < limit {
        // Pick the eligible candidate with the highest residual gain.
        let mut best_idx = None;
        let mut best_gain = 0.0f64;
        for (i, &g) in gain.iter().enumerate() {
            if !eligible[i] || selected.contains(&i) {
                continue;
            }
            if g > best_gain {
                best_gain = g;
                best_idx = Some(i);
            }
        }
        let Some(idx) = best_idx else { break };

        match first_gain {
            None => {
                // Never select a zero-vote seed: a dataset where nothing
                // co-moves has no clusters, only outliers.
                if subs[idx].mean_vote <= 0.0 {
                    break;
                }
                first_gain = Some(best_gain);
            }
            Some(fg) => {
                if best_gain < params.delta * fg || subs[idx].mean_vote <= 0.0 {
                    break;
                }
            }
        }

        selected.push(idx);
        // Discount the remaining candidates by their overlap with the new
        // pick, and retire those already covered by it. The distance
        // evaluations are independent per candidate, so on a parallel
        // executor they fan out and the updates are applied in index order —
        // the same order the serial in-place sweep produces.
        if exec.is_parallel() {
            let updates: Vec<Option<(f64, bool)>> = exec.map_indices(subs.len(), |i| {
                if !eligible[i] || selected.contains(&i) {
                    return None;
                }
                let d = spatiotemporal_distance(&subs[i].sub, &subs[idx].sub);
                if d <= params.epsilon {
                    return Some((0.0, false));
                }
                let overlap = coverage_overlap(&subs[i], &subs[idx], params.epsilon);
                Some((gain[i] * (1.0 - overlap), true))
            });
            for (i, update) in updates.into_iter().enumerate() {
                match update {
                    Some((g, true)) => gain[i] = g,
                    Some((_, false)) => eligible[i] = false,
                    None => {}
                }
            }
        } else {
            for (i, g) in gain.iter_mut().enumerate() {
                if !eligible[i] || selected.contains(&i) {
                    continue;
                }
                let d = spatiotemporal_distance(&subs[i].sub, &subs[idx].sub);
                if d <= params.epsilon {
                    eligible[i] = false;
                    continue;
                }
                let overlap = coverage_overlap(&subs[i], &subs[idx], params.epsilon);
                *g *= 1.0 - overlap;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp};

    fn voted(id: u64, y: f64, t0: i64, n: usize, mean_vote: f64) -> VotedSubTrajectory {
        let sub = SubTrajectory::from_points(
            SubTrajectoryId::new(id, 0),
            id,
            id,
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, y, Timestamp(t0 + i as i64 * 60_000)))
                .collect(),
        );
        VotedSubTrajectory {
            sub,
            mean_vote,
            max_vote: mean_vote,
        }
    }

    fn params(epsilon: f64, delta: f64, max: usize) -> S2TParams {
        S2TParams {
            epsilon,
            delta,
            max_representatives: max,
            ..S2TParams::default()
        }
    }

    #[test]
    fn picks_the_highest_voted_first() {
        let subs = vec![
            voted(1, 0.0, 0, 10, 1.0),
            voted(2, 1_000.0, 0, 10, 5.0),
            voted(3, 2_000.0, 0, 10, 3.0),
        ];
        let sel = select_representatives(&subs, &params(100.0, 0.05, 0));
        assert_eq!(sel[0], 1, "highest voted candidate must be selected first");
        assert_eq!(sel.len(), 3, "well separated candidates are all selected");
    }

    #[test]
    fn nearby_candidates_are_redundant() {
        // Two co-located, highly voted candidates and one distant, lower one.
        let subs = vec![
            voted(1, 0.0, 0, 10, 5.0),
            voted(2, 1.0, 0, 10, 4.9),
            voted(3, 10_000.0, 0, 10, 2.0),
        ];
        let sel = select_representatives(&subs, &params(100.0, 0.2, 0));
        assert!(sel.contains(&0));
        assert!(sel.contains(&2));
        assert!(
            !sel.contains(&1),
            "the near-duplicate of an already selected seed must be suppressed: {sel:?}"
        );
    }

    #[test]
    fn zero_votes_produce_no_representatives() {
        let subs = vec![voted(1, 0.0, 0, 10, 0.0), voted(2, 50.0, 0, 10, 0.0)];
        assert!(select_representatives(&subs, &params(100.0, 0.05, 0)).is_empty());
    }

    #[test]
    fn max_representatives_caps_the_selection() {
        let subs: Vec<VotedSubTrajectory> = (0..10)
            .map(|i| voted(i, i as f64 * 5_000.0, 0, 10, 3.0))
            .collect();
        let sel = select_representatives(&subs, &params(100.0, 0.0, 4));
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn delta_stops_selection_when_gain_collapses() {
        // One dominant seed; everything else is close to it, so residual
        // gains collapse below delta quickly.
        let mut subs = vec![voted(0, 0.0, 0, 20, 10.0)];
        for i in 1..6 {
            subs.push(voted(i, i as f64, 0, 20, 9.0));
        }
        let sel = select_representatives(&subs, &params(500.0, 0.5, 0));
        assert_eq!(
            sel.len(),
            1,
            "redundant candidates must not pass the δ bar: {sel:?}"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(select_representatives(&[], &params(100.0, 0.05, 0)).is_empty());
    }

    #[test]
    fn temporally_disjoint_candidates_are_not_redundant() {
        // Same place, different days: both deserve to be representatives.
        let subs = vec![
            voted(1, 0.0, 0, 10, 3.0),
            voted(2, 0.0, 86_400_000, 10, 3.0),
        ];
        let sel = select_representatives(&subs, &params(100.0, 0.05, 0));
        assert_eq!(sel.len(), 2);
    }
}
