//! The segmentation step of NaTS.
//!
//! "The goal of this step is to partition each trajectory into
//! sub-trajectories having homogeneous representativeness, irrespectively of
//! their shape complexity." (ICDE 2018, §II.A)
//!
//! Each trajectory's voting signal (one value per segment) is scanned once:
//! a cut is placed wherever the next segment's normalized vote deviates from
//! the running mean of the current piece by more than `τ`. Pieces shorter
//! than the minimum duration `t` are then merged with their neighbours, so
//! every produced sub-trajectory is long enough to be meaningful.

use crate::params::S2TParams;
use crate::voting::VotingProfile;
use hermes_exec::Executor;
use hermes_trajectory::{SubTrajectory, Trajectory};

/// A sub-trajectory annotated with the voting evidence that produced it.
#[derive(Debug, Clone)]
pub struct VotedSubTrajectory {
    /// The sub-trajectory itself.
    pub sub: SubTrajectory,
    /// Mean vote over the sub-trajectory's segments.
    pub mean_vote: f64,
    /// Maximum vote over the sub-trajectory's segments.
    pub max_vote: f64,
}

impl VotedSubTrajectory {
    /// Representativeness score used by the sampling step: highly voted and
    /// long-lived sub-trajectories make the best cluster seeds.
    pub fn representativeness(&self) -> f64 {
        self.mean_vote * self.sub.duration().as_secs_f64().max(1.0).sqrt()
    }
}

/// Splits one trajectory into sub-trajectories of homogeneous voting.
///
/// The voting profile must describe the same trajectory (one vote per
/// segment); this is asserted in debug builds.
pub fn segment_trajectory(
    traj: &Trajectory,
    profile: &VotingProfile,
    params: &S2TParams,
) -> Vec<VotedSubTrajectory> {
    debug_assert_eq!(profile.votes.len(), traj.num_segments());
    let votes = &profile.votes;
    if votes.is_empty() {
        return Vec::new();
    }

    // Normalize the signal to [0, 1] for threshold comparisons; a flat signal
    // (max == 0) never triggers a cut.
    let max_vote = votes.iter().copied().fold(0.0f64, f64::max);
    let norm: Vec<f64> = if max_vote > 0.0 {
        votes.iter().map(|v| v / max_vote).collect()
    } else {
        vec![0.0; votes.len()]
    };

    // Pass 1: place cuts where the signal jumps relative to the running mean
    // of the current piece. `cut_points[i]` is a *point* index: the piece
    // ends at point i (shared with the next piece).
    let mut cut_points: Vec<usize> = Vec::new();
    let mut run_sum = norm[0];
    let mut run_len = 1usize;
    for (i, &v) in norm.iter().enumerate().skip(1) {
        let run_mean = run_sum / run_len as f64;
        if (v - run_mean).abs() > params.tau {
            // Segment i starts a new piece ⇒ cut at point i.
            cut_points.push(i);
            run_sum = v;
            run_len = 1;
        } else {
            run_sum += v;
            run_len += 1;
        }
    }

    // Pass 2: enforce the minimum duration by dropping cuts that would leave
    // a too-short piece on their left.
    let mut kept: Vec<usize> = Vec::new();
    let mut piece_start_point = 0usize;
    for &cut in &cut_points {
        let start_t = traj.points()[piece_start_point].t;
        let end_t = traj.points()[cut].t;
        if (end_t - start_t).millis() >= params.min_duration_ms {
            kept.push(cut);
            piece_start_point = cut;
        }
        // Otherwise merge: skip the cut, the running piece keeps growing.
    }
    // Drop a final cut that would leave a too-short tail.
    while let Some(&last) = kept.last() {
        let tail_ms = (traj.end_time() - traj.points()[last].t).millis();
        if tail_ms < params.min_duration_ms {
            kept.pop();
        } else {
            break;
        }
    }

    let pieces = traj.split_at(&kept);

    // Annotate each piece with its voting statistics. A piece covering points
    // [a, b] covers segments [a, b-1].
    pieces
        .into_iter()
        .map(|sub| {
            let a = sub.parent_offset();
            let b = a + sub.num_segments();
            let slice = &votes[a..b];
            let mean_vote = slice.iter().sum::<f64>() / slice.len() as f64;
            let max_vote = slice.iter().copied().fold(0.0, f64::max);
            VotedSubTrajectory {
                sub,
                mean_vote,
                max_vote,
            }
        })
        .collect()
}

/// Segments every trajectory of a dataset. Profiles must be in the same
/// order as `trajectories` (as produced by the voting functions).
pub fn segment_all(
    trajectories: &[Trajectory],
    profiles: &[VotingProfile],
    params: &S2TParams,
) -> Vec<VotedSubTrajectory> {
    segment_all_with(trajectories, profiles, params, &Executor::serial())
}

/// [`segment_all`] fanned out over trajectories on `exec`: each (trajectory,
/// profile) pair segments independently, and the per-trajectory piece lists
/// are concatenated in input order — identical to the serial `flat_map`.
pub fn segment_all_with(
    trajectories: &[Trajectory],
    profiles: &[VotingProfile],
    params: &S2TParams,
    exec: &Executor,
) -> Vec<VotedSubTrajectory> {
    let n = trajectories.len().min(profiles.len());
    exec.map_indices(n, |i| {
        segment_trajectory(&trajectories[i], &profiles[i], params)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Timestamp};

    fn traj(n: usize) -> Trajectory {
        Trajectory::new(
            1,
            1,
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, 0.0, Timestamp(i as i64 * 60_000)))
                .collect(),
        )
        .unwrap()
    }

    fn profile(votes: Vec<f64>) -> VotingProfile {
        VotingProfile {
            trajectory_id: 1,
            trajectory_index: 0,
            votes,
        }
    }

    fn params() -> S2TParams {
        S2TParams {
            tau: 0.3,
            min_duration_ms: 60_000,
            ..S2TParams::default()
        }
    }

    #[test]
    fn homogeneous_votes_produce_a_single_piece() {
        let t = traj(10);
        let p = profile(vec![3.0; 9]);
        let subs = segment_trajectory(&t, &p, &params());
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].sub.len(), 10);
        assert!((subs[0].mean_vote - 3.0).abs() < 1e-12);
        assert!((subs[0].max_vote - 3.0).abs() < 1e-12);
    }

    #[test]
    fn a_sharp_change_in_voting_creates_a_cut() {
        let t = traj(10);
        // Five low-vote segments followed by four high-vote ones.
        let p = profile(vec![0.5, 0.5, 0.5, 0.5, 0.5, 5.0, 5.0, 5.0, 5.0]);
        let subs = segment_trajectory(&t, &p, &params());
        assert_eq!(subs.len(), 2, "expected a cut at the vote jump");
        assert!(subs[0].mean_vote < subs[1].mean_vote);
        // The two pieces share the cut point, covering every segment exactly once.
        let total_segments: usize = subs.iter().map(|s| s.sub.num_segments()).sum();
        assert_eq!(total_segments, t.num_segments());
    }

    #[test]
    fn pieces_cover_the_trajectory_without_gaps() {
        let t = traj(20);
        let votes: Vec<f64> = (0..19).map(|i| if i % 7 < 3 { 0.2 } else { 4.0 }).collect();
        let subs = segment_trajectory(&t, &profile(votes), &params());
        assert!(!subs.is_empty());
        assert_eq!(subs.first().unwrap().sub.start_time(), t.start_time());
        assert_eq!(subs.last().unwrap().sub.end_time(), t.end_time());
        for w in subs.windows(2) {
            assert_eq!(
                w[0].sub.end_time(),
                w[1].sub.start_time(),
                "consecutive pieces must share their boundary"
            );
        }
    }

    #[test]
    fn min_duration_suppresses_tiny_pieces() {
        let t = traj(10); // one sample per minute
                          // Alternating votes would cut everywhere, but a 3-minute minimum
                          // duration keeps the pieces long.
        let votes = vec![0.0, 5.0, 0.0, 5.0, 0.0, 5.0, 0.0, 5.0, 0.0];
        let p = S2TParams {
            tau: 0.3,
            min_duration_ms: 180_000,
            ..S2TParams::default()
        };
        let subs = segment_trajectory(&t, &profile(votes), &p);
        for s in &subs {
            assert!(
                s.sub.duration().millis() >= 180_000,
                "piece shorter than the minimum duration: {}",
                s.sub.duration()
            );
        }
    }

    #[test]
    fn zero_votes_everywhere_is_one_outlier_piece() {
        let t = traj(8);
        let subs = segment_trajectory(&t, &profile(vec![0.0; 7]), &params());
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].mean_vote, 0.0);
    }

    #[test]
    fn representativeness_prefers_long_and_highly_voted() {
        let t = traj(10);
        let subs = segment_trajectory(&t, &profile(vec![4.0; 9]), &params());
        let long_high = subs[0].representativeness();

        let t2 = traj(3);
        let p2 = VotingProfile {
            trajectory_id: 1,
            trajectory_index: 0,
            votes: vec![4.0, 4.0],
        };
        let subs2 = segment_trajectory(&t2, &p2, &params());
        let short_high = subs2[0].representativeness();
        assert!(long_high > short_high);
    }

    #[test]
    fn segment_all_concatenates_per_trajectory_results() {
        let t1 = traj(6);
        let mut t2 = traj(6);
        t2 = Trajectory::new(2, 2, t2.points().to_vec()).unwrap();
        let profiles = vec![
            profile(vec![1.0; 5]),
            VotingProfile {
                trajectory_id: 2,
                trajectory_index: 1,
                votes: vec![2.0; 5],
            },
        ];
        let all = segment_all(&[t1, t2], &profiles, &params());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].sub.trajectory_id, 1);
        assert_eq!(all[1].sub.trajectory_id, 2);
    }
}
