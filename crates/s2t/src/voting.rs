//! The voting step of NaTS.
//!
//! "During the adopted voting process each 3D trajectory segment of a given
//! trajectory is voted by other trajectories w.r.t. their mutual distance.
//! The voting received by each segment is a value ranging from 0 to N (N
//! being the cardinality of the MOD) that has the physical meaning of how
//! many trajectories co-move with that trajectory for a certain period of
//! time." (ICDE 2018, §II.A)
//!
//! The contribution of voter trajectory `s` to segment `e` is a truncated
//! Gaussian kernel of their time-synchronized distance:
//!
//! ```text
//! vote_s(e) = exp(-d²(e, s) / (2σ²))   if d(e, s) ≤ cutoff(σ),  else 0
//! d(e, s)   = min over segments e' of s alive during e of
//!             mean synchronized distance(e, e')
//! ```
//!
//! Two implementations are provided with identical semantics:
//!
//! * [`indexed_voting`] prunes candidate voters with the pg3D-Rtree
//!   (`hermes-gist`), visiting only segments whose inflated MBB intersects
//!   the voted segment — the in-DBMS fast path of the paper;
//! * [`naive_voting`] compares every pair of segments — the
//!   "corresponding PostgreSQL functions" baseline of experiment E1.
//!
//! Both fan out over trajectories through a [`hermes_exec::Executor`]
//! (`*_with` variants): each trajectory's votes depend only on the immutable
//! input, so the profiles are computed in parallel and collected in input
//! order — parallel output is bit-identical to serial.

use crate::params::S2TParams;
use hermes_exec::Executor;
use hermes_gist::RTree3D;
use hermes_trajectory::{Trajectory, TrajectoryId};

/// Per-trajectory voting descriptor: one value per segment.
#[derive(Debug, Clone, PartialEq)]
pub struct VotingProfile {
    /// The trajectory these votes describe.
    pub trajectory_id: TrajectoryId,
    /// Index of the trajectory in the input slice (kept so later phases can
    /// find the trajectory without a lookup table).
    pub trajectory_index: usize,
    /// One vote value per segment, in `[0, N-1]`.
    pub votes: Vec<f64>,
}

impl VotingProfile {
    /// Mean vote over all segments (0 for an empty profile).
    pub fn mean(&self) -> f64 {
        if self.votes.is_empty() {
            0.0
        } else {
            self.votes.iter().sum::<f64>() / self.votes.len() as f64
        }
    }

    /// Maximum vote over all segments.
    ///
    /// Convention: an **empty profile reports `0.0`**, consistent with
    /// [`VotingProfile::mean`] — a trajectory with no segments received no
    /// votes. Votes are non-negative by construction (sums of Gaussian
    /// kernel values), so `0.0` is also the true infimum of the vote range.
    pub fn max(&self) -> f64 {
        if self.votes.is_empty() {
            0.0
        } else {
            self.votes.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }
}

/// Reference to one segment of one trajectory, stored in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegRef {
    traj_index: usize,
    seg_index: usize,
}

/// A 3D R-tree over every segment of a trajectory collection.
pub struct SegmentIndex {
    rtree: RTree3D<SegRef>,
    num_segments: usize,
}

impl SegmentIndex {
    /// Bulk-loads the index from all segments of `trajectories`.
    pub fn build(trajectories: &[Trajectory]) -> Self {
        // Pre-size with the exact segment count: the collection pass below
        // appends once per segment, so growth doubling never kicks in.
        let total: usize = trajectories.iter().map(|t| t.num_segments()).sum();
        let mut items = Vec::with_capacity(total);
        for (ti, traj) in trajectories.iter().enumerate() {
            for si in 0..traj.num_segments() {
                let seg = traj.segment(si);
                items.push((
                    seg.mbb(),
                    SegRef {
                        traj_index: ti,
                        seg_index: si,
                    },
                ));
            }
        }
        let num_segments = items.len();
        SegmentIndex {
            rtree: RTree3D::bulk_load(items),
            num_segments,
        }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        self.num_segments
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.num_segments == 0
    }
}

/// Gaussian kernel with a hard cutoff; every implementation (naive, indexed,
/// arena) shares it so their results are bit-identical.
pub(crate) fn kernel(distance: f64, sigma: f64, cutoff: f64) -> f64 {
    if distance > cutoff {
        0.0
    } else {
        (-(distance * distance) / (2.0 * sigma * sigma)).exp()
    }
}

thread_local! {
    /// Best (minimum) distance per candidate voter trajectory, reused across
    /// every trajectory a thread votes. Invariant: all entries are
    /// `f64::INFINITY` between uses — each segment resets exactly the
    /// entries it touched — so a worker picks it up clean without an O(n)
    /// refill per trajectory.
    static BEST_PER_VOTER: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Restores the scratch invariant if the voting loop unwinds mid-segment:
/// the pool catches task panics and keeps the worker thread alive, so a
/// half-reset scratch would silently corrupt every later query on that
/// thread. The refill is O(n) but runs only on the panic path.
struct ScratchGuard<'a> {
    scratch: &'a mut [f64],
    completed: bool,
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.scratch.fill(f64::INFINITY);
        }
    }
}

/// Computes the votes of one trajectory against the indexed collection.
/// Scratch lives in thread-locals, so concurrent tasks never share state
/// while each worker still reuses its allocations across trajectories.
fn vote_trajectory_indexed(
    ti: usize,
    traj: &Trajectory,
    trajectories: &[Trajectory],
    index: &SegmentIndex,
    params: &S2TParams,
    cutoff: f64,
) -> VotingProfile {
    BEST_PER_VOTER.with(|scratch| {
        let mut best_per_voter = scratch.borrow_mut();
        if best_per_voter.len() < trajectories.len() {
            best_per_voter.resize(trajectories.len(), f64::INFINITY);
        }
        let mut guard = ScratchGuard {
            scratch: &mut best_per_voter,
            completed: false,
        };
        let profile = vote_trajectory_indexed_inner(
            ti,
            traj,
            trajectories,
            index,
            params,
            cutoff,
            &mut *guard.scratch,
        );
        guard.completed = true;
        profile
    })
}

fn vote_trajectory_indexed_inner(
    ti: usize,
    traj: &Trajectory,
    trajectories: &[Trajectory],
    index: &SegmentIndex,
    params: &S2TParams,
    cutoff: f64,
    best_per_voter: &mut [f64],
) -> VotingProfile {
    let mut touched: Vec<usize> = Vec::new();
    let mut votes = Vec::with_capacity(traj.num_segments());
    for si in 0..traj.num_segments() {
        let seg = traj.segment(si);
        let window = seg.mbb().inflate(cutoff, 0);

        index.rtree.for_each_intersecting(&window, |_, r| {
            if r.traj_index == ti {
                return;
            }
            let other_seg = trajectories[r.traj_index].segment(r.seg_index);
            if let Some(d) = seg.mean_synchronized_distance(&other_seg) {
                if d < best_per_voter[r.traj_index] {
                    if best_per_voter[r.traj_index].is_infinite() {
                        touched.push(r.traj_index);
                    }
                    best_per_voter[r.traj_index] = d;
                }
            }
        });

        // Canonical summation order (ascending voter index): the floating
        // sum must not depend on which order the R-tree surfaced candidates,
        // so every voting implementation — naive enumeration, this one, and
        // the arena/packed hot path — produces bit-identical votes.
        touched.sort_unstable();
        let mut vote = 0.0;
        for &voter in touched.iter() {
            vote += kernel(best_per_voter[voter], params.sigma, cutoff);
            best_per_voter[voter] = f64::INFINITY;
        }
        touched.clear();
        votes.push(vote);
    }
    VotingProfile {
        trajectory_id: traj.id,
        trajectory_index: ti,
        votes,
    }
}

/// Index-accelerated voting: for each segment, only trajectories with a
/// segment inside the cutoff-inflated MBB are evaluated. Serial shorthand
/// for [`indexed_voting_with`].
pub fn indexed_voting(
    trajectories: &[Trajectory],
    index: &SegmentIndex,
    params: &S2TParams,
) -> Vec<VotingProfile> {
    indexed_voting_with(trajectories, index, params, &Executor::serial())
}

/// [`indexed_voting`] fanned out over trajectories on `exec`. Profiles come
/// back in input order and every vote is computed by exactly one task, so
/// the result is bit-identical to the serial path.
pub fn indexed_voting_with(
    trajectories: &[Trajectory],
    index: &SegmentIndex,
    params: &S2TParams,
    exec: &Executor,
) -> Vec<VotingProfile> {
    let cutoff = params.voting_cutoff_radius();
    exec.map(trajectories, |ti, traj| {
        vote_trajectory_indexed(ti, traj, trajectories, index, params, cutoff)
    })
}

/// The votes of one trajectory under the quadratic enumeration.
fn vote_trajectory_naive(
    ti: usize,
    traj: &Trajectory,
    trajectories: &[Trajectory],
    params: &S2TParams,
    cutoff: f64,
) -> VotingProfile {
    let mut votes = Vec::with_capacity(traj.num_segments());
    for si in 0..traj.num_segments() {
        let seg = traj.segment(si);
        let mut vote = 0.0;
        for (tj, other) in trajectories.iter().enumerate() {
            if tj == ti {
                continue;
            }
            let mut best = f64::INFINITY;
            for sj in 0..other.num_segments() {
                let other_seg = other.segment(sj);
                if let Some(d) = seg.mean_synchronized_distance(&other_seg) {
                    if d < best {
                        best = d;
                    }
                }
            }
            if best.is_finite() {
                vote += kernel(best, params.sigma, cutoff);
            }
        }
        votes.push(vote);
    }
    VotingProfile {
        trajectory_id: traj.id,
        trajectory_index: ti,
        votes,
    }
}

/// Quadratic voting without any index: every segment is compared against
/// every segment of every other trajectory. Semantics are identical to
/// [`indexed_voting`]; only the candidate enumeration differs.
pub fn naive_voting(trajectories: &[Trajectory], params: &S2TParams) -> Vec<VotingProfile> {
    naive_voting_with(trajectories, params, &Executor::serial())
}

/// [`naive_voting`] fanned out over trajectories on `exec`.
pub fn naive_voting_with(
    trajectories: &[Trajectory],
    params: &S2TParams,
    exec: &Executor,
) -> Vec<VotingProfile> {
    let cutoff = params.voting_cutoff_radius();
    exec.map(trajectories, |ti, traj| {
        vote_trajectory_naive(ti, traj, trajectories, params, cutoff)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::{Point, Timestamp};

    /// A straight trajectory along x at constant speed, offset by `y0`, with
    /// optional time offset.
    fn line(id: u64, y0: f64, t0: i64, n: usize) -> Trajectory {
        Trajectory::new(
            id,
            id,
            (0..n)
                .map(|i| Point::new(i as f64 * 10.0, y0, Timestamp(t0 + i as i64 * 10_000)))
                .collect(),
        )
        .unwrap()
    }

    fn params(sigma: f64) -> S2TParams {
        S2TParams {
            sigma,
            ..S2TParams::default()
        }
    }

    #[test]
    fn co_moving_trajectories_vote_for_each_other() {
        // Three objects moving together, one far away.
        let trajs = vec![
            line(0, 0.0, 0, 10),
            line(1, 5.0, 0, 10),
            line(2, 10.0, 0, 10),
            line(3, 100_000.0, 0, 10),
        ];
        let p = params(20.0);
        let profiles = naive_voting(&trajs, &p);
        // The co-moving ones receive close to 2 votes on every segment.
        for prof in &profiles[..3] {
            assert!(prof.mean() > 1.5, "expected ~2 votes, got {}", prof.mean());
        }
        // The isolated one receives essentially nothing.
        assert!(profiles[3].mean() < 0.01);
    }

    #[test]
    fn temporally_disjoint_objects_do_not_vote() {
        // Same path, but the second object flies it a day later.
        let trajs = vec![line(0, 0.0, 0, 10), line(1, 0.0, 86_400_000, 10)];
        let profiles = naive_voting(&trajs, &params(20.0));
        assert!(profiles[0].mean() < 1e-12);
        assert!(profiles[1].mean() < 1e-12);
    }

    #[test]
    fn votes_are_bounded_by_mod_cardinality() {
        let trajs: Vec<Trajectory> = (0..6).map(|i| line(i, i as f64, 0, 8)).collect();
        let profiles = naive_voting(&trajs, &params(50.0));
        for prof in &profiles {
            assert_eq!(prof.votes.len(), 7);
            for &v in &prof.votes {
                assert!((0.0..=5.0 + 1e-9).contains(&v));
            }
            assert!(prof.max() <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn indexed_voting_matches_naive() {
        let mut trajs = Vec::new();
        // Two co-moving groups plus a loner, with varied time offsets.
        for i in 0..4 {
            trajs.push(line(i, i as f64 * 8.0, 0, 12));
        }
        for i in 4..7 {
            trajs.push(line(i, 500.0 + i as f64 * 8.0, 30_000, 12));
        }
        trajs.push(line(7, 10_000.0, 0, 12));

        let p = params(25.0);
        let index = SegmentIndex::build(&trajs);
        assert_eq!(index.len(), 8 * 11);
        let fast = indexed_voting(&trajs, &index, &p);
        let slow = naive_voting(&trajs, &p);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_eq!(f.trajectory_id, s.trajectory_id);
            assert_eq!(f.votes.len(), s.votes.len());
            for (a, b) in f.votes.iter().zip(s.votes.iter()) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "vote mismatch for trajectory {}: {a} vs {b}",
                    f.trajectory_id
                );
            }
        }
    }

    #[test]
    fn closer_neighbours_yield_higher_votes() {
        let trajs = vec![
            line(0, 0.0, 0, 10),
            line(1, 10.0, 0, 10),
            line(2, 40.0, 0, 10),
        ];
        let profiles = naive_voting(&trajs, &params(30.0));
        // Trajectory 1 is near both others; trajectory 2 is near only one and
        // farther away, so its votes must be lower.
        assert!(profiles[1].mean() > profiles[2].mean());
    }

    #[test]
    fn empty_and_single_trajectory_inputs() {
        let p = params(10.0);
        assert!(naive_voting(&[], &p).is_empty());
        let single = vec![line(0, 0.0, 0, 5)];
        let profiles = naive_voting(&single, &p);
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].votes.iter().all(|&v| v == 0.0));
        let index = SegmentIndex::build(&single);
        let fast = indexed_voting(&single, &index, &p);
        assert_eq!(fast, profiles);
    }

    #[test]
    fn parallel_voting_is_bit_identical_to_serial() {
        let trajs: Vec<Trajectory> = (0..12).map(|i| line(i, i as f64 * 6.0, 0, 10)).collect();
        let p = params(25.0);
        let index = SegmentIndex::build(&trajs);
        let serial_fast = indexed_voting(&trajs, &index, &p);
        let serial_slow = naive_voting(&trajs, &p);
        for threads in [2usize, 4] {
            let exec = Executor::new(hermes_exec::ExecPolicy { threads });
            // Exact equality, not approximate: the parallel fan-out must not
            // change a single bit of any vote.
            assert_eq!(indexed_voting_with(&trajs, &index, &p, &exec), serial_fast);
            assert_eq!(naive_voting_with(&trajs, &p, &exec), serial_slow);
        }
    }

    #[test]
    fn voting_profile_statistics() {
        let prof = VotingProfile {
            trajectory_id: 1,
            trajectory_index: 0,
            votes: vec![1.0, 3.0, 2.0],
        };
        assert!((prof.mean() - 2.0).abs() < 1e-12);
        assert_eq!(prof.max(), 3.0);
        let empty = VotingProfile {
            trajectory_id: 2,
            trajectory_index: 1,
            votes: vec![],
        };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.max(), 0.0);
    }

    #[test]
    fn empty_and_singleton_profiles_agree_on_the_zero_convention() {
        // Documented convention: mean and max both report 0.0 for an empty
        // profile, and for a singleton both report the single vote.
        let empty = VotingProfile {
            trajectory_id: 9,
            trajectory_index: 0,
            votes: vec![],
        };
        assert_eq!(empty.mean(), empty.max());
        assert_eq!(empty.max(), 0.0);
        for v in [0.0, 0.25, 4.5] {
            let singleton = VotingProfile {
                trajectory_id: 10,
                trajectory_index: 1,
                votes: vec![v],
            };
            assert_eq!(singleton.mean(), v);
            assert_eq!(singleton.max(), v);
        }
    }
}
