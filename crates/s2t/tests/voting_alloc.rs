//! Proof that the arena voting inner loop is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after one warm-up
//! pass (which sizes the thread-local-free explicit scratch), voting every
//! trajectory of a co-moving workload again must perform **zero** heap
//! allocations. This pins the hot-path contract the SoA rewrite exists for:
//! no `Vec` per R-tree probe, no `Vec<Timestamp>` per distance pair, no
//! `Segment` materialization — just lane reads and in-place scratch.
//!
//! The counter is **per-thread** (a const-initialized thread-local `Cell`,
//! which itself never allocates), so allocations made concurrently by the
//! libtest harness threads cannot pollute the measurement.

use hermes_s2t::{
    vote_trajectory_into, ArenaVoteScratch, PackedSegmentIndex, S2TParams, SegmentArena,
};
use hermes_trajectory::{Point, Timestamp, Trajectory};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn local_allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn line(id: u64, y0: f64, t0: i64, n: usize) -> Trajectory {
    Trajectory::new(
        id,
        id,
        (0..n)
            .map(|i| Point::new(i as f64 * 10.0, y0, Timestamp(t0 + i as i64 * 10_000)))
            .collect(),
    )
    .unwrap()
}

#[test]
fn voting_inner_loop_performs_zero_heap_allocations() {
    // A workload where every trajectory has real voters (co-moving groups
    // with staggered starts), so the loop exercises candidate scans, kernel
    // evaluations and vote summation — not just empty queries.
    let mut trajs = Vec::new();
    for i in 0..10u64 {
        trajs.push(line(i, i as f64 * 8.0, (i as i64 % 3) * 5_000, 24));
    }
    for i in 10..16u64 {
        trajs.push(line(i, 600.0 + i as f64 * 8.0, 20_000, 24));
    }
    let params = S2TParams {
        sigma: 25.0,
        ..S2TParams::default()
    };
    let cutoff = params.voting_cutoff_radius();

    let arena = SegmentArena::build(&trajs);
    let index = PackedSegmentIndex::build(&arena);
    let mut scratch = ArenaVoteScratch::for_arena(&arena);
    let max_segments = (0..arena.num_trajectories())
        .map(|ti| arena.segments_of(ti).len())
        .max()
        .unwrap();
    let mut votes: Vec<f64> = Vec::with_capacity(max_segments);

    // Warm-up pass: results recorded for the later equivalence check.
    let mut reference: Vec<Vec<f64>> = Vec::new();
    for ti in 0..arena.num_trajectories() {
        vote_trajectory_into(
            &arena,
            &index,
            &params,
            cutoff,
            ti,
            &mut scratch,
            &mut votes,
        );
        reference.push(votes.clone());
    }
    assert!(
        reference.iter().any(|v| v.iter().any(|&x| x > 0.5)),
        "the workload must produce real votes for the test to mean anything"
    );

    // Measured passes: zero allocations across the entire voting loop.
    let before = local_allocations();
    for _round in 0..3 {
        for ti in 0..arena.num_trajectories() {
            vote_trajectory_into(
                &arena,
                &index,
                &params,
                cutoff,
                ti,
                &mut scratch,
                &mut votes,
            );
        }
    }
    let after = local_allocations();
    assert_eq!(
        after - before,
        0,
        "voting must not allocate with a pre-sized scratch"
    );

    // And the measured passes still produce the same votes bit for bit.
    for (ti, expected) in reference.iter().enumerate() {
        vote_trajectory_into(
            &arena,
            &index,
            &params,
            cutoff,
            ti,
            &mut scratch,
            &mut votes,
        );
        assert_eq!(&votes, expected, "trajectory {ti}");
    }
}
