//! `hermes-serve` — the Hermes network server.
//!
//! ```text
//! hermes-serve                          # listen on 127.0.0.1:8650
//! hermes-serve --addr 0.0.0.0:9000     # explicit bind address
//! hermes-serve --addr 127.0.0.1:0      # ephemeral port (printed on stdout)
//! hermes-serve --port 0                # shorthand for --addr 127.0.0.1:0
//! hermes-serve --max-connections 16    # cap simultaneous connections
//! hermes-serve --threads 8             # intra-query compute threads
//! hermes-serve --data-dir ./hermes     # durable engine: recover on start,
//!                                      # checkpoint on SIGTERM/SIGINT
//! ```
//!
//! Without `--data-dir` the server starts with an empty in-memory engine;
//! clients create datasets and load data over the wire (`hermes-cli load
//! data.csv --connect host:port`, or `HermesClient::ingest`) and everything
//! is lost when the process exits. With `--data-dir` the engine recovers the
//! newest snapshot plus the write-ahead log on startup, journals every
//! mutation, and a graceful shutdown (SIGTERM or Ctrl-C) checkpoints before
//! exiting — clients can also run `CHECKPOINT;` at any time. See
//! `docs/STORAGE.md` for the on-disk formats and recovery semantics.
//!
//! The bound address is announced on stdout as `hermes-serve listening on
//! <addr>` — one line, fixed prefix, address last — so scripts (the CI smoke
//! tests, multi-shard launchers) can scrape the ephemeral port
//! machine-parseably: `sed -n 's/.*listening on //p'`. With `--metrics-addr`
//! a second line `hermes-serve metrics listening on <addr>` announces the
//! Prometheus endpoint the same way (see `docs/OBSERVABILITY.md`).

use hermes_core::{ExecPolicy, HermesEngine, SharedEngine};
use hermes_obs::serve_metrics;
use hermes_server::{Server, ServerConfig, ServerCore};
use std::io::Write;
use std::process::ExitCode;

const HELP: &str = "\
hermes-serve — the Hermes network server

USAGE:
    hermes-serve [--addr <host:port> | --port <n>] [--max-connections <n>]
                 [--threads <n>] [--data-dir <dir>]
                 [--metrics-addr <host:port>] [--slow-query-ms <n>]
                 [--core <event|threaded>] [--workers <n>]
                 [--max-pending <n>] [--deadline-ms <n>]

OPTIONS:
    --addr <host:port>       Bind address (default 127.0.0.1:8650; port 0
                             picks an ephemeral port)
    --port <n>               Shorthand for --addr 127.0.0.1:<n>; the bound
                             port is announced on stdout as
                             'hermes-serve listening on <addr>'
    --max-connections <n>    Simultaneous connection cap (default 64)
    --core <event|threaded>  Concurrency core: 'event' multiplexes every
                             socket on one readiness loop with a bounded
                             worker pool (default on unix); 'threaded'
                             spawns one OS thread per connection
    --workers <n>            Statement-executing worker threads under the
                             event core (default: sized from the machine)
    --max-pending <n>        Most admitted-but-unanswered requests across
                             all connections before further pipelined
                             requests get a typed backpressure error
                             (default 1024)
    --deadline-ms <n>        Answer any request not completed within n
                             milliseconds of arrival with a typed deadline
                             error instead of its late result
    --threads <n>            Intra-query compute threads for S2T/QuT/BUILD
                             INDEX (default: HERMES_THREADS or all cores;
                             1 = serial). Clients can change it at runtime
                             with SET threads = n;
    --data-dir <dir>         Durable engine over <dir>: recover snapshot +
                             WAL on start, journal every mutation, and
                             checkpoint on SIGTERM/SIGINT. Clients can also
                             run CHECKPOINT; at any time.
    --metrics-addr <h:p>     Serve the Prometheus text exposition of the
                             process metrics registry at GET /metrics on
                             this address (port 0 picks one; announced as
                             'hermes-serve metrics listening on <addr>')
    --slow-query-ms <n>      Log one structured JSON line to stderr (and
                             bump the slow_queries counter) for every
                             statement slower than n milliseconds
    -h, --help               Print this text
";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8650".to_string();
    let mut config = ServerConfig::default();
    let mut policy = ExecPolicy::from_env();
    let mut data_dir: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return fail("--addr requires a host:port value"),
            },
            "--port" => match args.next().and_then(|n| n.parse::<u16>().ok()) {
                Some(port) => addr = format!("127.0.0.1:{port}"),
                None => return fail("--port requires a port number (0 picks one)"),
            },
            "--max-connections" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.max_connections = n,
                _ => return fail("--max-connections requires a positive integer"),
            },
            "--core" => match args.next().as_deref() {
                Some("event") => config.core = ServerCore::Event,
                Some("threaded") => config.core = ServerCore::Threaded,
                _ => return fail("--core requires 'event' or 'threaded'"),
            },
            "--workers" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return fail("--workers requires a positive integer"),
            },
            "--max-pending" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.max_pending = n,
                _ => return fail("--max-pending requires a positive integer"),
            },
            "--deadline-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) => config.deadline_ms = Some(ms),
                None => return fail("--deadline-ms requires a millisecond count"),
            },
            "--threads" => match args
                .next()
                .and_then(|n| n.parse().ok())
                .map(ExecPolicy::new)
            {
                Some(Ok(p)) => policy = p,
                Some(Err(m)) => return fail(&format!("--{m}")),
                None => return fail("--threads requires a positive integer"),
            },
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = Some(dir),
                None => return fail("--data-dir requires a directory path"),
            },
            "--metrics-addr" => match args.next() {
                Some(a) => metrics_addr = Some(a),
                None => return fail("--metrics-addr requires a host:port value"),
            },
            "--slow-query-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(ms) => config.slow_query_ms = Some(ms),
                None => return fail("--slow-query-ms requires a millisecond count"),
            },
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'\n\n{HELP}")),
        }
    }

    let durable = data_dir.is_some();
    let engine = match &data_dir {
        Some(dir) => match HermesEngine::open_with_exec_policy(dir, policy) {
            Ok(engine) => {
                let stats = engine.stats();
                eprintln!(
                    "recovered {} dataset(s) from {dir} (snapshot {} B, wal {} B)",
                    stats.datasets, stats.snapshot_bytes, stats.wal_bytes
                );
                SharedEngine::new(engine)
            }
            Err(e) => return fail(&format!("cannot open data directory {dir}: {e}")),
        },
        None => SharedEngine::new(HermesEngine::with_exec_policy(policy)),
    };

    let server = match Server::bind(&addr, engine.clone(), config) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot bind {addr}: {e}")),
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(&format!("cannot resolve bound address: {e}")),
    };
    let handle = match server.spawn() {
        Ok(h) => h,
        Err(e) => return fail(&format!("cannot start the accept loop: {e}")),
    };
    println!("hermes-serve listening on {bound}");
    // Keep the scrape listener alive for the life of the process.
    let _metrics_handle = match &metrics_addr {
        Some(maddr) => match serve_metrics(maddr.as_str(), handle.registry()) {
            Ok(h) => {
                println!("hermes-serve metrics listening on {}", h.addr());
                Some(h)
            }
            Err(e) => return fail(&format!("cannot bind metrics address {maddr}: {e}")),
        },
        None => None,
    };
    let _ = std::io::stdout().flush();

    // Block until the process is asked to stop, then shut down gracefully:
    // stop accepting connections, and on a durable engine make the current
    // state the recovery point.
    wait_for_termination();
    eprintln!("hermes-serve: shutting down");
    handle.shutdown();
    if durable {
        match engine.with_write(|e| e.checkpoint()) {
            Ok(info) => eprintln!(
                "hermes-serve: checkpointed {} B (discarded {} B of wal) in {} ms",
                info.snapshot_bytes, info.wal_bytes_discarded, info.elapsed_ms
            ),
            Err(e) => return fail(&format!("shutdown checkpoint failed: {e}")),
        }
    }
    ExitCode::SUCCESS
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// Blocks until SIGTERM or SIGINT arrives (unix). Signal handlers may only
/// do async-signal-safe work, so the handler writes one byte into a
/// self-pipe and the main thread blocks reading it — the classic self-pipe
/// trick, built on the C library symbols std already links against.
#[cfg(unix)]
fn wait_for_termination() {
    use std::sync::atomic::{AtomicI32, Ordering};

    static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        let fd = WRITE_FD.load(Ordering::SeqCst);
        if fd >= 0 {
            let _ = unsafe { write(fd, b"x".as_ptr(), 1) };
        }
    }

    let mut fds = [-1i32; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        // No pipe, no graceful shutdown — behave like the pre-durability
        // server and simply run until killed.
        loop {
            std::thread::park();
        }
    }
    WRITE_FD.store(fds[1], Ordering::SeqCst);
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    let mut buf = [0u8; 1];
    loop {
        let n = unsafe { read(fds[0], buf.as_mut_ptr(), 1) };
        if n >= 1 {
            return;
        }
        // n < 0 is EINTR from the very signal we are waiting for (or a
        // spurious wakeup): retry, the handler's byte is (or will be) in
        // the pipe.
    }
}

/// Non-unix fallback: no signal plumbing, run until killed.
#[cfg(not(unix))]
fn wait_for_termination() {
    loop {
        std::thread::park();
    }
}
