//! `hermes-serve` — the Hermes network server.
//!
//! ```text
//! hermes-serve                          # listen on 127.0.0.1:8650
//! hermes-serve --addr 0.0.0.0:9000     # explicit bind address
//! hermes-serve --addr 127.0.0.1:0      # ephemeral port (printed on stdout)
//! hermes-serve --max-connections 16    # cap simultaneous connections
//! hermes-serve --threads 8             # intra-query compute threads
//! ```
//!
//! The server starts with an empty engine; clients create datasets and load
//! data over the wire (`hermes-cli load data.csv --connect host:port`, or
//! `HermesClient::ingest`). The bound address is announced on stdout as
//! `hermes-serve listening on <addr>` so scripts (like the CI smoke test)
//! can scrape the ephemeral port.

use hermes_core::{ExecPolicy, HermesEngine, SharedEngine};
use hermes_server::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;

const HELP: &str = "\
hermes-serve — the Hermes network server

USAGE:
    hermes-serve [--addr <host:port>] [--max-connections <n>] [--threads <n>]

OPTIONS:
    --addr <host:port>       Bind address (default 127.0.0.1:8650; port 0
                             picks an ephemeral port)
    --max-connections <n>    Simultaneous connection cap (default 64)
    --threads <n>            Intra-query compute threads for S2T/QuT/BUILD
                             INDEX (default: HERMES_THREADS or all cores;
                             1 = serial). Clients can change it at runtime
                             with SET threads = n;
    -h, --help               Print this text
";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8650".to_string();
    let mut config = ServerConfig::default();
    let mut policy = ExecPolicy::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return fail("--addr requires a host:port value"),
            },
            "--max-connections" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.max_connections = n,
                _ => return fail("--max-connections requires a positive integer"),
            },
            "--threads" => match args
                .next()
                .and_then(|n| n.parse().ok())
                .map(ExecPolicy::new)
            {
                Some(Ok(p)) => policy = p,
                Some(Err(m)) => return fail(&format!("--{m}")),
                None => return fail("--threads requires a positive integer"),
            },
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'\n\n{HELP}")),
        }
    }

    let engine = SharedEngine::new(HermesEngine::with_exec_policy(policy));
    let server = match Server::bind(&addr, engine, config) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot bind {addr}: {e}")),
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(&format!("cannot resolve bound address: {e}")),
    };
    println!("hermes-serve listening on {bound}");
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        return fail(&format!("server terminated: {e}"));
    }
    ExitCode::SUCCESS
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}
