//! [`HermesClient`]: the client side of the wire protocol, used by the CLI's
//! remote mode, the concurrency tests and the `e9_concurrent_clients` bench.

use crate::protocol::{read_response, write_request, DecodeError, Request, Response};
use hermes_sql::{QueryOutcome, Value};
use hermes_trajectory::Trajectory;
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// A statement prepared on the server, scoped to the connection that
/// prepared it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemotePrepared(pub u32);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (or could not be established).
    Io(io::Error),
    /// The server answered with an error (SQL error, capacity, …); the
    /// connection remains usable unless the server also closed it.
    Server(String),
    /// The server sent a response this request cannot accept.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// A synchronous connection to a `hermes-serve` instance.
///
/// The request/response cycle is strictly alternating, so a client is
/// naturally `!Sync`; open one client per thread for concurrent load (the
/// server pairs each with its own session).
pub struct HermesClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl HermesClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HermesClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.writer, request)?;
        let (response, _) = read_response(&mut self.reader)?;
        if let Response::Error { message } = response {
            return Err(ClientError::Server(message));
        }
        Ok(response)
    }

    /// Parses and executes one statement on the server, returning the same
    /// typed [`QueryOutcome`] a local session would.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, ClientError> {
        let response = self.round_trip(&Request::Query {
            sql: sql.to_string(),
        })?;
        Ok(response.into_outcome()?)
    }

    /// Prepares a statement (placeholders allowed) on the server.
    pub fn prepare(&mut self, sql: &str) -> Result<RemotePrepared, ClientError> {
        match self.round_trip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::Prepared { handle } => Ok(RemotePrepared(handle)),
            other => Err(ClientError::Protocol(format!(
                "expected a Prepared response, got {other:?}"
            ))),
        }
    }

    /// Executes a prepared statement with `params` bound to `$1..$n`.
    pub fn execute_prepared(
        &mut self,
        handle: RemotePrepared,
        params: &[Value],
    ) -> Result<QueryOutcome, ClientError> {
        let response = self.round_trip(&Request::ExecutePrepared {
            handle: handle.0,
            params: params.to_vec(),
        })?;
        Ok(response.into_outcome()?)
    }

    /// Bulk-loads trajectories into `dataset` (created on first ingest),
    /// returning the number of trajectories the server accepted.
    ///
    /// Loads larger than one wire message allows are split transparently
    /// into multiple `Ingest` requests, so arbitrarily large datasets stream
    /// through the fixed [`MAX_MESSAGE_BYTES`](crate::MAX_MESSAGE_BYTES) cap.
    pub fn ingest(
        &mut self,
        dataset: &str,
        trajectories: &[Trajectory],
    ) -> Result<u64, ClientError> {
        // Encoded size: 20-byte trajectory header + 24 bytes per point.
        // Batch under half the message cap to leave generous framing slack.
        const BATCH_BUDGET: usize = (crate::MAX_MESSAGE_BYTES as usize) / 2;
        let mut total = 0u64;
        let mut batch_start = 0;
        let mut batch_bytes = 0usize;
        for (i, t) in trajectories.iter().enumerate() {
            let encoded = 20 + 24 * t.points().len();
            if batch_bytes + encoded > BATCH_BUDGET && i > batch_start {
                total += self.ingest_batch(dataset, &trajectories[batch_start..i])?;
                batch_start = i;
                batch_bytes = 0;
            }
            batch_bytes += encoded;
        }
        total += self.ingest_batch(dataset, &trajectories[batch_start..])?;
        Ok(total)
    }

    fn ingest_batch(
        &mut self,
        dataset: &str,
        trajectories: &[Trajectory],
    ) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Ingest {
            dataset: dataset.to_string(),
            trajectories: trajectories.to_vec(),
        })? {
            Response::Command(status) => Ok(status.affected),
            other => Err(ClientError::Protocol(format!(
                "expected a Command response, got {other:?}"
            ))),
        }
    }
}
