//! [`HermesClient`]: the client side of the wire protocol, used by the CLI's
//! remote mode, the concurrency tests and the `e9_concurrent_clients` bench.

use crate::protocol::{
    read_handshake, read_response, write_handshake, write_request_traced, DecodeError, ErrorCode,
    PartialInfo, Request, Response,
};
use hermes_obs::TraceContext;
use hermes_retratree::QutPartial;
use hermes_sql::{QueryOutcome, Value};
use hermes_trajectory::Trajectory;
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A statement prepared on the server, scoped to the connection that
/// prepared it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemotePrepared(pub u32);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (or could not be established).
    Io(io::Error),
    /// The server answered with an error frame; the connection remains
    /// usable unless the server also closed it (capacity rejections do).
    Server {
        /// The failure class from the wire (v5 error frames).
        code: ErrorCode,
        /// Human-readable reason.
        message: String,
    },
    /// The server sent a response this request cannot accept.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server { message, .. } => write!(f, "server error: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// Connection-establishment tunables for [`HermesClient::connect_with`].
///
/// The defaults reproduce the historical behaviour minus the foot-guns: a
/// refused or hung server no longer blocks forever, and a server that is
/// still coming up (the common race when scripts spawn shards) is retried a
/// few times with a growing pause.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read timeout applied to the connection (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Extra connect attempts after the first failure.
    pub retries: u32,
    /// Pause before the first retry; doubles on every further retry.
    pub backoff: Duration,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
            retries: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// A synchronous connection to a `hermes-serve` instance.
///
/// Requests may be pipelined: [`send`](HermesClient::send) /
/// [`receive`](HermesClient::receive) (or [`pipeline`](HermesClient::pipeline))
/// keep several requests in flight on one connection, and the server answers
/// strictly in order. A client is still naturally `!Sync`; open one client
/// per thread for concurrent load (the server pairs each with its own
/// session).
///
/// The client tracks its own stream health: [`is_clean`](HermesClient::is_clean)
/// is false while responses are outstanding or after the stream broke
/// mid-frame, so pools can refuse to reuse a desynchronized connection.
pub struct HermesClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    bytes_out: u64,
    bytes_in: u64,
    trace: Option<TraceContext>,
    /// Requests sent whose responses have not been read yet.
    pending: u32,
    /// Set once the stream can no longer be trusted to be frame-aligned:
    /// an I/O or decode failure mid-exchange, or a `Capacity` rejection
    /// (the server closes the connection behind it).
    poisoned: bool,
}

impl HermesClient {
    /// Connects to a server with [`ConnectOptions::default`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, &ConnectOptions::default())
    }

    /// Connects to a server: resolves `addr`, dials with a per-attempt
    /// timeout and bounded exponential-backoff retries, then performs the
    /// protocol handshake (the server speaks first; an incompatible peer is
    /// reported as `InvalidData`, not a decode failure later on).
    pub fn connect_with(addr: impl ToSocketAddrs, opts: &ConnectOptions) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut pause = opts.backoff;
        let mut last_err = None;
        for attempt in 0..=opts.retries {
            if attempt > 0 {
                std::thread::sleep(pause);
                pause = pause.saturating_mul(2);
            }
            match addrs
                .iter()
                .find_map(|a| TcpStream::connect_timeout(a, opts.connect_timeout).ok())
            {
                Some(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(opts.read_timeout)?;
                    let mut reader = BufReader::new(stream.try_clone()?);
                    let mut writer = BufWriter::new(stream);
                    read_handshake(&mut reader)?;
                    write_handshake(&mut writer)?;
                    return Ok(HermesClient {
                        reader,
                        writer,
                        bytes_out: 0,
                        bytes_in: 0,
                        trace: None,
                        pending: 0,
                        poisoned: false,
                    });
                }
                None => {
                    last_err = Some(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!(
                            "could not connect to {addrs:?} within {:?}",
                            opts.connect_timeout
                        ),
                    ));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("connect failed")))
    }

    /// Cumulative bytes this client has written to the wire.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Cumulative bytes this client has read from the wire.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Sets the [`TraceContext`] attached to every subsequent request (the
    /// protocol v3 trace field), until cleared with `set_trace(None)`. The
    /// coordinator sets a per-shard-call context so the shard's spans slot
    /// into the distributed trace tree.
    pub fn set_trace(&mut self, trace: Option<TraceContext>) {
        self.trace = trace;
    }

    /// True when the connection is safe to reuse for a fresh request:
    /// every sent request has had its response read and the stream never
    /// broke mid-frame. Pools must drop unclean connections instead of
    /// checking them back in — a desynchronized stream would decode the
    /// previous request's leftover bytes as the next answer.
    pub fn is_clean(&self) -> bool {
        self.pending == 0 && !self.poisoned
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.receive()
    }

    /// Writes (and flushes) one request without waiting for its response —
    /// the pipelining half-step. The server answers every pipelined request
    /// in order, so callers must balance each `send` with one
    /// [`receive`](HermesClient::receive).
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        match write_request_traced(&mut self.writer, request, self.trace) {
            Ok(n) => {
                self.bytes_out += n;
                self.pending += 1;
                Ok(())
            }
            Err(e) => {
                // The frame may be partially on the wire; nothing sent after
                // this point can be framed correctly.
                self.poisoned = true;
                Err(e.into())
            }
        }
    }

    /// Reads the next in-order response, mapping server error frames to
    /// [`ClientError::Server`].
    pub fn receive(&mut self) -> Result<Response, ClientError> {
        match self.receive_raw()? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// Reads the next in-order response with `Error` frames returned as
    /// values (the coordinator needs to distinguish "the shard answered with
    /// an error" from "the connection to the shard broke").
    pub fn receive_raw(&mut self) -> Result<Response, ClientError> {
        match read_response(&mut self.reader) {
            Ok((response, n_in)) => {
                self.bytes_in += n_in;
                self.pending = self.pending.saturating_sub(1);
                if let Response::Error { code, .. } = &response {
                    if *code == ErrorCode::Capacity {
                        // The server closes the connection behind a capacity
                        // rejection; never hand this stream out again.
                        self.poisoned = true;
                    }
                }
                Ok(response)
            }
            Err(e) => {
                // A torn or garbled frame: the stream position is unknown.
                self.poisoned = true;
                Err(e.into())
            }
        }
    }

    /// One raw request/response exchange. Server-side `Error` responses come
    /// back as `Ok(Response::Error { .. })` here — see
    /// [`receive_raw`](HermesClient::receive_raw).
    pub fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.receive_raw()
    }

    /// Pipelines a batch: writes every request before reading the first
    /// response, then collects the in-order responses. `Error` frames come
    /// back as values in their slot; only a broken connection returns `Err`.
    /// One round trip instead of `requests.len()` — fan-out latency becomes
    /// bounded by the slowest statement, not the sum.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        for request in requests {
            self.send(request)?;
        }
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.receive_raw()?);
        }
        Ok(responses)
    }

    /// Requests the shard's owned share of `QUT(W)` (see `docs/SHARDING.md`).
    pub fn qut_partial(
        &mut self,
        dataset: &str,
        owned: (i64, i64),
        window: (i64, i64),
        overrides: Option<(f64, f64, i64)>,
    ) -> Result<QutPartial, ClientError> {
        match self.round_trip(&Request::QutPartial {
            dataset: dataset.to_string(),
            owned_start_ms: owned.0,
            owned_end_ms: owned.1,
            wi: window.0,
            we: window.1,
            overrides,
        })? {
            Response::QutPartial(partial) => Ok(partial),
            other => Err(ClientError::Protocol(format!(
                "expected a QutPartial response, got {other:?}"
            ))),
        }
    }

    /// Requests the shard's owned share of a window count.
    pub fn range_partial(
        &mut self,
        dataset: &str,
        owned: (i64, i64),
        window: (i64, i64),
    ) -> Result<u64, ClientError> {
        match self.round_trip(&Request::RangePartial {
            dataset: dataset.to_string(),
            owned_start_ms: owned.0,
            owned_end_ms: owned.1,
            wi: window.0,
            we: window.1,
        })? {
            Response::Count(n) => Ok(n),
            other => Err(ClientError::Protocol(format!(
                "expected a Count response, got {other:?}"
            ))),
        }
    }

    /// Requests the raw trajectories owned by the shard.
    pub fn gather_trajectories(
        &mut self,
        dataset: &str,
        owned: (i64, i64),
    ) -> Result<Vec<Trajectory>, ClientError> {
        match self.round_trip(&Request::GatherTrajectories {
            dataset: dataset.to_string(),
            owned_start_ms: owned.0,
            owned_end_ms: owned.1,
        })? {
            Response::Trajectories(trajectories) => Ok(trajectories),
            other => Err(ClientError::Protocol(format!(
                "expected a Trajectories response, got {other:?}"
            ))),
        }
    }

    /// Requests the shard's owned share of `INFO(dataset)`.
    pub fn info_partial(
        &mut self,
        dataset: &str,
        owned: (i64, i64),
    ) -> Result<PartialInfo, ClientError> {
        match self.round_trip(&Request::InfoPartial {
            dataset: dataset.to_string(),
            owned_start_ms: owned.0,
            owned_end_ms: owned.1,
        })? {
            Response::InfoPartial(info) => Ok(info),
            other => Err(ClientError::Protocol(format!(
                "expected an InfoPartial response, got {other:?}"
            ))),
        }
    }

    /// Parses and executes one statement on the server, returning the same
    /// typed [`QueryOutcome`] a local session would.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, ClientError> {
        let response = self.round_trip(&Request::Query {
            sql: sql.to_string(),
        })?;
        Ok(response.into_outcome()?)
    }

    /// Prepares a statement (placeholders allowed) on the server.
    pub fn prepare(&mut self, sql: &str) -> Result<RemotePrepared, ClientError> {
        match self.round_trip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::Prepared { handle } => Ok(RemotePrepared(handle)),
            other => Err(ClientError::Protocol(format!(
                "expected a Prepared response, got {other:?}"
            ))),
        }
    }

    /// Executes a prepared statement with `params` bound to `$1..$n`.
    pub fn execute_prepared(
        &mut self,
        handle: RemotePrepared,
        params: &[Value],
    ) -> Result<QueryOutcome, ClientError> {
        let response = self.round_trip(&Request::ExecutePrepared {
            handle: handle.0,
            params: params.to_vec(),
        })?;
        Ok(response.into_outcome()?)
    }

    /// Bulk-loads trajectories into `dataset` (created on first ingest),
    /// returning the number of trajectories the server accepted.
    ///
    /// Loads larger than one wire message allows are split transparently
    /// into multiple `Ingest` requests, so arbitrarily large datasets stream
    /// through the fixed [`MAX_MESSAGE_BYTES`](crate::MAX_MESSAGE_BYTES) cap.
    /// The batches are pipelined: every request is written before the first
    /// response is awaited, so a multi-batch load costs one round trip.
    pub fn ingest(
        &mut self,
        dataset: &str,
        trajectories: &[Trajectory],
    ) -> Result<u64, ClientError> {
        // Encoded size: 20-byte trajectory header + 24 bytes per point.
        // Batch under half the message cap to leave generous framing slack.
        const BATCH_BUDGET: usize = (crate::MAX_MESSAGE_BYTES as usize) / 2;
        let mut batches = 0u64;
        let mut batch_start = 0;
        let mut batch_bytes = 0usize;
        for (i, t) in trajectories.iter().enumerate() {
            let encoded = 20 + 24 * t.points().len();
            if batch_bytes + encoded > BATCH_BUDGET && i > batch_start {
                self.send(&Request::Ingest {
                    dataset: dataset.to_string(),
                    trajectories: trajectories[batch_start..i].to_vec(),
                })?;
                batches += 1;
                batch_start = i;
                batch_bytes = 0;
            }
            batch_bytes += encoded;
        }
        self.send(&Request::Ingest {
            dataset: dataset.to_string(),
            trajectories: trajectories[batch_start..].to_vec(),
        })?;
        batches += 1;

        // Drain every pipelined response even after a failure — leaving
        // responses unread would desynchronize the connection for the next
        // request. The first failure wins; I/O errors abort (the stream is
        // gone anyway).
        let mut total = 0u64;
        let mut first_err = None;
        for _ in 0..batches {
            match self.receive() {
                Ok(Response::Command(status)) => total += status.affected,
                Ok(other) => {
                    first_err.get_or_insert(ClientError::Protocol(format!(
                        "expected a Command response, got {other:?}"
                    )));
                }
                Err(e @ ClientError::Io(_)) => return Err(e),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }
}
