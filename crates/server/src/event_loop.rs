//! The readiness-driven server core: one poller thread multiplexing every
//! socket, a bounded worker pool executing statements.
//!
//! ## Shape
//!
//! The loop thread owns all sockets and never executes a statement. It
//! accepts connections, reads whatever bytes are ready, slices them into
//! frames, and queues parsed requests per connection. Statements run on a
//! small worker pool; finished responses come back over a completion channel
//! (a `UnixStream` pair doubling as the wakeup byte) and are flushed as the
//! sockets drain. A blocked worker therefore stalls *queries*, never the
//! loop: ten thousand idle connections cost file descriptors and buffers,
//! not OS threads.
//!
//! ## Sessions travel with jobs
//!
//! A connection's [`Session`] (and its prepared-statement table) moves into
//! the worker with each dispatched job and comes back with the completion,
//! so at most one statement per connection executes at a time — exactly the
//! ordering the protocol promises — while different connections execute on
//! different workers freely. Reads pin the engine's published snapshot
//! epoch, so a `BUILD INDEX` on one worker never blocks queries on another.
//!
//! ## Admission control
//!
//! Three bounds keep a flood from turning into unbounded memory:
//!
//! - per-connection pipeline depth (`max_conn_pending`): past it the loop
//!   stops reading that socket, pushing backpressure into TCP;
//! - global pending work (`max_pending`): past it newly parsed requests are
//!   answered immediately with a typed [`ErrorCode::Backpressure`] error,
//!   in pipeline order, without executing;
//! - the connection cap (`max_connections`): over-cap clients complete the
//!   handshake, get a typed [`ErrorCode::Capacity`] error to their first
//!   request, and are disconnected.
//!
//! Per-request deadlines are enforced in [`execute_request`]: a request that
//! waited out its deadline in the queue is answered with a typed
//! [`ErrorCode::Deadline`] error without running, and one that finished too
//! late has its result replaced by the same error.
//!
//! [`ErrorCode::Backpressure`]: crate::protocol::ErrorCode::Backpressure
//! [`ErrorCode::Capacity`]: crate::protocol::ErrorCode::Capacity
//! [`ErrorCode::Deadline`]: crate::protocol::ErrorCode::Deadline

use crate::metrics::ServerMetrics;
use crate::poll::{Interest, PollEvent, Poller};
use crate::protocol::{
    read_handshake, read_request, write_handshake, write_response, ErrorCode, Request, Response,
    MAX_MESSAGE_BYTES,
};
use crate::server::{
    capacity_error, execute_request, oversize_error, protocol_error, RequestEnv, Server,
    ServerConfig,
};
use hermes_core::SharedEngine;
use hermes_obs::{SpanStore, TraceContext};
use hermes_sql::{Prepared, Session};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// Poll token of the listening socket.
const LISTENER: usize = 0;
/// Poll token of the completion-wakeup stream.
const WAKER: usize = 1;
/// First token handed to a connection; tokens are never reused, so a stale
/// completion can never be delivered to a different connection.
const FIRST_CONN: usize = 2;

/// Most bytes read from one socket per readiness event, so one firehose
/// client cannot starve the rest of the loop (level-triggered polling
/// re-reports whatever is left).
const READ_QUANTUM: usize = 256 * 1024;

/// The connection state that travels into workers with each job: the
/// session (whose backend pins snapshot epochs) and the wire table of
/// prepared statements.
struct ConnState {
    session: Session<SharedEngine>,
    prepared: Vec<Prepared>,
}

/// One statement dispatched to the worker pool.
struct Job {
    token: usize,
    state: Box<ConnState>,
    request: Request,
    trace: Option<TraceContext>,
    received: Instant,
}

/// One finished statement on its way back to the loop: the returned session
/// state and the fully encoded response frame.
struct Completion {
    token: usize,
    state: Box<ConnState>,
    bytes: Vec<u8>,
}

/// State shared between the loop thread and the workers.
struct WorkerShared {
    /// Pending jobs plus the closed flag workers exit on.
    queue: Mutex<(VecDeque<Job>, bool)>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Write half of the wakeup pair; one byte per completion batch.
    waker: Mutex<UnixStream>,
}

impl WorkerShared {
    fn complete(&self, completion: Completion) {
        self.completions.lock().unwrap().push(completion);
        // A full pipe means wakeup bytes are already pending — that is all
        // the signal the loop needs, so the error is safely ignored.
        let _ = self.waker.lock().unwrap().write(&[1]);
    }
}

/// A parsed request (or a pre-decided rejection) waiting in a connection's
/// pipeline queue. Rejections ride the same queue so error frames go out in
/// pipeline order.
enum Parsed {
    Execute {
        request: Request,
        trace: Option<TraceContext>,
        received: Instant,
    },
    Reject {
        response: Response,
        close: bool,
    },
}

/// Per-connection state owned by the loop thread.
struct Conn {
    stream: TcpStream,
    conn_id: u64,
    /// Raw inbound bytes not yet sliced into frames.
    read_buf: Vec<u8>,
    /// Parse cursor into `read_buf`; consumed bytes are compacted away
    /// after each parse pass.
    read_pos: usize,
    /// Encoded outbound frames not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Whether the client's preamble has been verified.
    handshaken: bool,
    /// Present while no job is in flight; travels with the job otherwise.
    state: Option<Box<ConnState>>,
    /// Parsed requests not yet dispatched.
    queue: VecDeque<Parsed>,
    /// Over the connection cap: first request is answered with a capacity
    /// error, then the connection closes.
    rejected: bool,
    /// Reads paused by per-connection backpressure.
    read_paused: bool,
    /// Close once `write_buf` fully drains.
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.read_paused && !self.close_after_flush,
            writable: self.write_pos < self.write_buf.len(),
        }
    }

    /// Appends one encoded response frame to the write buffer, accounting
    /// the outbound bytes the way the threaded core does (frame bytes, not
    /// handshake bytes).
    fn push_response(&mut self, response: &Response, metrics: &ServerMetrics) {
        let before = self.write_buf.len();
        if let Err(e) = write_response(&mut self.write_buf, response) {
            // Only an over-cap frame can fail against a Vec; the stream is
            // still in sync, so tell the client why.
            self.write_buf.truncate(before);
            metrics.query_errors.inc();
            let _ = write_response(&mut self.write_buf, &oversize_error(&e));
        }
        metrics
            .bytes_out
            .add((self.write_buf.len() - before) as u64);
    }
}

/// Loop-wide bookkeeping shared by the handler functions.
struct Ctx {
    engine: SharedEngine,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    conn_registry: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    shared: Arc<WorkerShared>,
    /// Admitted (non-rejected) live connections.
    admitted: usize,
    /// Parsed requests sitting in connection queues.
    queued: usize,
    /// Jobs dispatched to workers and not yet completed.
    inflight: usize,
}

impl Ctx {
    fn sync_gauges(&self) {
        self.metrics.pending_requests.set(self.queued as u64);
        self.metrics.inflight_queries.set(self.inflight as u64);
    }
}

/// Builds the typed error frame for a request refused by global admission
/// control.
fn backpressure_error(max_pending: usize) -> Response {
    Response::Error {
        code: ErrorCode::Backpressure,
        message: format!("server overloaded: {max_pending} requests already pending"),
    }
}

/// Runs the event core over a bound [`Server`] until shut down.
pub(crate) fn run(server: Server) -> io::Result<()> {
    let Server {
        listener,
        engine,
        config,
        metrics,
        registry: _registry,
        spans,
        shutdown,
        conns: conn_registry,
    } = server;

    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;

    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    poller.register(wake_rx.as_raw_fd(), WAKER, Interest::READABLE)?;

    let shared = Arc::new(WorkerShared {
        queue: Mutex::new((VecDeque::new(), false)),
        available: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker: Mutex::new(wake_tx),
    });

    let worker_count = if config.workers > 0 {
        config.workers
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    };
    for _ in 0..worker_count {
        let shared = Arc::clone(&shared);
        let engine = engine.clone();
        let metrics = Arc::clone(&metrics);
        let spans = Arc::clone(&spans);
        let slow_query_ms = config.slow_query_ms;
        let deadline_ms = config.deadline_ms;
        thread::spawn(move || {
            worker_loop(
                &shared,
                &engine,
                &metrics,
                &spans,
                slow_query_ms,
                deadline_ms,
            )
        });
    }

    let mut ctx = Ctx {
        engine,
        config,
        metrics,
        conn_registry,
        shared,
        admitted: 0,
        queued: 0,
        inflight: 0,
    };
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN;
    let mut next_conn_id: u64 = 0;
    let mut events: Vec<PollEvent> = Vec::new();

    loop {
        poller.wait(&mut events)?;
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        for ev in std::mem::take(&mut events) {
            match ev.token {
                LISTENER => accept_ready(
                    &listener,
                    &mut conns,
                    &mut next_token,
                    &mut next_conn_id,
                    &mut ctx,
                    &mut poller,
                ),
                WAKER => {
                    drain_waker(&wake_rx);
                    handle_completions(&mut conns, &mut ctx, &mut poller);
                }
                token => {
                    if ev.readable || ev.hangup {
                        handle_readable(token, &mut conns, &mut ctx, &mut poller);
                    }
                    if ev.writable {
                        handle_writable(token, &mut conns, &mut ctx, &mut poller);
                    }
                }
            }
        }
    }

    // Stop the workers: whoever is mid-statement finishes it and exits; the
    // loop does not wait, matching the threaded core's shutdown semantics.
    ctx.shared.queue.lock().unwrap().1 = true;
    ctx.shared.available.notify_all();
    Ok(())
}

/// Worker thread: pull a job, answer it through the travelling session,
/// encode the frame, hand both back to the loop.
fn worker_loop(
    shared: &WorkerShared,
    engine: &SharedEngine,
    metrics: &ServerMetrics,
    spans: &SpanStore,
    slow_query_ms: Option<u64>,
    deadline_ms: Option<u64>,
) {
    loop {
        let job = {
            let mut guard = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break Some(job);
                }
                if guard.1 {
                    break None;
                }
                guard = shared.available.wait(guard).unwrap();
            }
        };
        let Some(mut job) = job else { return };
        let env = RequestEnv {
            engine,
            metrics,
            spans,
            slow_query_ms,
            deadline_ms,
        };
        let response = execute_request(
            &env,
            &mut job.state.session,
            &mut job.state.prepared,
            job.request,
            job.trace,
            job.received,
        );
        let mut bytes = Vec::new();
        if let Err(e) = write_response(&mut bytes, &response) {
            bytes.clear();
            metrics.query_errors.inc();
            let _ = write_response(&mut bytes, &oversize_error(&e));
        }
        shared.complete(Completion {
            token: job.token,
            state: job.state,
            bytes,
        });
    }
}

/// Accepts every connection the listener has ready.
fn accept_ready(
    listener: &TcpListener,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    next_conn_id: &mut u64,
    ctx: &mut Ctx,
    poller: &mut Poller,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient accept failures (EMFILE, aborted handshakes) must
            // not take the server down.
            Err(_) => break,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();

        let rejected = ctx.admitted >= ctx.config.max_connections;
        let conn_id = *next_conn_id;
        *next_conn_id += 1;
        if rejected {
            ctx.metrics.connections_rejected.inc();
        } else {
            ctx.metrics.connections_accepted.inc();
            ctx.metrics.connections_active.inc();
            ctx.admitted += 1;
            if let Ok(clone) = stream.try_clone() {
                ctx.conn_registry.lock().unwrap().push((conn_id, clone));
            }
        }

        let token = *next_token;
        *next_token += 1;
        let mut conn = Conn {
            stream,
            conn_id,
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            handshaken: false,
            state: Some(Box::new(ConnState {
                session: Session::new(ctx.engine.clone()),
                prepared: Vec::new(),
            })),
            queue: VecDeque::new(),
            rejected,
            read_paused: false,
            close_after_flush: false,
            interest: Interest::NONE,
        };
        // The server speaks first: queue the preamble and try to push it out
        // before registering, so most handshakes finish without a writable
        // wakeup.
        write_handshake(&mut conn.write_buf).expect("infallible write to Vec");
        if flush(&mut conn).is_err() {
            finish_conn(conn, ctx);
            continue;
        }
        let interest = conn.desired_interest();
        conn.interest = interest;
        if poller
            .register(conn.stream.as_raw_fd(), token, interest)
            .is_ok()
        {
            conns.insert(token, conn);
        } else {
            finish_conn(conn, ctx);
        }
    }
}

/// Empties the wakeup stream so level-triggered polling goes quiet until
/// the next completion.
fn drain_waker(wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    while matches!((&*wake_rx).read(&mut buf), Ok(n) if n > 0) {}
}

/// Folds finished jobs back into their connections and flushes.
fn handle_completions(conns: &mut HashMap<usize, Conn>, ctx: &mut Ctx, poller: &mut Poller) {
    let done = std::mem::take(&mut *ctx.shared.completions.lock().unwrap());
    for completion in done {
        ctx.inflight -= 1;
        let token = completion.token;
        let Some(conn) = conns.get_mut(&token) else {
            // The connection died while its statement ran; the session and
            // the encoded frame are simply dropped.
            continue;
        };
        conn.state = Some(completion.state);
        let before = conn.write_buf.len();
        conn.write_buf.extend_from_slice(&completion.bytes);
        ctx.metrics
            .bytes_out
            .add((conn.write_buf.len() - before) as u64);
        service_conn(token, conns, ctx, poller);
    }
    ctx.sync_gauges();
}

/// Reads, parses and dispatches whatever one socket has ready.
fn handle_readable(
    token: usize,
    conns: &mut HashMap<usize, Conn>,
    ctx: &mut Ctx,
    poller: &mut Poller,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    let mut tmp = [0u8; 16 * 1024];
    let mut total = 0;
    let eof = loop {
        if conn.read_paused || conn.close_after_flush || total >= READ_QUANTUM {
            break false;
        }
        match conn.stream.read(&mut tmp) {
            Ok(0) => break true,
            Ok(n) => {
                conn.read_buf.extend_from_slice(&tmp[..n]);
                total += n;
                if n < tmp.len() {
                    break false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break true,
        }
    };
    parse_frames(token, conns, ctx);
    if eof {
        close_conn(token, conns, ctx, poller);
    } else {
        service_conn(token, conns, ctx, poller);
    }
    ctx.sync_gauges();
}

/// Flushes a socket that reported writable.
fn handle_writable(
    token: usize,
    conns: &mut HashMap<usize, Conn>,
    ctx: &mut Ctx,
    poller: &mut Poller,
) {
    if conns.contains_key(&token) {
        service_conn(token, conns, ctx, poller);
    }
}

/// Slices the connection's read buffer into frames: the handshake first,
/// then length-prefixed requests, each admitted (or rejected) into the
/// pipeline queue.
fn parse_frames(token: usize, conns: &mut HashMap<usize, Conn>, ctx: &mut Ctx) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    if !conn.handshaken {
        if conn.read_buf.len() < 7 {
            return;
        }
        match read_handshake(&mut &conn.read_buf[..7]) {
            Ok(_) => {
                conn.read_pos = 7;
                conn.handshaken = true;
            }
            Err(e) => {
                ctx.metrics.query_errors.inc();
                let resp = protocol_error(&e);
                conn.push_response(&resp, &ctx.metrics);
                conn.close_after_flush = true;
                return;
            }
        }
    }
    while !conn.close_after_flush {
        let avail = &conn.read_buf[conn.read_pos..];
        if avail.len() < 4 {
            break;
        }
        let length = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if length == 0 || length > MAX_MESSAGE_BYTES {
            ctx.metrics.query_errors.inc();
            let e = io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid message length {length}"),
            );
            let resp = protocol_error(&e);
            conn.push_response(&resp, &ctx.metrics);
            conn.close_after_flush = true;
            break;
        }
        let frame_len = 4 + length as usize;
        if avail.len() < frame_len {
            break;
        }
        match read_request(&mut &conn.read_buf[conn.read_pos..conn.read_pos + frame_len]) {
            Ok((request, trace, n_in)) => {
                conn.read_pos += frame_len;
                ctx.metrics.bytes_in.add(n_in);
                let received = Instant::now();
                if conn.rejected {
                    conn.queue.push_back(Parsed::Reject {
                        response: capacity_error(ctx.config.max_connections),
                        close: true,
                    });
                } else if ctx.queued + ctx.inflight >= ctx.config.max_pending {
                    ctx.metrics.backpressure_rejections.inc();
                    conn.queue.push_back(Parsed::Reject {
                        response: backpressure_error(ctx.config.max_pending),
                        close: false,
                    });
                } else {
                    ctx.queued += 1;
                    conn.queue.push_back(Parsed::Execute {
                        request,
                        trace,
                        received,
                    });
                }
                if conn.queue.len() >= ctx.config.max_conn_pending {
                    // The pipeline is deep enough: stop reading and let TCP
                    // push back on the sender until the queue drains.
                    conn.read_paused = true;
                    break;
                }
            }
            Err(e) => {
                // A malformed frame leaves the stream unparseable: report
                // and drop the connection rather than guessing at a resync
                // point.
                ctx.metrics.query_errors.inc();
                let resp = protocol_error(&e);
                conn.push_response(&resp, &ctx.metrics);
                conn.close_after_flush = true;
                break;
            }
        }
    }
    if conn.read_pos > 0 {
        conn.read_buf.drain(..conn.read_pos);
        conn.read_pos = 0;
    }
}

/// Dispatches queued work, flushes outbound bytes, resumes paused reads and
/// reconciles poller interest — the common tail of every connection event.
fn service_conn(
    token: usize,
    conns: &mut HashMap<usize, Conn>,
    ctx: &mut Ctx,
    poller: &mut Poller,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    // Dispatch at most one job (the session travels with it); emit any
    // rejections ahead of it in pipeline order.
    while conn.state.is_some() && !conn.close_after_flush {
        match conn.queue.pop_front() {
            Some(Parsed::Execute {
                request,
                trace,
                received,
            }) => {
                let state = conn.state.take().expect("checked above");
                ctx.queued -= 1;
                ctx.inflight += 1;
                ctx.shared.queue.lock().unwrap().0.push_back(Job {
                    token,
                    state,
                    request,
                    trace,
                    received,
                });
                ctx.shared.available.notify_one();
            }
            Some(Parsed::Reject { response, close }) => {
                conn.push_response(&response, &ctx.metrics);
                if close {
                    conn.close_after_flush = true;
                }
            }
            None => break,
        }
    }
    if conn.read_paused && conn.queue.len() < ctx.config.max_conn_pending / 2 {
        conn.read_paused = false;
    }
    if flush(conn).is_err() {
        close_conn(token, conns, ctx, poller);
        return;
    }
    let flushed = conn.write_pos >= conn.write_buf.len();
    if flushed && conn.close_after_flush {
        close_conn(token, conns, ctx, poller);
        return;
    }
    let want = conn.desired_interest();
    if want != conn.interest {
        conn.interest = want;
        let fd = conn.stream.as_raw_fd();
        if poller.modify(fd, token, want).is_err() {
            close_conn(token, conns, ctx, poller);
        }
    }
}

/// Writes as much buffered output as the socket accepts right now.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.write_pos >= conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    Ok(())
}

/// Removes a connection from the poller and the map, then settles its
/// bookkeeping.
fn close_conn(token: usize, conns: &mut HashMap<usize, Conn>, ctx: &mut Ctx, poller: &mut Poller) {
    let Some(conn) = conns.remove(&token) else {
        return;
    };
    let _ = poller.deregister(conn.stream.as_raw_fd());
    finish_conn(conn, ctx);
}

/// Settles a closed connection's bookkeeping: live-connection accounting
/// and the pending requests that will now never run. An in-flight job is
/// left to finish — its completion finds no connection and is dropped.
fn finish_conn(conn: Conn, ctx: &mut Ctx) {
    if !conn.rejected {
        ctx.metrics.connections_active.dec();
        ctx.admitted -= 1;
        ctx.conn_registry
            .lock()
            .unwrap()
            .retain(|(id, _)| *id != conn.conn_id);
    }
    let abandoned = conn
        .queue
        .iter()
        .filter(|p| matches!(p, Parsed::Execute { .. }))
        .count();
    ctx.queued -= abandoned;
    ctx.sync_gauges();
}
