//! # hermes-server
//!
//! The network subsystem: Hermes as a process instead of a library.
//!
//! Three layers, all `std`-only (`std::net` + `std::thread` + raw
//! `epoll`/`poll(2)` bindings):
//!
//! - [`protocol`] — a length-prefixed binary wire protocol whose payloads are
//!   the engine's own typed [`Value`](hermes_sql::Value)/
//!   [`Frame`](hermes_sql::Frame) results, with typed error frames
//!   ([`ErrorCode`]) for admission-control rejections (layouts in
//!   `docs/PROTOCOL.md`);
//! - [`server`] — a TCP server where every connection gets its own
//!   [`Session`](hermes_sql::Session) over one shared engine publishing
//!   immutable snapshot epochs. The default core on unix is a
//!   readiness-driven event loop (pipelining, per-query deadlines, bounded
//!   in-flight work); a thread-per-connection core remains as fallback and
//!   baseline. Counters in [`metrics`] surface through `SHOW STATS`;
//! - [`client`] — [`HermesClient`], the blocking client library used by
//!   `hermes-cli --connect`, the tests and the benchmarks, now with
//!   explicit [`client::HermesClient::send`]/[`client::HermesClient::receive`]
//!   halves for request pipelining.
//!
//! ```no_run
//! use hermes_core::SharedEngine;
//! use hermes_server::{HermesClient, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", SharedEngine::default(), ServerConfig::default())
//!     .unwrap()
//!     .spawn()
//!     .unwrap();
//! let mut client = HermesClient::connect(server.addr()).unwrap();
//! client.query("CREATE DATASET flights;").unwrap();
//! let shown = client.query("SHOW DATASETS;").unwrap();
//! assert_eq!(shown.num_rows(), 1);
//! server.shutdown();
//! ```

pub mod client;
#[cfg(unix)]
mod event_loop;
pub mod metrics;
#[cfg(unix)]
mod poll;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod traceview;

pub use client::{ClientError, ConnectOptions, HermesClient, RemotePrepared};
pub use metrics::{LatencyHistogram, ServerMetrics, LATENCY_BUCKETS_US};
pub use protocol::{
    DecodeError, ErrorCode, PartialInfo, Request, Response, MAX_MESSAGE_BYTES, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerCore, ServerHandle};
pub use traceview::{sniff_trace_text, trace_outcome, traces_outcome, TraceQuery};
