//! Server-side observability: lock-free counters and a per-query latency
//! histogram, surfaced to clients through `SHOW STATS` (scope `server`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bucket bounds of the latency histogram, in microseconds. The last
/// bucket is open-ended.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000,
];

/// A fixed-bucket latency histogram. Buckets are non-cumulative: each counts
/// the queries whose latency fell between the previous bound and its own.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    total_us: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one query latency.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Recorded queries.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded latencies in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// `(label, count)` per bucket, e.g. `("latency_us_le_100", 3)`; the
    /// open-ended tail is labelled `latency_us_gt_1000000`.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            let label = match LATENCY_BUCKETS_US.get(i) {
                Some(bound) => format!("latency_us_le_{bound}"),
                None => format!("latency_us_gt_{}", LATENCY_BUCKETS_US.last().unwrap()),
            };
            out.push((label, bucket.load(Ordering::Relaxed)));
        }
        out
    }
}

/// Counters describing a running server. All loads/stores are relaxed: the
/// metrics are monotone tallies, not synchronization points.
#[derive(Default)]
pub struct ServerMetrics {
    /// Connections admitted into a session.
    pub connections_accepted: AtomicU64,
    /// Connections turned away at the connection cap.
    pub connections_rejected: AtomicU64,
    /// Connections currently in a session.
    pub connections_active: AtomicU64,
    /// Query/Prepare/ExecutePrepared/Ingest requests answered successfully.
    pub queries_served: AtomicU64,
    /// Requests answered with an error response.
    pub query_errors: AtomicU64,
    /// Bytes read off client sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets.
    pub bytes_out: AtomicU64,
    /// Per-query latency distribution.
    pub latency: LatencyHistogram,
}

impl ServerMetrics {
    /// The `(metric, value)` rows a server appends to `SHOW STATS` under the
    /// `server` scope.
    pub fn rows(&self) -> Vec<(String, i64)> {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed) as i64;
        let mut rows = vec![
            (
                "connections_accepted".to_string(),
                load(&self.connections_accepted),
            ),
            (
                "connections_rejected".to_string(),
                load(&self.connections_rejected),
            ),
            (
                "connections_active".to_string(),
                load(&self.connections_active),
            ),
            ("queries_served".to_string(), load(&self.queries_served)),
            ("query_errors".to_string(), load(&self.query_errors)),
            ("bytes_in".to_string(), load(&self.bytes_in)),
            ("bytes_out".to_string(), load(&self.bytes_out)),
            (
                "latency_us_total".to_string(),
                self.latency.total_us() as i64,
            ),
        ];
        for (label, count) in self.latency.snapshot() {
            rows.push((label, count as i64));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(50)); // le_100
        h.record(Duration::from_micros(100)); // le_100 (inclusive bound)
        h.record(Duration::from_micros(700)); // le_1000
        h.record(Duration::from_secs(5)); // open tail
        assert_eq!(h.count(), 4);
        let snap = h.snapshot();
        let get = |label: &str| snap.iter().find(|(l, _)| l == label).unwrap().1;
        assert_eq!(get("latency_us_le_100"), 2);
        assert_eq!(get("latency_us_le_1000"), 1);
        assert_eq!(get("latency_us_gt_1000000"), 1);
        assert_eq!(snap.iter().map(|(_, c)| c).sum::<u64>(), 4);
        assert!(h.total_us() >= 5_000_000);
    }

    #[test]
    fn metrics_rows_cover_every_counter() {
        let m = ServerMetrics::default();
        m.queries_served.fetch_add(3, Ordering::Relaxed);
        m.latency.record(Duration::from_micros(10));
        let rows = m.rows();
        let get = |name: &str| {
            rows.iter()
                .find(|(l, _)| l == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .1
        };
        assert_eq!(get("queries_served"), 3);
        assert_eq!(get("latency_us_le_100"), 1);
        assert_eq!(get("connections_active"), 0);
    }
}
