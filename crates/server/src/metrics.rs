//! Server-side observability: counters and a per-query latency histogram
//! backed by the process-wide `hermes-obs` registry, surfaced to clients
//! through `SHOW STATS` (scope `server`) and through the Prometheus
//! `/metrics` endpoint.

use std::sync::Arc;
use std::time::Duration;

use hermes_obs::{Counter, Gauge, Histogram, Registry};

/// Upper bucket bounds of the latency histogram, in microseconds. The last
/// bucket is open-ended.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000,
];

/// A fixed-bucket latency histogram over the shared registry instrument.
///
/// The internal buckets are non-cumulative: each counts the queries whose
/// latency fell between the previous bound and its own. That interval form is
/// what [`LatencyHistogram::snapshot`] (and therefore `SHOW STATS`) reports;
/// the Prometheus endpoint converts to cumulative `le` buckets at render
/// time.
pub struct LatencyHistogram {
    inner: Arc<Histogram>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            inner: Arc::new(Histogram::new(&LATENCY_BUCKETS_US)),
        }
    }
}

impl LatencyHistogram {
    fn from_registry(registry: &Registry) -> LatencyHistogram {
        LatencyHistogram {
            inner: registry.histogram(
                "hermes_server_query_latency_us",
                "Per-query wall-clock latency in microseconds",
                &LATENCY_BUCKETS_US,
            ),
        }
    }

    /// Records one query latency.
    pub fn record(&self, elapsed: Duration) {
        self.inner
            .observe(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Recorded queries.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Sum of recorded latencies in microseconds.
    pub fn total_us(&self) -> u64 {
        self.inner.sum()
    }

    /// `(label, count)` per bucket, e.g. `("latency_us_le_100", 3)`; the
    /// open-ended tail is labelled `latency_us_gt_1000000`. Counts are
    /// per-interval (non-cumulative), matching the historical `SHOW STATS`
    /// output.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let snap = self.inner.snapshot();
        let mut out = Vec::with_capacity(snap.buckets.len());
        for (i, count) in snap.buckets.iter().enumerate() {
            let label = match LATENCY_BUCKETS_US.get(i) {
                Some(bound) => format!("latency_us_le_{bound}"),
                None => format!("latency_us_gt_{}", LATENCY_BUCKETS_US.last().unwrap()),
            };
            out.push((label, *count));
        }
        out
    }
}

/// Counters describing a running server, registered on the process-wide
/// metrics registry. All updates are relaxed atomic ops: the metrics are
/// monotone tallies, not synchronization points.
pub struct ServerMetrics {
    /// Connections admitted into a session.
    pub connections_accepted: Arc<Counter>,
    /// Connections turned away at the connection cap.
    pub connections_rejected: Arc<Counter>,
    /// Connections currently in a session.
    pub connections_active: Arc<Gauge>,
    /// Query/Prepare/ExecutePrepared/Ingest requests answered successfully.
    pub queries_served: Arc<Counter>,
    /// Requests answered with an error response.
    pub query_errors: Arc<Counter>,
    /// Statements that exceeded the slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// Bytes read off client sockets.
    pub bytes_in: Arc<Counter>,
    /// Bytes written to client sockets.
    pub bytes_out: Arc<Counter>,
    /// Requests parsed off a socket and waiting for an executor slot.
    pub pending_requests: Arc<Gauge>,
    /// Requests currently executing on the worker pool.
    pub inflight_queries: Arc<Gauge>,
    /// Requests whose deadline expired before a result could be sent.
    pub deadline_misses: Arc<Counter>,
    /// Requests refused because the pending-work bound was reached.
    pub backpressure_rejections: Arc<Counter>,
    /// Engine epoch observed by the most recent request.
    pub epoch: Arc<Gauge>,
    /// Per-query latency distribution.
    pub latency: LatencyHistogram,
}

impl Default for ServerMetrics {
    /// Standalone metrics over a private throwaway registry (used by tests
    /// and embedded setups that never scrape).
    fn default() -> Self {
        ServerMetrics::register(&Registry::new())
    }
}

impl ServerMetrics {
    /// Create the server metric family on `registry` (Prometheus names
    /// `hermes_server_*`) and return the handle struct the hot path updates.
    pub fn register(registry: &Registry) -> ServerMetrics {
        ServerMetrics {
            connections_accepted: registry.counter(
                "hermes_server_connections_accepted_total",
                "Connections admitted into a session",
            ),
            connections_rejected: registry.counter(
                "hermes_server_rejected_connections_total",
                "Connections turned away at the connection cap",
            ),
            connections_active: registry.gauge(
                "hermes_server_connections_active",
                "Connections currently in a session",
            ),
            queries_served: registry.counter(
                "hermes_server_queries_served_total",
                "Requests answered successfully",
            ),
            query_errors: registry.counter(
                "hermes_server_query_errors_total",
                "Requests answered with an error response",
            ),
            slow_queries: registry.counter(
                "hermes_server_slow_queries_total",
                "Statements that exceeded the slow-query threshold",
            ),
            bytes_in: registry.counter(
                "hermes_server_bytes_in_total",
                "Bytes read off client sockets",
            ),
            bytes_out: registry.counter(
                "hermes_server_bytes_out_total",
                "Bytes written to client sockets",
            ),
            pending_requests: registry.gauge(
                "hermes_server_pending_requests",
                "Requests parsed off a socket and waiting for an executor slot",
            ),
            inflight_queries: registry.gauge(
                "hermes_server_inflight_queries",
                "Requests currently executing on the worker pool",
            ),
            deadline_misses: registry.counter(
                "hermes_server_deadline_misses_total",
                "Requests whose deadline expired before a result could be sent",
            ),
            backpressure_rejections: registry.counter(
                "hermes_server_backpressure_rejections_total",
                "Requests refused because the pending-work bound was reached",
            ),
            epoch: registry.gauge(
                "hermes_server_epoch",
                "Engine epoch observed by the most recent request",
            ),
            latency: LatencyHistogram::from_registry(registry),
        }
    }

    /// The `(metric, value)` rows a server appends to `SHOW STATS` under the
    /// `server` scope.
    pub fn rows(&self) -> Vec<(String, i64)> {
        let mut rows = vec![
            (
                "connections_accepted".to_string(),
                self.connections_accepted.get() as i64,
            ),
            (
                "connections_rejected".to_string(),
                self.connections_rejected.get() as i64,
            ),
            (
                "connections_active".to_string(),
                self.connections_active.get() as i64,
            ),
            (
                "queries_served".to_string(),
                self.queries_served.get() as i64,
            ),
            ("query_errors".to_string(), self.query_errors.get() as i64),
            ("slow_queries".to_string(), self.slow_queries.get() as i64),
            ("bytes_in".to_string(), self.bytes_in.get() as i64),
            ("bytes_out".to_string(), self.bytes_out.get() as i64),
            (
                "pending_requests".to_string(),
                self.pending_requests.get() as i64,
            ),
            (
                "inflight_queries".to_string(),
                self.inflight_queries.get() as i64,
            ),
            (
                "deadline_misses".to_string(),
                self.deadline_misses.get() as i64,
            ),
            (
                "backpressure_rejections".to_string(),
                self.backpressure_rejections.get() as i64,
            ),
            ("epoch".to_string(), self.epoch.get() as i64),
            (
                "latency_us_total".to_string(),
                self.latency.total_us() as i64,
            ),
        ];
        for (label, count) in self.latency.snapshot() {
            rows.push((label, count as i64));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(50)); // le_100
        h.record(Duration::from_micros(100)); // le_100 (inclusive bound)
        h.record(Duration::from_micros(700)); // le_1000
        h.record(Duration::from_secs(5)); // open tail
        assert_eq!(h.count(), 4);
        let snap = h.snapshot();
        let get = |label: &str| snap.iter().find(|(l, _)| l == label).unwrap().1;
        assert_eq!(get("latency_us_le_100"), 2);
        assert_eq!(get("latency_us_le_1000"), 1);
        assert_eq!(get("latency_us_gt_1000000"), 1);
        assert_eq!(snap.iter().map(|(_, c)| c).sum::<u64>(), 4);
        assert!(h.total_us() >= 5_000_000);
    }

    #[test]
    fn metrics_rows_cover_every_counter() {
        let m = ServerMetrics::default();
        m.queries_served.add(3);
        m.latency.record(Duration::from_micros(10));
        let rows = m.rows();
        let get = |name: &str| {
            rows.iter()
                .find(|(l, _)| l == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .1
        };
        assert_eq!(get("queries_served"), 3);
        assert_eq!(get("latency_us_le_100"), 1);
        assert_eq!(get("connections_active"), 0);
    }

    #[test]
    fn prometheus_export_is_cumulative_while_stats_rows_are_not() {
        // Satellite 1: `SHOW STATS` keeps the historical per-interval labels,
        // while the registry renders the same histogram in cumulative `le`
        // form with `_sum`/`_count`.
        let registry = Registry::new();
        let m = ServerMetrics::register(&registry);
        m.latency.record(Duration::from_micros(50));
        m.latency.record(Duration::from_micros(100));
        m.latency.record(Duration::from_micros(700));

        let snap = m.latency.snapshot();
        let get = |label: &str| snap.iter().find(|(l, _)| l == label).unwrap().1;
        assert_eq!(
            get("latency_us_le_100"),
            2,
            "interval form: own bucket only"
        );
        assert_eq!(get("latency_us_le_1000"), 1);

        let text = registry.render_prometheus();
        assert!(text.contains("hermes_server_query_latency_us_bucket{le=\"100\"} 2"));
        assert!(
            text.contains("hermes_server_query_latency_us_bucket{le=\"1000\"} 3"),
            "cumulative form: prefix sum\n{text}"
        );
        assert!(text.contains("hermes_server_query_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("hermes_server_query_latency_us_sum 850"));
        assert!(text.contains("hermes_server_query_latency_us_count 3"));
    }
}
