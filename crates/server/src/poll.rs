//! A minimal readiness poller over raw OS facilities — `epoll(7)` on Linux,
//! `poll(2)` on other unix — with no dependencies beyond `std`.
//!
//! The event loop in [`crate::event_loop`] drives every socket through this
//! one interface:
//!
//! - [`Poller::register`] / [`Poller::modify`] declare which readiness
//!   transitions a file descriptor should report ([`Interest`]);
//! - [`Poller::wait`] blocks until at least one descriptor is ready and
//!   fills a caller-owned buffer of [`PollEvent`]s.
//!
//! Both backends are **level-triggered**: a descriptor keeps reporting ready
//! until the condition is drained. That makes the consuming loop obviously
//! correct (nothing is lost if a wakeup handles only part of a buffer) at
//! the cost of re-reporting, which the loop bounds by disabling interests it
//! is not currently able to act on.
//!
//! The syscall bindings are hand-written `extern "C"` declarations against
//! libc symbols every unix already links (the same technique the durability
//! layer uses for `flock(2)`), so the crate stays dependency-free.

#![allow(unsafe_code)]

/// Which readiness transitions a registration should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or hangs up).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Neither direction: the fd stays registered but reports nothing
    /// (used to pause reads under per-connection backpressure).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// Readable now (data, EOF, or an incoming connection).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup: the descriptor should be drained and closed.
    pub hangup: bool,
}

pub use imp::Poller;

#[cfg(target_os = "linux")]
mod imp {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    const EPOLL_CLOEXEC: c_int = 0x8_0000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`; packed on x86-64 only, per the kernel ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Linux backend: one `epoll` instance, level-triggered.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        /// Adds `fd` under `token` with the given interest.
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes `fd` from the poller.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        /// Blocks until at least one registration is ready, then fills
        /// `events` (cleared first) with the reports.
        pub fn wait(&mut self, events: &mut Vec<PollEvent>) -> io::Result<()> {
            events.clear();
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        -1,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(PollEvent {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};

    const POLLIN: c_short = 0x1;
    const POLLOUT: c_short = 0x4;
    const POLLERR: c_short = 0x8;
    const POLLHUP: c_short = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    /// Portable unix backend: rebuilds a `pollfd` array per wait. O(n) per
    /// call, which is fine for the connection counts the fallback serves.
    pub struct Poller {
        regs: Vec<(RawFd, usize, Interest)>,
    }

    impl Poller {
        /// Creates an empty registration table.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { regs: Vec::new() })
        }

        /// Adds `fd` under `token` with the given interest.
        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.regs.push((fd, token, interest));
            Ok(())
        }

        /// Changes the interest set of an already-registered `fd`.
        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            match self.regs.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(reg) => {
                    *reg = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Removes `fd` from the poller.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.regs.retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        /// Blocks until at least one registration is ready, then fills
        /// `events` (cleared first) with the reports.
        pub fn wait(&mut self, events: &mut Vec<PollEvent>) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<PollFd> = self
                .regs
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, -1) };
                if n >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (slot, &(_, token, _)) in fds.iter().zip(self.regs.iter()) {
                if slot.revents != 0 {
                    events.push(PollEvent {
                        token,
                        readable: slot.revents & (POLLIN | POLLHUP) != 0,
                        writable: slot.revents & POLLOUT != 0,
                        hangup: slot.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readability_level_triggered() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(b.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        a.write_all(b"xy").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: half-drained buffers keep reporting.
        let mut one = [0u8; 1];
        (&b).read_exact(&mut one).unwrap();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_interest_fires_for_an_open_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        let writable_only = Interest {
            readable: false,
            writable: true,
        };
        poller.register(a.as_raw_fd(), 3, writable_only).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
    }

    #[test]
    fn hangup_is_reported_when_the_peer_closes() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(b.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        drop(a);
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        // Peer closure surfaces as readable (EOF) and/or hangup.
        assert!(events
            .iter()
            .any(|e| e.token == 1 && (e.readable || e.hangup)));
    }
}
