//! The Hermes wire protocol: length-prefixed binary messages carrying the
//! typed [`Value`]/[`Frame`] results across a TCP connection.
//!
//! Every message is one *wire frame*:
//!
//! ```text
//! +-----------------+-----------+------------------+
//! | length: u32 BE  | kind: u8  | payload bytes    |
//! +-----------------+-----------+------------------+
//! ```
//!
//! `length` counts the kind byte plus the payload, so an empty message has
//! length 1. All integers are big-endian; floats travel as their IEEE-754
//! bit pattern; strings as `u32` byte length + UTF-8 bytes. The full message
//! catalogue and payload layouts are documented in `docs/PROTOCOL.md`.
//!
//! The encoding is deliberately symmetric: [`Request`]s flow client → server,
//! [`Response`]s flow back, and both sides use the same
//! [`read_request`]/[`write_response`] (and [`read_response`]/
//! [`write_request`]) pairs, which also report the byte counts feeding the
//! server's `bytes_in`/`bytes_out` metrics.

use hermes_obs::TraceContext;
use hermes_retratree::{QutPartial, QutStats};
use hermes_s2t::{Cluster, KernelCounters, S2TPhaseTimings};
use hermes_sql::{ColumnDef, CommandStatus, CommandTag, Frame, QueryOutcome, Value, ValueType};
use hermes_trajectory::{Point, SubTrajectory, SubTrajectoryId, Timestamp, Trajectory};
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on one wire frame (kind byte + payload). Large enough for a
/// bulk trajectory ingest, small enough to stop a corrupt length prefix from
/// asking the peer to allocate gigabytes.
pub const MAX_MESSAGE_BYTES: u32 = 64 * 1024 * 1024;

/// Version of the wire protocol spoken by this build. Bumped whenever the
/// message catalogue or a payload layout changes incompatibly; peers with a
/// different version are rejected during the handshake.
///
/// v3 prefixed every request payload with an optional trace-context field
/// (`u8` flag, then `trace_id`/`parent_span_id` as `u64` when set) so the
/// coordinator can propagate distributed per-query traces to shards.
///
/// v4 appended the voting-kernel counters (`kernel_evaluated` /
/// `kernel_pruned`, two `u64`s after the phase timings) to the shard-partial
/// stats block, so the coordinator's merged `QutStats` carries the pruning
/// ladder's work counters across the wire.
///
/// v5 prefixed the error-response payload with a one-byte [`ErrorCode`]
/// (query / protocol / capacity / backpressure / deadline) so clients can
/// distinguish admission-control rejections from statement failures.
pub const PROTOCOL_VERSION: u16 = 5;

/// Magic bytes opening the connection preamble.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"HRMS";

/// Writes this side's 7-byte connection preamble:
/// `"HRMS"` + version `u16` BE + flags `u8` (reserved, zero).
///
/// The server speaks first on accept; the client answers with its own
/// preamble after verifying the server's. Only after both preambles are
/// exchanged do length-prefixed messages flow.
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&HANDSHAKE_MAGIC)?;
    w.write_all(&PROTOCOL_VERSION.to_be_bytes())?;
    w.write_all(&[0u8])?;
    w.flush()
}

/// Reads and verifies the peer's preamble, returning the peer's version.
/// A wrong magic (not a Hermes endpoint) or a version mismatch comes back as
/// `ErrorKind::InvalidData` so callers can surface a clean, typed error
/// instead of a decode failure further in.
pub fn read_handshake(r: &mut impl Read) -> io::Result<u16> {
    let mut buf = [0u8; 7];
    r.read_exact(&mut buf)?;
    if buf[..4] != HANDSHAKE_MAGIC {
        return Err(
            DecodeError("bad handshake magic: peer is not a Hermes endpoint".into()).into(),
        );
    }
    let version = u16::from_be_bytes([buf[4], buf[5]]);
    if version != PROTOCOL_VERSION {
        return Err(DecodeError(format!(
            "protocol version mismatch: peer speaks v{version}, this build speaks v{PROTOCOL_VERSION}"
        ))
        .into());
    }
    Ok(version)
}

/// A malformed message (bad tag, truncated payload, non-UTF-8 string, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire protocol decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse and execute one statement.
    Query {
        /// Statement text in the Hermes SQL dialect.
        sql: String,
    },
    /// Parse a statement (placeholders allowed) into a server-side prepared
    /// statement; answered by [`Response::Prepared`].
    Prepare {
        /// Statement text, may contain `$n` placeholders.
        sql: String,
    },
    /// Execute a prepared statement with parameters bound to its
    /// placeholders. Handles are per connection.
    ExecutePrepared {
        /// Handle from [`Response::Prepared`].
        handle: u32,
        /// Values for `$1..$n`.
        params: Vec<Value>,
    },
    /// Bulk-load trajectories into a dataset (created on first ingest).
    Ingest {
        /// Target dataset.
        dataset: String,
        /// The trajectories to append.
        trajectories: Vec<Trajectory>,
    },
    /// Shard-scope: answer the owned share of `QUT(W)` without the final
    /// cross-boundary merge (coordinator → shard; see `docs/SHARDING.md`).
    QutPartial {
        /// Target dataset.
        dataset: String,
        /// Inclusive start of the half-open ownership slice, ms.
        owned_start_ms: i64,
        /// Exclusive end of the ownership slice, ms (`i64::MAX` = unbounded).
        owned_end_ms: i64,
        /// Window start `Wi`, ms.
        wi: i64,
        /// Window end `We`, ms.
        we: i64,
        /// `(τ, δ, t)` query overrides; `None` keeps the values the shard's
        /// tree was indexed with (the `HISTOGRAM` path).
        overrides: Option<(f64, f64, i64)>,
    },
    /// Shard-scope: count stored pieces intersecting `[wi, we]` in owned
    /// sub-chunks only.
    RangePartial {
        /// Target dataset.
        dataset: String,
        /// Inclusive start of the ownership slice, ms.
        owned_start_ms: i64,
        /// Exclusive end of the ownership slice, ms.
        owned_end_ms: i64,
        /// Window start `Wi`, ms.
        wi: i64,
        /// Window end `We`, ms.
        we: i64,
    },
    /// Shard-scope: return the raw trajectories whose first sample falls in
    /// the ownership slice (the coordinator reassembles the full dataset for
    /// non-decomposable whole-dataset runs such as S2T).
    GatherTrajectories {
        /// Target dataset.
        dataset: String,
        /// Inclusive start of the ownership slice, ms.
        owned_start_ms: i64,
        /// Exclusive end of the ownership slice, ms.
        owned_end_ms: i64,
    },
    /// Shard-scope: the owned share of `INFO(dataset)`.
    InfoPartial {
        /// Target dataset.
        dataset: String,
        /// Inclusive start of the ownership slice, ms.
        owned_start_ms: i64,
        /// Exclusive end of the ownership slice, ms.
        owned_end_ms: i64,
    },
}

/// A shard's share of `INFO(dataset)`, counted over the trajectories whose
/// first sample falls inside the shard's ownership slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialInfo {
    /// Owned trajectories.
    pub trajectories: u64,
    /// Points of the owned trajectories.
    pub points: u64,
    /// Temporal extent of the owned trajectories, as `(start_ms, end_ms)`.
    pub lifespan: Option<(i64, i64)>,
    /// Whether the shard has a ReTraTree for the dataset.
    pub indexed: bool,
    /// Level-3 cluster entries in owned sub-chunks.
    pub cluster_entries: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A query produced rows (and possibly a statistics frame).
    Rows {
        /// The result rows.
        frame: Frame,
        /// The `\timing` statistics frame, when the statement measured any.
        stats: Option<Frame>,
    },
    /// A command completed without rows.
    Command(CommandStatus),
    /// A statement was prepared under this connection-scoped handle.
    Prepared {
        /// Handle to pass to [`Request::ExecutePrepared`].
        handle: u32,
    },
    /// The request failed; the connection stays usable (except after a
    /// [`ErrorCode::Capacity`] rejection, which the server closes behind).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable reason.
        message: String,
    },
    /// Answer to [`Request::QutPartial`]: the shard's un-merged clusters and
    /// outliers in temporal order, plus its counters.
    QutPartial(QutPartial),
    /// Answer to [`Request::RangePartial`].
    Count(u64),
    /// Answer to [`Request::GatherTrajectories`].
    Trajectories(Vec<Trajectory>),
    /// Answer to [`Request::InfoPartial`].
    InfoPartial(PartialInfo),
}

/// Failure class carried by every [`Response::Error`] frame (wire byte, v5).
///
/// Unknown bytes from a future peer decode as [`ErrorCode::Query`]; encoding
/// is exactly the discriminant, so frames re-encoded by the coordinator keep
/// their class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum ErrorCode {
    /// Statement-level failure (unknown dataset, bad parameters, …); the
    /// default class.
    #[default]
    Query = 0,
    /// Protocol-level failure (malformed frame, oversized result, …).
    Protocol = 1,
    /// Admission refused: the server is at its connection cap. The server
    /// closes the connection after this frame.
    Capacity = 2,
    /// Admission refused: the in-flight request budget is exhausted; the
    /// request was never executed and can be retried.
    Backpressure = 3,
    /// The per-query deadline expired before (or while) the query ran; no
    /// result is returned past a deadline.
    Deadline = 4,
}

impl ErrorCode {
    /// Decodes a wire byte; unknown values from a future peer decode as
    /// [`ErrorCode::Query`] (the conservative class: relay, do not retry).
    pub fn from_u8(v: u8) -> ErrorCode {
        match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Capacity,
            3 => ErrorCode::Backpressure,
            4 => ErrorCode::Deadline,
            _ => ErrorCode::Query,
        }
    }

    /// True for the admission/deadline classes (`Capacity`, `Backpressure`,
    /// `Deadline`): the statement was refused or timed out rather than
    /// answered, so a retry — on this node or a replica holding the same
    /// data — is safe and may succeed. `Query`-class errors are *answers*
    /// (a replica would say exactly the same) and must be relayed verbatim.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Capacity | ErrorCode::Backpressure | ErrorCode::Deadline
        )
    }
}

impl Response {
    /// A [`Response::Error`] of the default [`ErrorCode::Query`] class.
    pub fn error(message: impl Into<String>) -> Response {
        Response::Error {
            code: ErrorCode::Query,
            message: message.into(),
        }
    }

    /// Converts a row/command response into the typed [`QueryOutcome`] the
    /// local execution path produces, so remote and local callers handle one
    /// result type.
    pub fn into_outcome(self) -> Result<QueryOutcome, DecodeError> {
        match self {
            Response::Rows { frame, stats } => Ok(QueryOutcome::Rows { frame, stats }),
            Response::Command(status) => Ok(QueryOutcome::Command(status)),
            other => Err(DecodeError(format!(
                "expected a rows/command response, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DecodeError(format!("message truncated (wanted {n} more bytes)")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError("string is not valid UTF-8".into()))
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Value / Frame / CommandStatus encoding
// ---------------------------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_BOOL: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_TEXT: u8 = 4;
const VALUE_TIMESTAMP: u8 = 5;
const VALUE_INTERVAL: u8 = 6;

fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(VALUE_NULL),
        Value::Bool(b) => {
            w.u8(VALUE_BOOL);
            w.u8(*b as u8);
        }
        Value::Int(i) => {
            w.u8(VALUE_INT);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(VALUE_FLOAT);
            w.f64(*f);
        }
        Value::Text(s) => {
            w.u8(VALUE_TEXT);
            w.str(s);
        }
        Value::Timestamp(t) => {
            w.u8(VALUE_TIMESTAMP);
            w.i64(t.millis());
        }
        Value::Interval(d) => {
            w.u8(VALUE_INTERVAL);
            w.i64(d.millis());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    Ok(match r.u8()? {
        VALUE_NULL => Value::Null,
        VALUE_BOOL => Value::Bool(r.u8()? != 0),
        VALUE_INT => Value::Int(r.i64()?),
        VALUE_FLOAT => Value::Float(r.f64()?),
        VALUE_TEXT => Value::Text(r.str()?),
        VALUE_TIMESTAMP => Value::Timestamp(Timestamp(r.i64()?)),
        VALUE_INTERVAL => Value::Interval(hermes_trajectory::Duration::from_millis(r.i64()?)),
        tag => return Err(DecodeError(format!("unknown value tag {tag}"))),
    })
}

fn type_code(ty: ValueType) -> u8 {
    match ty {
        ValueType::Bool => VALUE_BOOL,
        ValueType::Int => VALUE_INT,
        ValueType::Float => VALUE_FLOAT,
        ValueType::Text => VALUE_TEXT,
        ValueType::Timestamp => VALUE_TIMESTAMP,
        ValueType::Interval => VALUE_INTERVAL,
    }
}

fn type_of_code(code: u8) -> Result<ValueType, DecodeError> {
    Ok(match code {
        VALUE_BOOL => ValueType::Bool,
        VALUE_INT => ValueType::Int,
        VALUE_FLOAT => ValueType::Float,
        VALUE_TEXT => ValueType::Text,
        VALUE_TIMESTAMP => ValueType::Timestamp,
        VALUE_INTERVAL => ValueType::Interval,
        tag => return Err(DecodeError(format!("unknown column type code {tag}"))),
    })
}

fn write_frame_payload(w: &mut Writer, frame: &Frame) {
    w.u16(frame.num_columns() as u16);
    for col in frame.schema() {
        w.str(&col.name);
        w.u8(type_code(col.ty));
    }
    w.u32(frame.num_rows() as u32);
    for row in frame.rows() {
        for cell in row {
            write_value(w, cell);
        }
    }
}

fn read_frame_payload(r: &mut Reader<'_>) -> Result<Frame, DecodeError> {
    let ncols = r.u16()? as usize;
    let mut schema = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.str()?;
        let ty = type_of_code(r.u8()?)?;
        schema.push(ColumnDef::new(name, ty));
    }
    let mut frame = Frame::new(schema);
    let nrows = r.u32()? as usize;
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(read_value(r)?);
        }
        frame.push_row(row).map_err(DecodeError)?;
    }
    Ok(frame)
}

fn command_tag_code(tag: CommandTag) -> u8 {
    match tag {
        CommandTag::CreateDataset => 1,
        CommandTag::DropDataset => 2,
        CommandTag::BuildIndex => 3,
        CommandTag::Ingest => 4,
        CommandTag::Set => 5,
        CommandTag::Checkpoint => 6,
    }
}

fn command_tag_of_code(code: u8) -> Result<CommandTag, DecodeError> {
    Ok(match code {
        1 => CommandTag::CreateDataset,
        2 => CommandTag::DropDataset,
        3 => CommandTag::BuildIndex,
        4 => CommandTag::Ingest,
        5 => CommandTag::Set,
        6 => CommandTag::Checkpoint,
        tag => return Err(DecodeError(format!("unknown command tag code {tag}"))),
    })
}

fn write_trajectory(w: &mut Writer, t: &Trajectory) {
    w.u64(t.id);
    w.u64(t.object_id);
    w.u32(t.points().len() as u32);
    for p in t.points() {
        w.f64(p.x);
        w.f64(p.y);
        w.i64(p.t.millis());
    }
}

fn read_trajectory(r: &mut Reader<'_>) -> Result<Trajectory, DecodeError> {
    let id = r.u64()?;
    let object_id = r.u64()?;
    let n = r.u32()? as usize;
    let mut points = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let x = r.f64()?;
        let y = r.f64()?;
        let t = Timestamp(r.i64()?);
        points.push(Point::new(x, y, t));
    }
    Trajectory::new(id, object_id, points)
        .map_err(|e| DecodeError(format!("invalid trajectory {id}: {e}")))
}

fn write_sub_trajectory(w: &mut Writer, s: &SubTrajectory) {
    w.u64(s.id.trajectory_id);
    w.u32(s.id.offset);
    w.u64(s.trajectory_id);
    w.u64(s.object_id);
    w.u32(s.points().len() as u32);
    for p in s.points() {
        w.f64(p.x);
        w.f64(p.y);
        w.i64(p.t.millis());
    }
}

fn read_sub_trajectory(r: &mut Reader<'_>) -> Result<SubTrajectory, DecodeError> {
    let id_trajectory = r.u64()?;
    let id_offset = r.u32()?;
    let trajectory_id = r.u64()?;
    let object_id = r.u64()?;
    let n = r.u32()? as usize;
    if n < 2 {
        return Err(DecodeError(format!(
            "sub-trajectory {id_trajectory}@{id_offset} has {n} points (minimum is 2)"
        )));
    }
    let mut points = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let x = r.f64()?;
        let y = r.f64()?;
        let t = Timestamp(r.i64()?);
        points.push(Point::new(x, y, t));
    }
    Ok(SubTrajectory::from_points(
        SubTrajectoryId::new(id_trajectory, id_offset),
        trajectory_id,
        object_id,
        points,
    ))
}

fn write_cluster(w: &mut Writer, c: &Cluster) {
    w.u64(c.id as u64);
    write_sub_trajectory(w, &c.representative);
    w.f64(c.representative_vote);
    w.u32(c.members.len() as u32);
    for m in &c.members {
        write_sub_trajectory(w, m);
    }
    for d in &c.member_distances {
        w.f64(*d);
    }
}

fn read_cluster(r: &mut Reader<'_>) -> Result<Cluster, DecodeError> {
    let id = r.u64()? as usize;
    let representative = read_sub_trajectory(r)?;
    let representative_vote = r.f64()?;
    let n = r.u32()? as usize;
    let mut members = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        members.push(read_sub_trajectory(r)?);
    }
    let mut member_distances = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        member_distances.push(r.f64()?);
    }
    Ok(Cluster {
        id,
        representative,
        representative_vote,
        members,
        member_distances,
    })
}

fn write_qut_partial(w: &mut Writer, p: &QutPartial) {
    w.u32(p.clusters.len() as u32);
    for c in &p.clusters {
        write_cluster(w, c);
    }
    w.u32(p.outliers.len() as u32);
    for o in &p.outliers {
        write_sub_trajectory(w, o);
    }
    w.u64(p.stats.reused_subchunks as u64);
    w.u64(p.stats.reclustered_subchunks as u64);
    w.u64(p.stats.loaded_sub_trajectories as u64);
    w.u64(p.stats.merges as u64);
    w.f64(p.stats.elapsed_ms);
    w.f64(p.stats.phases.index_build_ms);
    w.f64(p.stats.phases.voting_ms);
    w.f64(p.stats.phases.segmentation_ms);
    w.f64(p.stats.phases.sampling_ms);
    w.f64(p.stats.phases.clustering_ms);
    w.u64(p.stats.kernel.evaluated);
    w.u64(p.stats.kernel.pruned);
}

fn read_qut_partial(r: &mut Reader<'_>) -> Result<QutPartial, DecodeError> {
    let nclusters = r.u32()? as usize;
    let mut clusters = Vec::with_capacity(nclusters.min(1 << 16));
    for _ in 0..nclusters {
        clusters.push(read_cluster(r)?);
    }
    let noutliers = r.u32()? as usize;
    let mut outliers = Vec::with_capacity(noutliers.min(1 << 16));
    for _ in 0..noutliers {
        outliers.push(read_sub_trajectory(r)?);
    }
    let stats = QutStats {
        reused_subchunks: r.u64()? as usize,
        reclustered_subchunks: r.u64()? as usize,
        loaded_sub_trajectories: r.u64()? as usize,
        merges: r.u64()? as usize,
        elapsed_ms: r.f64()?,
        phases: S2TPhaseTimings {
            index_build_ms: r.f64()?,
            voting_ms: r.f64()?,
            segmentation_ms: r.f64()?,
            sampling_ms: r.f64()?,
            clustering_ms: r.f64()?,
        },
        kernel: KernelCounters {
            evaluated: r.u64()?,
            pruned: r.u64()?,
        },
    };
    Ok(QutPartial {
        clusters,
        outliers,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

const REQ_QUERY: u8 = 1;
const REQ_PREPARE: u8 = 2;
const REQ_EXECUTE_PREPARED: u8 = 3;
const REQ_INGEST: u8 = 4;
const REQ_QUT_PARTIAL: u8 = 5;
const REQ_RANGE_PARTIAL: u8 = 6;
const REQ_GATHER_TRAJECTORIES: u8 = 7;
const REQ_INFO_PARTIAL: u8 = 8;

const RESP_ROWS: u8 = 101;
const RESP_COMMAND: u8 = 102;
const RESP_PREPARED: u8 = 103;
const RESP_ERROR: u8 = 104;
const RESP_QUT_PARTIAL: u8 = 105;
const RESP_COUNT: u8 = 106;
const RESP_TRAJECTORIES: u8 = 107;
const RESP_INFO_PARTIAL: u8 = 108;

/// Writes the optional leading trace-context field every v3 request payload
/// starts with: flag `0` (absent) or flag `1` + `trace_id` + `parent_span_id`.
fn write_trace_field(w: &mut Writer, trace: Option<TraceContext>) {
    match trace {
        Some(ctx) => {
            w.u8(1);
            w.u64(ctx.trace_id);
            w.u64(ctx.parent_span_id);
        }
        None => w.u8(0),
    }
}

fn read_trace_field(r: &mut Reader<'_>) -> Result<Option<TraceContext>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(TraceContext {
            trace_id: r.u64()?,
            parent_span_id: r.u64()?,
        })),
        tag => Err(DecodeError(format!("unknown trace flag {tag}"))),
    }
}

fn encode_request(req: &Request, trace: Option<TraceContext>) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    write_trace_field(&mut w, trace);
    let kind = match req {
        Request::Query { sql } => {
            w.str(sql);
            REQ_QUERY
        }
        Request::Prepare { sql } => {
            w.str(sql);
            REQ_PREPARE
        }
        Request::ExecutePrepared { handle, params } => {
            w.u32(*handle);
            w.u16(params.len() as u16);
            for p in params {
                write_value(&mut w, p);
            }
            REQ_EXECUTE_PREPARED
        }
        Request::Ingest {
            dataset,
            trajectories,
        } => {
            w.str(dataset);
            w.u32(trajectories.len() as u32);
            for t in trajectories {
                write_trajectory(&mut w, t);
            }
            REQ_INGEST
        }
        Request::QutPartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
            wi,
            we,
            overrides,
        } => {
            w.str(dataset);
            w.i64(*owned_start_ms);
            w.i64(*owned_end_ms);
            w.i64(*wi);
            w.i64(*we);
            match overrides {
                Some((tau, delta, min_duration_ms)) => {
                    w.u8(1);
                    w.f64(*tau);
                    w.f64(*delta);
                    w.i64(*min_duration_ms);
                }
                None => w.u8(0),
            }
            REQ_QUT_PARTIAL
        }
        Request::RangePartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
            wi,
            we,
        } => {
            w.str(dataset);
            w.i64(*owned_start_ms);
            w.i64(*owned_end_ms);
            w.i64(*wi);
            w.i64(*we);
            REQ_RANGE_PARTIAL
        }
        Request::GatherTrajectories {
            dataset,
            owned_start_ms,
            owned_end_ms,
        } => {
            w.str(dataset);
            w.i64(*owned_start_ms);
            w.i64(*owned_end_ms);
            REQ_GATHER_TRAJECTORIES
        }
        Request::InfoPartial {
            dataset,
            owned_start_ms,
            owned_end_ms,
        } => {
            w.str(dataset);
            w.i64(*owned_start_ms);
            w.i64(*owned_end_ms);
            REQ_INFO_PARTIAL
        }
    };
    (kind, w.buf)
}

fn decode_request(
    kind: u8,
    payload: &[u8],
) -> Result<(Request, Option<TraceContext>), DecodeError> {
    let mut r = Reader::new(payload);
    let trace = read_trace_field(&mut r)?;
    let req = match kind {
        REQ_QUERY => Request::Query { sql: r.str()? },
        REQ_PREPARE => Request::Prepare { sql: r.str()? },
        REQ_EXECUTE_PREPARED => {
            let handle = r.u32()?;
            let n = r.u16()? as usize;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(read_value(&mut r)?);
            }
            Request::ExecutePrepared { handle, params }
        }
        REQ_INGEST => {
            let dataset = r.str()?;
            let n = r.u32()? as usize;
            let mut trajectories = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                trajectories.push(read_trajectory(&mut r)?);
            }
            Request::Ingest {
                dataset,
                trajectories,
            }
        }
        REQ_QUT_PARTIAL => {
            let dataset = r.str()?;
            let owned_start_ms = r.i64()?;
            let owned_end_ms = r.i64()?;
            let wi = r.i64()?;
            let we = r.i64()?;
            let overrides = match r.u8()? {
                0 => None,
                1 => Some((r.f64()?, r.f64()?, r.i64()?)),
                tag => return Err(DecodeError(format!("unknown overrides flag {tag}"))),
            };
            Request::QutPartial {
                dataset,
                owned_start_ms,
                owned_end_ms,
                wi,
                we,
                overrides,
            }
        }
        REQ_RANGE_PARTIAL => Request::RangePartial {
            dataset: r.str()?,
            owned_start_ms: r.i64()?,
            owned_end_ms: r.i64()?,
            wi: r.i64()?,
            we: r.i64()?,
        },
        REQ_GATHER_TRAJECTORIES => Request::GatherTrajectories {
            dataset: r.str()?,
            owned_start_ms: r.i64()?,
            owned_end_ms: r.i64()?,
        },
        REQ_INFO_PARTIAL => Request::InfoPartial {
            dataset: r.str()?,
            owned_start_ms: r.i64()?,
            owned_end_ms: r.i64()?,
        },
        tag => return Err(DecodeError(format!("unknown request kind {tag}"))),
    };
    r.finish()?;
    Ok((req, trace))
}

fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let kind = match resp {
        Response::Rows { frame, stats } => {
            w.u8(stats.is_some() as u8);
            write_frame_payload(&mut w, frame);
            if let Some(stats) = stats {
                write_frame_payload(&mut w, stats);
            }
            RESP_ROWS
        }
        Response::Command(status) => {
            w.u8(command_tag_code(status.tag));
            w.u64(status.affected);
            RESP_COMMAND
        }
        Response::Prepared { handle } => {
            w.u32(*handle);
            RESP_PREPARED
        }
        Response::Error { code, message } => {
            w.u8(*code as u8);
            w.str(message);
            RESP_ERROR
        }
        Response::QutPartial(partial) => {
            write_qut_partial(&mut w, partial);
            RESP_QUT_PARTIAL
        }
        Response::Count(n) => {
            w.u64(*n);
            RESP_COUNT
        }
        Response::Trajectories(trajectories) => {
            w.u32(trajectories.len() as u32);
            for t in trajectories {
                write_trajectory(&mut w, t);
            }
            RESP_TRAJECTORIES
        }
        Response::InfoPartial(info) => {
            w.u64(info.trajectories);
            w.u64(info.points);
            match info.lifespan {
                Some((start, end)) => {
                    w.u8(1);
                    w.i64(start);
                    w.i64(end);
                }
                None => w.u8(0),
            }
            w.u8(info.indexed as u8);
            w.u64(info.cluster_entries);
            RESP_INFO_PARTIAL
        }
    };
    (kind, w.buf)
}

fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, DecodeError> {
    let mut r = Reader::new(payload);
    let resp = match kind {
        RESP_ROWS => {
            let has_stats = r.u8()? != 0;
            let frame = read_frame_payload(&mut r)?;
            let stats = if has_stats {
                Some(read_frame_payload(&mut r)?)
            } else {
                None
            };
            Response::Rows { frame, stats }
        }
        RESP_COMMAND => Response::Command(CommandStatus {
            tag: command_tag_of_code(r.u8()?)?,
            affected: r.u64()?,
        }),
        RESP_PREPARED => Response::Prepared { handle: r.u32()? },
        RESP_ERROR => Response::Error {
            code: ErrorCode::from_u8(r.u8()?),
            message: r.str()?,
        },
        RESP_QUT_PARTIAL => Response::QutPartial(read_qut_partial(&mut r)?),
        RESP_COUNT => Response::Count(r.u64()?),
        RESP_TRAJECTORIES => {
            let n = r.u32()? as usize;
            let mut trajectories = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                trajectories.push(read_trajectory(&mut r)?);
            }
            Response::Trajectories(trajectories)
        }
        RESP_INFO_PARTIAL => {
            let trajectories = r.u64()?;
            let points = r.u64()?;
            let lifespan = match r.u8()? {
                0 => None,
                1 => Some((r.i64()?, r.i64()?)),
                tag => return Err(DecodeError(format!("unknown lifespan flag {tag}"))),
            };
            let indexed = r.u8()? != 0;
            let cluster_entries = r.u64()?;
            Response::InfoPartial(PartialInfo {
                trajectories,
                points,
                lifespan,
                indexed,
                cluster_entries,
            })
        }
        tag => return Err(DecodeError(format!("unknown response kind {tag}"))),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

fn write_wire_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let length = 1 + payload.len();
    if length > MAX_MESSAGE_BYTES as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("message of {length} bytes exceeds the {MAX_MESSAGE_BYTES} byte cap"),
        ));
    }
    let length = length as u32;
    w.write_all(&length.to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(4 + length as u64)
}

fn read_wire_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>, u64)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let length = u32::from_be_bytes(len_bytes);
    if length == 0 || length > MAX_MESSAGE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid message length {length}"),
        ));
    }
    let mut body = vec![0u8; length as usize];
    r.read_exact(&mut body)?;
    let kind = body[0];
    let payload = body.split_off(1);
    Ok((kind, payload, 4 + length as u64))
}

/// Writes one request without a trace context, returning the bytes put on
/// the wire.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<u64> {
    write_request_traced(w, req, None)
}

/// Writes one request carrying an optional [`TraceContext`] (the protocol v3
/// trace field), returning the bytes put on the wire.
pub fn write_request_traced(
    w: &mut impl Write,
    req: &Request,
    trace: Option<TraceContext>,
) -> io::Result<u64> {
    let (kind, payload) = encode_request(req, trace);
    write_wire_frame(w, kind, &payload)
}

/// Reads one request, returning it with its optional trace context and the
/// bytes taken off the wire. `ErrorKind::UnexpectedEof` means the peer closed
/// the connection.
pub fn read_request(r: &mut impl Read) -> io::Result<(Request, Option<TraceContext>, u64)> {
    let (kind, payload, n) = read_wire_frame(r)?;
    let (req, trace) = decode_request(kind, &payload)?;
    Ok((req, trace, n))
}

/// Writes one response, returning the bytes put on the wire.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<u64> {
    let (kind, payload) = encode_response(resp);
    write_wire_frame(w, kind, &payload)
}

/// Reads one response, returning it with the bytes taken off the wire.
pub fn read_response(r: &mut impl Read) -> io::Result<(Response, u64)> {
    let (kind, payload, n) = read_wire_frame(r)?;
    Ok((decode_response(kind, &payload)?, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trajectory::Duration;

    fn round_trip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        let written = write_request(&mut buf, &req).unwrap();
        assert_eq!(written as usize, buf.len());
        let (back, trace, read) = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(trace, None, "untraced requests carry no context");
        back
    }

    fn round_trip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut buf.as_slice()).unwrap().0
    }

    fn sample_frame() -> Frame {
        let mut f = Frame::with_columns(&[
            ("name", ValueType::Text),
            ("n", ValueType::Int),
            ("score", ValueType::Float),
            ("at", ValueType::Timestamp),
            ("gap", ValueType::Interval),
            ("ok", ValueType::Bool),
        ]);
        f.push_row(vec![
            Value::from("ships"),
            Value::Int(-3),
            Value::Float(0.5),
            Value::Timestamp(Timestamp(42)),
            Value::Interval(Duration::from_secs(9)),
            Value::Bool(true),
        ])
        .unwrap();
        f.push_row(vec![
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ])
        .unwrap();
        f
    }

    fn traj(id: u64) -> Trajectory {
        Trajectory::new(
            id,
            id * 10,
            (0..5)
                .map(|i| Point::new(i as f64, -1.5 * i as f64, Timestamp(i * 1000)))
                .collect(),
        )
        .unwrap()
    }

    fn sub(id: u64, offset: u32) -> SubTrajectory {
        SubTrajectory::from_points(
            SubTrajectoryId::new(id, offset),
            id,
            id * 2,
            (0..4)
                .map(|i| Point::new(i as f64 * 3.5, 0.25 * i as f64, Timestamp(i * 500)))
                .collect(),
        )
    }

    fn sample_partial() -> QutPartial {
        QutPartial {
            clusters: vec![
                Cluster {
                    id: 0,
                    representative: sub(1, 0),
                    representative_vote: 4.25,
                    members: vec![sub(2, 3), sub(3, 0)],
                    member_distances: vec![12.5, f64::MAX],
                },
                Cluster {
                    id: 1,
                    representative: sub(4, 7),
                    representative_vote: 1.0,
                    members: Vec::new(),
                    member_distances: Vec::new(),
                },
            ],
            outliers: vec![sub(9, 2)],
            stats: QutStats {
                reused_subchunks: 3,
                reclustered_subchunks: 1,
                loaded_sub_trajectories: 44,
                merges: 2,
                elapsed_ms: 1.5,
                phases: S2TPhaseTimings {
                    index_build_ms: 0.25,
                    voting_ms: 0.5,
                    segmentation_ms: 0.125,
                    sampling_ms: 0.0,
                    clustering_ms: 0.375,
                },
                kernel: KernelCounters {
                    evaluated: 123,
                    pruned: 4_567,
                },
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query {
                sql: "SHOW DATASETS;".into(),
            },
            Request::Prepare {
                sql: "SELECT RANGE(d, $1, $2);".into(),
            },
            Request::ExecutePrepared {
                handle: 7,
                params: vec![
                    Value::Int(0),
                    Value::Timestamp(Timestamp(99)),
                    Value::Float(1.5),
                    Value::Null,
                ],
            },
            Request::Ingest {
                dataset: "flights".into(),
                trajectories: vec![traj(1), traj(2)],
            },
            Request::QutPartial {
                dataset: "urban".into(),
                owned_start_ms: i64::MIN,
                owned_end_ms: 7_200_000,
                wi: 0,
                we: 3_600_000,
                overrides: Some((0.35, 0.05, 300_000)),
            },
            Request::QutPartial {
                dataset: "urban".into(),
                owned_start_ms: 7_200_000,
                owned_end_ms: i64::MAX,
                wi: 0,
                we: 3_600_000,
                overrides: None,
            },
            Request::RangePartial {
                dataset: "urban".into(),
                owned_start_ms: 0,
                owned_end_ms: 100,
                wi: -5,
                we: 50,
            },
            Request::GatherTrajectories {
                dataset: "sea".into(),
                owned_start_ms: i64::MIN,
                owned_end_ms: i64::MAX,
            },
            Request::InfoPartial {
                dataset: "sea".into(),
                owned_start_ms: 0,
                owned_end_ms: i64::MAX,
            },
        ] {
            assert_eq!(round_trip_request(req.clone()), req);
        }
    }

    #[test]
    fn trace_context_rides_along_with_any_request() {
        let ctx = TraceContext {
            trace_id: 0x1234_5678_9ABC_DEF0 & (i64::MAX as u64),
            parent_span_id: 42,
        };
        let req = Request::QutPartial {
            dataset: "urban".into(),
            owned_start_ms: 0,
            owned_end_ms: 7_200_000,
            wi: 0,
            we: 3_600_000,
            overrides: None,
        };
        let mut buf = Vec::new();
        let written = write_request_traced(&mut buf, &req, Some(ctx)).unwrap();
        // The trace field costs exactly 16 bytes over the flag-only form.
        let mut untraced = Vec::new();
        let base = write_request(&mut untraced, &req).unwrap();
        assert_eq!(written, base + 16);
        let (back, trace, read) = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, req);
        assert_eq!(trace, Some(ctx));
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Rows {
                frame: sample_frame(),
                stats: None,
            },
            Response::Rows {
                frame: sample_frame(),
                stats: Some(sample_frame()),
            },
            Response::Command(CommandStatus {
                tag: CommandTag::BuildIndex,
                affected: 12,
            }),
            Response::Command(CommandStatus {
                tag: CommandTag::Ingest,
                affected: 640,
            }),
            Response::Command(CommandStatus {
                tag: CommandTag::Checkpoint,
                affected: 123_456,
            }),
            Response::Prepared { handle: 3 },
            Response::Error {
                code: ErrorCode::Query,
                message: "unknown dataset 'x'".into(),
            },
            Response::Error {
                code: ErrorCode::Backpressure,
                message: "server overloaded: 1024 requests already pending".into(),
            },
            Response::Error {
                code: ErrorCode::Deadline,
                message: "deadline exceeded: request not answered within 5ms".into(),
            },
            Response::QutPartial(sample_partial()),
            Response::QutPartial(QutPartial::default()),
            Response::Count(0),
            Response::Count(u64::MAX),
            Response::Trajectories(vec![traj(5), traj(6)]),
            Response::Trajectories(Vec::new()),
            Response::InfoPartial(PartialInfo {
                trajectories: 40,
                points: 1600,
                lifespan: Some((-1, 86_400_000)),
                indexed: true,
                cluster_entries: 7,
            }),
            Response::InfoPartial(PartialInfo {
                trajectories: 0,
                points: 0,
                lifespan: None,
                indexed: false,
                cluster_entries: 0,
            }),
        ] {
            assert_eq!(round_trip_response(resp.clone()), resp);
        }
    }

    #[test]
    fn into_outcome_maps_rows_and_commands() {
        let rows = Response::Rows {
            frame: sample_frame(),
            stats: None,
        };
        assert_eq!(rows.into_outcome().unwrap().num_rows(), 2);
        let cmd = Response::Command(CommandStatus {
            tag: CommandTag::CreateDataset,
            affected: 1,
        });
        assert!(cmd.into_outcome().unwrap().command().is_some());
        assert!(Response::Prepared { handle: 0 }.into_outcome().is_err());
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicked() {
        // Unknown kind.
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, 250, &[]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Truncated payload.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Query {
                sql: "SHOW DATASETS;".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Oversized / zero length prefixes.
        let huge = (MAX_MESSAGE_BYTES + 1).to_be_bytes();
        assert!(read_wire_frame(&mut huge.as_slice()).is_err());
        let zero = 0u32.to_be_bytes();
        assert!(read_wire_frame(&mut zero.as_slice()).is_err());
        // Trailing garbage after a valid message body.
        let mut w = Writer::new();
        w.u8(0); // trace field: absent
        w.str("SHOW DATASETS;");
        w.u8(99);
        assert!(decode_request(REQ_QUERY, &w.buf).is_err());
        // Unknown trace flag.
        let mut w = Writer::new();
        w.u8(7);
        w.str("SHOW DATASETS;");
        assert!(decode_request(REQ_QUERY, &w.buf).is_err());
        // Unknown response kind.
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, 222, &[]).unwrap();
        let err = read_response(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A sub-trajectory with fewer than two points must be a decode error,
        // not a constructor panic.
        let mut w = Writer::new();
        w.u64(1);
        w.u32(0);
        w.u64(1);
        w.u64(1);
        w.u32(1); // one point only
        w.f64(0.0);
        w.f64(0.0);
        w.i64(0);
        assert!(read_sub_trajectory(&mut Reader::new(&w.buf)).is_err());
    }

    #[test]
    fn truncated_length_prefix_is_an_error_not_a_hang() {
        // Only 2 of the 4 length-prefix bytes arrive before EOF.
        let partial: &[u8] = &[0x00, 0x00];
        let err = read_request(&mut &*partial).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Length announces more payload than the stream holds.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Query {
                sql: "SHOW DATASETS;".into(),
            },
        )
        .unwrap();
        let declared = u32::from_be_bytes(buf[..4].try_into().unwrap());
        buf[..4].copy_from_slice(&(declared + 10).to_be_bytes());
        let err = read_request(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_reads_as_unexpected_eof() {
        let empty: &[u8] = &[];
        let err = read_request(&mut &*empty).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn handshake_round_trips_and_rejects_mismatches() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        assert_eq!(buf.len(), 7);
        assert_eq!(
            read_handshake(&mut buf.as_slice()).unwrap(),
            PROTOCOL_VERSION
        );

        // Wrong magic: not a Hermes endpoint.
        let mut bad = buf.clone();
        bad[0] = b'X';
        let err = read_handshake(&mut bad.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));

        // Wrong version: named in the error.
        let mut old = buf.clone();
        old[4..6].copy_from_slice(&1u16.to_be_bytes());
        let err = read_handshake(&mut old.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version mismatch"));

        // Truncated preamble.
        let err = read_handshake(&mut &buf[..3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
